//! JSON interchange for graphs and GFD sets.
//!
//! Names (labels, attributes, variables) travel as strings and are
//! re-interned on load, so files are portable across processes with
//! different vocabularies. The wildcard label is spelled `"_"`, matching
//! the DSL.

use gfd_core::{Gfd, GfdSet, Literal, Operand};
use gfd_graph::{Graph, NodeId, Pattern, Value, Vocab};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An import/export error.
#[derive(Debug)]
pub enum JsonError {
    /// Malformed JSON.
    Syntax(serde_json::Error),
    /// Structurally valid JSON with inconsistent content.
    Semantic(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax(e) => write!(f, "json syntax: {e}"),
            JsonError::Semantic(m) => write!(f, "json content: {m}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<serde_json::Error> for JsonError {
    fn from(e: serde_json::Error) -> Self {
        JsonError::Syntax(e)
    }
}

fn semantic(msg: impl Into<String>) -> JsonError {
    JsonError::Semantic(msg.into())
}

/// A JSON attribute value. Untagged: `1`, `true` and `"s"` all work.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(untagged)]
enum JValue {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<&Value> for JValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Int(i) => JValue::Int(*i),
            Value::Bool(b) => JValue::Bool(*b),
            Value::Str(s) => JValue::Str(s.to_string()),
        }
    }
}

impl From<&JValue> for Value {
    fn from(v: &JValue) -> Self {
        match v {
            JValue::Int(i) => Value::Int(*i),
            JValue::Bool(b) => Value::Bool(*b),
            JValue::Str(s) => Value::str(s),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct JNode {
    label: String,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    attrs: BTreeMap<String, JValue>,
}

#[derive(Serialize, Deserialize)]
struct JEdge {
    src: usize,
    label: String,
    dst: usize,
}

#[derive(Serialize, Deserialize)]
struct JGraph {
    nodes: Vec<JNode>,
    edges: Vec<JEdge>,
}

/// Serialize a graph to a pretty JSON string.
pub fn graph_to_json(graph: &Graph, vocab: &Vocab) -> String {
    let nodes = graph
        .nodes()
        .map(|v| JNode {
            label: vocab.label_name(graph.label(v)).to_string(),
            attrs: graph
                .attrs(v)
                .iter()
                .map(|(a, val)| (vocab.attr_name(*a).to_string(), JValue::from(val)))
                .collect(),
        })
        .collect();
    let edges = graph
        .edges()
        .map(|(s, l, d)| JEdge {
            src: s.index(),
            label: vocab.label_name(l).to_string(),
            dst: d.index(),
        })
        .collect();
    serde_json::to_string_pretty(&JGraph { nodes, edges }).expect("graph serialization")
}

/// Load a graph from JSON, interning names into `vocab`.
pub fn graph_from_json(src: &str, vocab: &mut Vocab) -> Result<Graph, JsonError> {
    let j: JGraph = serde_json::from_str(src)?;
    let mut g = Graph::with_capacity(j.nodes.len());
    for n in &j.nodes {
        let id = g.add_node(vocab.label(&n.label));
        for (attr, value) in &n.attrs {
            g.set_attr(id, vocab.attr(attr), Value::from(value));
        }
    }
    for e in &j.edges {
        if e.src >= j.nodes.len() || e.dst >= j.nodes.len() {
            return Err(semantic(format!(
                "edge {} -> {} references a missing node",
                e.src, e.dst
            )));
        }
        g.add_edge(
            NodeId::new(e.src),
            vocab.label(&e.label),
            NodeId::new(e.dst),
        );
    }
    Ok(g)
}

#[derive(Serialize, Deserialize)]
struct JPatternNode {
    var: String,
    label: String,
}

#[derive(Serialize, Deserialize)]
struct JPatternEdge {
    src: String,
    label: String,
    dst: String,
}

/// One literal; exactly one of `value` / (`rhs_var`, `rhs_attr`) is set.
#[derive(Serialize, Deserialize)]
struct JLiteral {
    var: String,
    attr: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    value: Option<JValue>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    rhs_var: Option<String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    rhs_attr: Option<String>,
}

#[derive(Serialize, Deserialize)]
struct JGfd {
    name: String,
    nodes: Vec<JPatternNode>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    edges: Vec<JPatternEdge>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    when: Vec<JLiteral>,
    then: Vec<JLiteral>,
}

#[derive(Serialize, Deserialize)]
struct JSigma {
    gfds: Vec<JGfd>,
}

fn literal_to_json(lit: &Literal, pattern: &Pattern, vocab: &Vocab) -> JLiteral {
    let (value, rhs_var, rhs_attr) = match &lit.rhs {
        Operand::Const(c) => (Some(JValue::from(c)), None, None),
        Operand::Attr(v, a) => (
            None,
            Some(pattern.var_name(*v).to_string()),
            Some(vocab.attr_name(*a).to_string()),
        ),
    };
    JLiteral {
        var: pattern.var_name(lit.var).to_string(),
        attr: vocab.attr_name(lit.attr).to_string(),
        value,
        rhs_var,
        rhs_attr,
    }
}

fn literal_from_json(
    j: &JLiteral,
    pattern: &Pattern,
    vocab: &mut Vocab,
    rule: &str,
) -> Result<Literal, JsonError> {
    let var = pattern
        .var_by_name(&j.var)
        .ok_or_else(|| semantic(format!("rule {rule}: unknown variable `{}`", j.var)))?;
    let attr = vocab.attr(&j.attr);
    match (&j.value, &j.rhs_var, &j.rhs_attr) {
        (Some(v), None, None) => Ok(Literal::eq_const(var, attr, Value::from(v))),
        (None, Some(v2), Some(a2)) => {
            let var2 = pattern
                .var_by_name(v2)
                .ok_or_else(|| semantic(format!("rule {rule}: unknown variable `{v2}`")))?;
            Ok(Literal::eq_attr(var, attr, var2, vocab.attr(a2)))
        }
        _ => Err(semantic(format!(
            "rule {rule}: literal needs either `value` or both `rhs_var` and `rhs_attr`"
        ))),
    }
}

/// Serialize a rule set to a pretty JSON string.
pub fn sigma_to_json(sigma: &GfdSet, vocab: &Vocab) -> String {
    let gfds = sigma
        .iter()
        .map(|(_, g)| JGfd {
            name: g.name.clone(),
            nodes: g
                .pattern
                .vars()
                .map(|v| JPatternNode {
                    var: g.pattern.var_name(v).to_string(),
                    label: vocab.label_name(g.pattern.label(v)).to_string(),
                })
                .collect(),
            edges: g
                .pattern
                .edges()
                .iter()
                .map(|e| JPatternEdge {
                    src: g.pattern.var_name(e.src).to_string(),
                    label: vocab.label_name(e.label).to_string(),
                    dst: g.pattern.var_name(e.dst).to_string(),
                })
                .collect(),
            when: g
                .premise
                .iter()
                .map(|l| literal_to_json(l, &g.pattern, vocab))
                .collect(),
            then: g
                .consequence
                .iter()
                .map(|l| literal_to_json(l, &g.pattern, vocab))
                .collect(),
        })
        .collect();
    serde_json::to_string_pretty(&JSigma { gfds }).expect("sigma serialization")
}

/// Load a rule set from JSON, interning names into `vocab`.
pub fn sigma_from_json(src: &str, vocab: &mut Vocab) -> Result<GfdSet, JsonError> {
    let j: JSigma = serde_json::from_str(src)?;
    let mut out = GfdSet::new();
    for jg in &j.gfds {
        if jg.nodes.is_empty() {
            return Err(semantic(format!("rule {}: empty pattern", jg.name)));
        }
        let mut pattern = Pattern::new();
        for n in &jg.nodes {
            if pattern.var_by_name(&n.var).is_some() {
                return Err(semantic(format!(
                    "rule {}: duplicate variable `{}`",
                    jg.name, n.var
                )));
            }
            pattern.add_node(vocab.label(&n.label), n.var.clone());
        }
        for e in &jg.edges {
            let src = pattern.var_by_name(&e.src).ok_or_else(|| {
                semantic(format!("rule {}: unknown variable `{}`", jg.name, e.src))
            })?;
            let dst = pattern.var_by_name(&e.dst).ok_or_else(|| {
                semantic(format!("rule {}: unknown variable `{}`", jg.name, e.dst))
            })?;
            pattern.add_edge(src, vocab.label(&e.label), dst);
        }
        let premise = jg
            .when
            .iter()
            .map(|l| literal_from_json(l, &pattern, vocab, &jg.name))
            .collect::<Result<Vec<_>, _>>()?;
        let consequence = jg
            .then
            .iter()
            .map(|l| literal_from_json(l, &pattern, vocab, &jg.name))
            .collect::<Result<Vec<_>, _>>()?;
        out.push(Gfd::new(jg.name.clone(), pattern, premise, consequence));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::LabelId;

    fn sample_graph() -> (Graph, Vocab) {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let knows = vocab.label("knows");
        let age = vocab.attr("age");
        let name = vocab.attr("name");
        let mut g = Graph::new();
        let a = g.add_node(person);
        let b = g.add_node(person);
        g.add_edge(a, knows, b);
        g.set_attr(a, age, Value::int(30));
        g.set_attr(a, name, Value::str("ann"));
        g.set_attr(b, age, Value::Bool(true));
        (g, vocab)
    }

    #[test]
    fn graph_round_trips() {
        let (g, vocab) = sample_graph();
        let json = graph_to_json(&g, &vocab);
        let mut vocab2 = Vocab::new();
        let g2 = graph_from_json(&json, &mut vocab2).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.attr_count(), g.attr_count());
        let age2 = vocab2.attr("age");
        assert_eq!(g2.attr(NodeId::new(0), age2), Some(&Value::int(30)));
        assert_eq!(g2.attr(NodeId::new(1), age2), Some(&Value::Bool(true)));
    }

    #[test]
    fn wildcard_label_round_trips() {
        let mut vocab = Vocab::new();
        let mut g = Graph::new();
        g.add_node(LabelId::WILDCARD);
        let json = graph_to_json(&g, &vocab);
        assert!(json.contains("\"_\""), "{json}");
        let mut vocab2 = Vocab::new();
        let g2 = graph_from_json(&json, &mut vocab2).unwrap();
        assert!(g2.label(NodeId::new(0)).is_wildcard());
        let _ = &mut vocab;
    }

    #[test]
    fn bad_edge_reference_is_semantic_error() {
        let src = r#"{"nodes": [{"label": "t"}], "edges": [{"src": 0, "label": "e", "dst": 5}]}"#;
        let mut vocab = Vocab::new();
        let err = graph_from_json(src, &mut vocab).unwrap_err();
        assert!(matches!(err, JsonError::Semantic(_)));
    }

    #[test]
    fn malformed_json_is_syntax_error() {
        let mut vocab = Vocab::new();
        let err = graph_from_json("{nodes: oops", &mut vocab).unwrap_err();
        assert!(matches!(err, JsonError::Syntax(_)));
    }

    fn sample_sigma() -> (GfdSet, Vocab) {
        let mut vocab = Vocab::new();
        let place = vocab.label("place");
        let locate = vocab.label("locateIn");
        let pop = vocab.attr("pop");
        let mut p = Pattern::new();
        let x = p.add_node(place, "x");
        let y = p.add_node(place, "y");
        p.add_edge(x, locate, y);
        let g1 = Gfd::new(
            "g1",
            p.clone(),
            vec![Literal::eq_const(x, pop, 5i64)],
            vec![Literal::eq_attr(x, pop, y, pop)],
        );
        let g2 = Gfd::new("g2", p, vec![], vec![Literal::eq_const(y, pop, 7i64)]);
        (GfdSet::from_vec(vec![g1, g2]), vocab)
    }

    #[test]
    fn sigma_round_trips_and_preserves_reasoning() {
        let (sigma, vocab) = sample_sigma();
        let json = sigma_to_json(&sigma, &vocab);
        let mut vocab2 = Vocab::new();
        let sigma2 = sigma_from_json(&json, &mut vocab2).unwrap();
        assert_eq!(sigma2.len(), sigma.len());
        // Structure is preserved literal-for-literal.
        for ((_, a), (_, b)) in sigma.iter().zip(sigma2.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.premise.len(), b.premise.len());
            assert_eq!(a.consequence.len(), b.consequence.len());
            assert_eq!(a.pattern.node_count(), b.pattern.node_count());
            assert_eq!(a.pattern.edge_count(), b.pattern.edge_count());
        }
        // Reasoning outcome is identical.
        assert_eq!(
            gfd_core::seq_sat(&sigma).is_satisfiable(),
            gfd_core::seq_sat(&sigma2).is_satisfiable()
        );
    }

    #[test]
    fn literal_without_rhs_is_rejected() {
        let src = r#"{"gfds": [{
            "name": "bad",
            "nodes": [{"var": "x", "label": "t"}],
            "then": [{"var": "x", "attr": "a"}]
        }]}"#;
        let mut vocab = Vocab::new();
        let err = sigma_from_json(src, &mut vocab).unwrap_err();
        assert!(err.to_string().contains("rhs_var"), "{err}");
    }

    #[test]
    fn unknown_variable_in_literal_is_rejected() {
        let src = r#"{"gfds": [{
            "name": "bad",
            "nodes": [{"var": "x", "label": "t"}],
            "then": [{"var": "zz", "attr": "a", "value": 1}]
        }]}"#;
        let mut vocab = Vocab::new();
        let err = sigma_from_json(src, &mut vocab).unwrap_err();
        assert!(err.to_string().contains("zz"), "{err}");
    }

    #[test]
    fn duplicate_variable_is_rejected() {
        let src = r#"{"gfds": [{
            "name": "bad",
            "nodes": [{"var": "x", "label": "t"}, {"var": "x", "label": "t"}],
            "then": [{"var": "x", "attr": "a", "value": 1}]
        }]}"#;
        let mut vocab = Vocab::new();
        assert!(sigma_from_json(src, &mut vocab).is_err());
    }
}
