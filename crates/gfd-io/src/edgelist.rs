//! SNAP-style edge lists and node tables.
//!
//! The paper's Pokec dataset ships as `soc-pokec-relationships.txt`: one
//! whitespace-separated `src dst` pair per line, `#`-comments. This module
//! loads that format (and labelled variants) into a [`Graph`], plus a
//! simple node table for labels and attributes:
//!
//! ```text
//! # node table: id  label  [attr=value]...
//! 0  person  age=28  region="zilinsky kraj"
//! 1  person  age=31
//! ```
//!
//! Node ids may be sparse and in any order; they are densified in first-
//! seen order and the mapping is returned.

use gfd_graph::{Graph, LabelId, NodeId, ValueId, ValueTable, Vocab};
use std::collections::HashMap;
use std::fmt;

/// Options controlling edge-list interpretation.
#[derive(Clone, Debug)]
pub struct EdgeListOptions {
    /// Label applied to nodes created implicitly by edges (default `_`).
    pub default_node_label: String,
    /// Label applied to edges when the line has no third column.
    pub default_edge_label: String,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            default_node_label: "_".to_string(),
            default_edge_label: "edge".to_string(),
        }
    }
}

/// A load error with its 1-based line number.
#[derive(Debug)]
pub struct LoadError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LoadError {}

fn err(line: usize, message: impl Into<String>) -> LoadError {
    LoadError {
        line,
        message: message.into(),
    }
}

/// Load a SNAP-style edge list: `src dst [edge-label]` per line,
/// whitespace-separated, `#` starts a comment. Returns the graph and the
/// external-id → node mapping (first-seen densification).
pub fn load_edge_list(
    src: &str,
    vocab: &mut Vocab,
    options: &EdgeListOptions,
) -> Result<(Graph, HashMap<u64, NodeId>), LoadError> {
    let default_node = vocab.label(&options.default_node_label);
    let default_edge = vocab.label(&options.default_edge_label);
    let mut g = Graph::new();
    let mut ids: HashMap<u64, NodeId> = HashMap::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let src_id: u64 = parts
            .next()
            .expect("non-empty line")
            .parse()
            .map_err(|_| err(line_no, "source id is not an integer"))?;
        let dst_id: u64 = parts
            .next()
            .ok_or_else(|| err(line_no, "missing destination id"))?
            .parse()
            .map_err(|_| err(line_no, "destination id is not an integer"))?;
        let label = match parts.next() {
            Some(l) => vocab.label(l),
            None => default_edge,
        };
        if parts.next().is_some() {
            return Err(err(line_no, "too many columns (expected 2 or 3)"));
        }
        let s = *ids
            .entry(src_id)
            .or_insert_with(|| g.add_node(default_node));
        let d = *ids
            .entry(dst_id)
            .or_insert_with(|| g.add_node(default_node));
        g.add_edge(s, label, d);
    }
    Ok((g, ids))
}

/// Parse one `attr=value` token. Values: integers, `true`/`false`, quoted
/// strings (double quotes, may contain spaces pre-split — see note), or
/// bare strings. Shared with the delta-log format.
pub(crate) fn parse_attr(token: &str, line: usize) -> Result<(&str, ValueId), LoadError> {
    let (name, raw) = token
        .split_once('=')
        .ok_or_else(|| err(line, format!("expected attr=value, got `{token}`")))?;
    if name.is_empty() {
        return Err(err(line, "empty attribute name"));
    }
    Ok((name, parse_value(raw)))
}

/// Parse one bare value token (shared by `attr=value` pairs and the
/// checkpoint `value` section): integers, `true`/`false`, quoted or bare
/// strings. Interning at the parse boundary dedups repeated values: one
/// table entry (and one string allocation) per distinct value, however
/// many times a log repeats it.
pub(crate) fn parse_value(raw: &str) -> ValueId {
    if let Ok(i) = raw.parse::<i64>() {
        ValueTable::intern_int(i)
    } else if raw == "true" || raw == "false" {
        ValueTable::intern_bool(raw == "true")
    } else if let Some(stripped) = raw.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        ValueTable::intern_str(stripped)
    } else {
        ValueTable::intern_str(raw)
    }
}

/// Tokenize a node-table (or delta-log) line, keeping double-quoted
/// segments (which may contain spaces) as single tokens.
pub(crate) fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Apply a node table to a graph loaded by [`load_edge_list`]: each line
/// is `id label [attr=value]...`. Unknown ids create fresh isolated nodes.
///
/// Returns the number of nodes whose label was set.
pub fn load_node_table(
    src: &str,
    graph: &mut Graph,
    ids: &mut HashMap<u64, NodeId>,
    vocab: &mut Vocab,
) -> Result<usize, LoadError> {
    let mut labelled = 0usize;
    let mut relabel: Vec<(NodeId, LabelId)> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens = tokenize(line);
        if tokens.len() < 2 {
            return Err(err(line_no, "expected `id label [attr=value]...`"));
        }
        let id: u64 = tokens[0]
            .parse()
            .map_err(|_| err(line_no, "node id is not an integer"))?;
        let label = vocab.label(&tokens[1]);
        let node = *ids.entry(id).or_insert_with(|| graph.add_node(label));
        relabel.push((node, label));
        labelled += 1;
        for token in &tokens[2..] {
            let (name, value) = parse_attr(token, line_no)?;
            graph.set_attr_id(node, vocab.attr(name), value);
        }
    }
    // Graph has no label-mutation API by design (labels are structural);
    // rebuild once if any implicit node needs a different label.
    let needs_rebuild = relabel
        .iter()
        .any(|&(node, label)| graph.label(node) != label);
    if needs_rebuild {
        let mut rebuilt = Graph::with_capacity(graph.node_count());
        let mut labels: Vec<LabelId> = (0..graph.node_count())
            .map(|v| graph.label(NodeId::new(v)))
            .collect();
        for &(node, label) in &relabel {
            labels[node.index()] = label;
        }
        for (v, &label) in labels.iter().enumerate() {
            let id = rebuilt.add_node(label);
            debug_assert_eq!(id.index(), v);
        }
        for (s, l, d) in graph.edges() {
            rebuilt.add_edge(s, l, d);
        }
        for v in graph.nodes() {
            for &(a, val) in graph.attrs(v) {
                rebuilt.set_attr_id(v, a, val);
            }
        }
        *graph = rebuilt;
    }
    Ok(labelled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_snap_style_pairs() {
        let src = "# soc-pokec excerpt\n1 2\n2 3\n1 3\n";
        let mut vocab = Vocab::new();
        let (g, ids) = load_edge_list(src, &mut vocab, &EdgeListOptions::default()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(ids.len(), 3);
        // Implicit nodes get the default (wildcard) label.
        assert!(g.label(ids[&1]).is_wildcard());
    }

    #[test]
    fn labelled_edges_and_sparse_ids() {
        let src = "100 7 follows\n7 100 follows\n100 999 blocks\n";
        let mut vocab = Vocab::new();
        let (g, ids) = load_edge_list(src, &mut vocab, &EdgeListOptions::default()).unwrap();
        assert_eq!(g.node_count(), 3);
        let follows = vocab.label("follows");
        assert!(g.has_edge(ids[&100], follows, ids[&7]));
        assert!(g.has_edge(ids[&7], follows, ids[&100]));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let src = "\n# header\n1 2 # trailing comment\n\n";
        let mut vocab = Vocab::new();
        let (g, _) = load_edge_list(src, &mut vocab, &EdgeListOptions::default()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn bad_lines_name_the_line_number() {
        let mut vocab = Vocab::new();
        let err =
            load_edge_list("1 2\nx y\n", &mut vocab, &EdgeListOptions::default()).unwrap_err();
        assert_eq!(err.line, 2);
        let err = load_edge_list("1\n", &mut vocab, &EdgeListOptions::default()).unwrap_err();
        assert!(err.message.contains("destination"));
        let err =
            load_edge_list("1 2 e extra\n", &mut vocab, &EdgeListOptions::default()).unwrap_err();
        assert!(err.message.contains("too many"));
    }

    #[test]
    fn node_table_sets_labels_and_attrs() {
        let edges = "0 1\n";
        let table = "0 person age=28 region=\"zilinsky kraj\"\n1 person age=31 verified=true\n";
        let mut vocab = Vocab::new();
        let (mut g, mut ids) =
            load_edge_list(edges, &mut vocab, &EdgeListOptions::default()).unwrap();
        let n = load_node_table(table, &mut g, &mut ids, &mut vocab).unwrap();
        assert_eq!(n, 2);
        let person = vocab.label("person");
        let age = vocab.attr("age");
        let region = vocab.attr("region");
        assert_eq!(g.label(ids[&0]), person);
        assert_eq!(g.attr(ids[&0], age), Some(ValueId::of(28i64)));
        assert_eq!(g.attr(ids[&0], region), Some(ValueId::of("zilinsky kraj")));
        assert_eq!(
            g.attr(ids[&1], vocab.attr("verified")),
            Some(ValueId::of(true))
        );
        // Structure untouched by the relabelling rebuild.
        assert!(g.has_edge(ids[&0], vocab.label("edge"), ids[&1]));
    }

    #[test]
    fn node_table_can_add_isolated_nodes() {
        let mut vocab = Vocab::new();
        let (mut g, mut ids) = load_edge_list("", &mut vocab, &EdgeListOptions::default()).unwrap();
        let n = load_node_table("5 place\n", &mut g, &mut ids, &mut vocab).unwrap();
        assert_eq!(n, 1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.label(ids[&5]), vocab.label("place"));
    }

    #[test]
    fn attr_parse_failures_are_reported() {
        let mut vocab = Vocab::new();
        let (mut g, mut ids) =
            load_edge_list("0 1\n", &mut vocab, &EdgeListOptions::default()).unwrap();
        let err = load_node_table("0 person noequals\n", &mut g, &mut ids, &mut vocab).unwrap_err();
        assert!(err.message.contains("attr=value"), "{err}");
        let err = load_node_table("0 person =5\n", &mut g, &mut ids, &mut vocab).unwrap_err();
        assert!(err.message.contains("empty attribute name"));
    }

    #[test]
    fn quoted_tokenizer_keeps_spaces() {
        let tokens = tokenize("0 person name=\"a b c\" x=1");
        assert_eq!(tokens.len(), 4);
        assert_eq!(tokens[2], "name=\"a b c\"");
    }
}
