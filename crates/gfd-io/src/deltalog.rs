//! The delta-log text format: a replayable stream of graph updates.
//!
//! The streaming detection pipeline (`gfd detect --stream`, the
//! `gfd-incr` engine) consumes batches of updates. This module gives
//! them a line-oriented interchange form, one update per line, batches
//! separated by `batch` headers:
//!
//! ```text
//! # comments and blank lines are ignored
//! batch
//! node person          # append a node; ids are assigned densely
//! edge 0 knows 7       # insert  src --label--> dst
//! del  2 livesIn 3     # delete  src --label--> dst
//! attr 4 name="bob"    # set an attribute (edge-list value syntax)
//! batch
//! attr 4 age=31
//! ```
//!
//! Node references are the dense ids of the target graph; `node` lines
//! create ids in order (`graph.node_count()` at replay time), so a log
//! can wire up nodes it created earlier — the same convention as
//! [`gfd_graph::DeltaBatch`]. A leading `batch` header is optional.

use crate::edgelist::LoadError;
use gfd_graph::{DeltaBatch, DeltaOp, NodeId, Value, ValueId, Vocab};
use gfd_runtime::failpoint;
use std::fmt::Write as _;

fn err(line: usize, message: impl Into<String>) -> LoadError {
    LoadError {
        line,
        message: message.into(),
    }
}

/// Parse a node reference, rejecting anything that does not round-trip
/// through the dense `u32` id space: negatives and non-numbers fail the
/// integer parse, and ids at or above `u32::MAX` are rejected explicitly
/// (`u32::MAX` is reserved as a sentinel by several consumers) rather
/// than wrapped or debug-asserted away downstream.
pub(crate) fn parse_node(token: &str, line: usize) -> Result<NodeId, LoadError> {
    let id = token.parse::<u64>().map_err(|_| {
        err(
            line,
            format!("node id is not an unsigned integer: `{token}`"),
        )
    })?;
    if id >= u64::from(u32::MAX) {
        return Err(err(
            line,
            format!("node id {id} is out of range (node ids must fit in 32 bits)"),
        ));
    }
    Ok(NodeId::new(id as usize))
}

/// Parse a delta log into batches (labels and attribute names interned
/// through `vocab`, as everywhere else).
///
/// Node references are only checked for numeric range; use
/// [`parse_delta_log_for`] when the target graph is known, to also
/// reject references to nodes that will not exist at that point of the
/// replay.
pub fn parse_delta_log(src: &str, vocab: &mut Vocab) -> Result<Vec<DeltaBatch>, LoadError> {
    parse_inner(src, vocab, None, None).map(|p| p.batches)
}

/// Parse a delta log destined for a graph that currently has
/// `existing_nodes` nodes, rejecting — with the offending line number —
/// any op that refers to a node beyond the count the replay will have
/// reached by then (`existing_nodes` plus the `node` lines seen so far).
/// This is what `gfd detect --stream` uses: a typo'd id is a normal
/// input error, not a downstream panic or a silent out-of-range index.
pub fn parse_delta_log_for(
    src: &str,
    vocab: &mut Vocab,
    existing_nodes: usize,
) -> Result<Vec<DeltaBatch>, LoadError> {
    parse_inner(src, vocab, Some(existing_nodes), None).map(|p| p.batches)
}

/// What a lenient parse salvaged: the clean batches plus every line it
/// had to skip, with the reason.
#[derive(Debug)]
pub struct LenientParse {
    /// Batches assembled from the lines that parsed.
    pub batches: Vec<DeltaBatch>,
    /// `(line number, reason)` for each corrupt line dropped.
    pub skipped: Vec<(usize, String)>,
}

/// Parse a delta log, skipping corrupt lines instead of failing the
/// whole log (`gfd detect --stream --skip-corrupt`): a truncated or
/// garbled line — the usual tail damage of a log cut off mid-write — is
/// recorded in [`LenientParse::skipped`] and the replay continues with
/// the lines that survive. A skipped `node` line does not advance the
/// dense id counter, so later in-range references stay consistent with
/// what the replay will actually build.
pub fn parse_delta_log_lenient(
    src: &str,
    vocab: &mut Vocab,
    existing_nodes: Option<usize>,
) -> Result<LenientParse, LoadError> {
    let mut skipped = Vec::new();
    parse_inner(src, vocab, existing_nodes, Some(&mut skipped)).map(|mut p| {
        p.skipped = skipped;
        p
    })
}

/// One parsed line, validated but not yet applied — applying only after
/// full validation is what lets the lenient mode drop a line without
/// half of it having leaked into the current batch.
enum LineAction {
    NewBatch,
    Op(DeltaOp),
}

fn parse_line(
    tokens: &[String],
    vocab: &mut Vocab,
    known_nodes: Option<usize>,
    line_no: usize,
) -> Result<LineAction, LoadError> {
    let check_ref = |n: NodeId| -> Result<(), LoadError> {
        match known_nodes {
            Some(count) if n.index() >= count => Err(err(
                line_no,
                format!(
                    "refers to node {} but only {count} node(s) exist at this \
                     point of the log",
                    n.index()
                ),
            )),
            _ => Ok(()),
        }
    };
    let mut parts = tokens.iter().map(String::as_str);
    let keyword = parts.next().expect("non-empty line");
    let action = match keyword {
        "batch" => {
            if parts.next().is_some() {
                return Err(err(line_no, "`batch` takes no arguments"));
            }
            LineAction::NewBatch
        }
        "node" => {
            let label = parts
                .next()
                .ok_or_else(|| err(line_no, "expected `node LABEL`"))?;
            LineAction::Op(DeltaOp::AddNode {
                label: vocab.label(label),
            })
        }
        "edge" | "del" => {
            let (Some(s), Some(l), Some(d)) = (parts.next(), parts.next(), parts.next()) else {
                return Err(err(line_no, format!("expected `{keyword} SRC LABEL DST`")));
            };
            let src = parse_node(s, line_no)?;
            let dst = parse_node(d, line_no)?;
            check_ref(src)?;
            check_ref(dst)?;
            let label = vocab.label(l);
            LineAction::Op(if keyword == "edge" {
                DeltaOp::AddEdge { src, label, dst }
            } else {
                DeltaOp::DelEdge { src, label, dst }
            })
        }
        "attr" => {
            let (Some(n), Some(kv)) = (parts.next(), parts.next()) else {
                return Err(err(line_no, "expected `attr NODE name=value`"));
            };
            let node = parse_node(n, line_no)?;
            check_ref(node)?;
            let (name, value) = crate::edgelist::parse_attr(kv, line_no)?;
            LineAction::Op(DeltaOp::SetAttr {
                node,
                attr: vocab.attr(name),
                value,
            })
        }
        other => {
            return Err(err(
                line_no,
                format!("unknown delta keyword `{other}` (batch/node/edge/del/attr)"),
            ));
        }
    };
    if parts.next().is_some() {
        return Err(err(line_no, "trailing tokens on delta line"));
    }
    Ok(action)
}

fn parse_inner(
    src: &str,
    vocab: &mut Vocab,
    bound: Option<usize>,
    mut lenient: Option<&mut Vec<(usize, String)>>,
) -> Result<LenientParse, LoadError> {
    // The structured-error fault site of the log reader: an armed
    // failpoint models an unreadable log (I/O error, torn write) and
    // must surface as a normal LoadError, never a panic.
    if failpoint::triggered("io/deltalog") {
        return Err(err(0, "failpoint io/deltalog fired"));
    }
    let mut batches = Vec::new();
    let mut current = DeltaBatch::new();
    let mut started = false;
    // Nodes the replay target will have at this point of the log.
    let mut known_nodes = bound;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens = crate::edgelist::tokenize(line);
        let action = match parse_line(&tokens, vocab, known_nodes, line_no) {
            Ok(action) => action,
            Err(e) => match lenient.as_deref_mut() {
                Some(skipped) => {
                    skipped.push((e.line, e.message));
                    continue;
                }
                None => return Err(e),
            },
        };
        match action {
            LineAction::NewBatch => {
                if started {
                    batches.push(std::mem::take(&mut current));
                }
            }
            LineAction::Op(op) => {
                if matches!(op, DeltaOp::AddNode { .. }) {
                    known_nodes = known_nodes.map(|n| n + 1);
                }
                current.ops.push(op);
            }
        }
        started = true;
    }
    if started {
        batches.push(current);
    }
    Ok(LenientParse {
        batches,
        skipped: Vec::new(),
    })
}

pub(crate) fn fmt_value_id(value: ValueId) -> String {
    fmt_value(&value.resolve())
}

pub(crate) fn fmt_value(value: &Value) -> String {
    match value {
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => format!("\"{s}\""),
    }
}

/// Render batches back into the text form [`parse_delta_log`] reads.
pub fn delta_log_to_string(batches: &[DeltaBatch], vocab: &Vocab) -> String {
    let mut out = String::new();
    for batch in batches {
        out.push_str("batch\n");
        for op in &batch.ops {
            match op {
                DeltaOp::AddNode { label } => {
                    let _ = writeln!(out, "node {}", vocab.label_name(*label));
                }
                DeltaOp::AddEdge { src, label, dst } => {
                    let _ = writeln!(
                        out,
                        "edge {} {} {}",
                        src.index(),
                        vocab.label_name(*label),
                        dst.index()
                    );
                }
                DeltaOp::DelEdge { src, label, dst } => {
                    let _ = writeln!(
                        out,
                        "del {} {} {}",
                        src.index(),
                        vocab.label_name(*label),
                        dst.index()
                    );
                }
                DeltaOp::SetAttr { node, attr, value } => {
                    let _ = writeln!(
                        out,
                        "attr {} {}={}",
                        node.index(),
                        vocab.attr_name(*attr),
                        fmt_value_id(*value)
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_batches_and_ops() {
        let mut vocab = Vocab::new();
        let src = "\
# a two-batch log
batch
node person
edge 0 knows 7   # wire it up
del 2 livesIn 3
attr 4 name=\"bob lee\"
batch
attr 4 age=31
attr 4 verified=true
";
        let batches = parse_delta_log(src, &mut vocab).expect("parses");
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[1].len(), 2);
        assert_eq!(
            batches[0].ops[0],
            DeltaOp::AddNode {
                label: vocab.label("person")
            }
        );
        assert_eq!(
            batches[0].ops[3],
            DeltaOp::SetAttr {
                node: NodeId::new(4),
                attr: vocab.attr("name"),
                value: ValueId::of("bob lee"),
            }
        );
        assert_eq!(
            batches[1].ops[1],
            DeltaOp::SetAttr {
                node: NodeId::new(4),
                attr: vocab.attr("verified"),
                value: ValueId::of(true),
            }
        );
    }

    /// The ingest-dedup regression (DESIGN.md §15): a log that repeats
    /// the same string literal must hit one shared [`ValueTable`] entry
    /// per distinct string, not allocate a fresh `Arc<str>` per
    /// occurrence — every occurrence resolves to the *same* raw id, and
    /// replaying the log again mints no new ids.
    #[test]
    fn repetitive_log_interns_each_string_once() {
        use gfd_graph::ValueTable;
        // Process-unique payloads: the table is global and other tests
        // intern concurrently, so assertions ride on id identity, never
        // on absolute table counts.
        let city = "dedup-test-city-§1";
        let name = "dedup-test-name-§1";
        let mut src = String::from("batch\n");
        for i in 0..50 {
            src.push_str(&format!("node person\nattr {i} city=\"{city}\"\n"));
            src.push_str(&format!("attr {i} name=\"{name}\"\n"));
        }
        let mut vocab = Vocab::new();
        assert_eq!(ValueTable::lookup_str(city), None, "unique payload leaked");
        let batches = parse_delta_log(&src, &mut vocab).expect("parses");
        let ids: Vec<ValueId> = batches[0]
            .ops
            .iter()
            .filter_map(|op| match op {
                DeltaOp::SetAttr { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 100);
        let distinct: std::collections::BTreeSet<u32> =
            ids.iter().map(|v| v.raw()).collect();
        assert_eq!(distinct.len(), 2, "two distinct strings, two table entries");
        assert_eq!(ValueTable::lookup_str(city), Some(ValueId::of(city)));
        // A second replay resolves to the very same ids: the table is
        // append-only and deduplicating, so repeated ingest is free.
        let again = parse_delta_log(&src, &mut vocab).expect("parses");
        assert_eq!(batches, again);
    }

    #[test]
    fn leading_batch_header_is_optional() {
        let mut vocab = Vocab::new();
        let batches = parse_delta_log("edge 0 e 1\nbatch\ndel 0 e 1\n", &mut vocab).unwrap();
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn empty_log_has_no_batches() {
        let mut vocab = Vocab::new();
        assert!(parse_delta_log("# nothing\n\n", &mut vocab)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn round_trips_through_text() {
        let mut vocab = Vocab::new();
        let mut b0 = DeltaBatch::new();
        b0.add_node(vocab.label("t"));
        b0.add_edge(NodeId::new(3), vocab.label("e"), NodeId::new(0));
        b0.del_edge(NodeId::new(1), vocab.label("e"), NodeId::new(2));
        b0.set_attr(NodeId::new(0), vocab.attr("a"), Value::Int(-4));
        let mut b1 = DeltaBatch::new();
        b1.set_attr(NodeId::new(2), vocab.attr("s"), Value::str("x y"));
        let batches = vec![b0, b1];
        let text = delta_log_to_string(&batches, &vocab);
        let reparsed = parse_delta_log(&text, &mut vocab).expect("round-trip parses");
        assert_eq!(batches, reparsed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut vocab = Vocab::new();
        let e = parse_delta_log("batch\nfrob 1 2 3\n", &mut vocab).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frob"));
        let e = parse_delta_log("edge 0 e\n", &mut vocab).unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_delta_log("attr x name=1\n", &mut vocab).unwrap_err();
        assert!(e.to_string().contains("not an unsigned integer"));
    }

    #[test]
    fn out_of_u32_range_ids_are_rejected_not_wrapped() {
        let mut vocab = Vocab::new();
        // u32::MAX is the reserved sentinel; anything ≥ it must fail.
        for bad in ["4294967295", "4294967296", "99999999999999999999"] {
            let src = format!("edge {bad} e 0\n");
            let e = parse_delta_log(&src, &mut vocab).unwrap_err();
            assert_eq!(e.line, 1, "{bad}");
            assert!(
                e.to_string().contains("out of range") || e.to_string().contains("unsigned"),
                "{bad}: {e}"
            );
        }
        // Negative ids fail the unsigned parse, with the line number.
        let e = parse_delta_log("batch\nattr -3 a=1\n", &mut vocab).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unsigned"), "{e}");
        // A large but in-range id is fine without a bound.
        assert!(parse_delta_log("edge 4294967293 e 0\n", &mut vocab).is_ok());
    }

    #[test]
    fn bounded_parse_rejects_forward_references() {
        let mut vocab = Vocab::new();
        // Graph has 2 nodes; node 2 does not exist yet on line 1.
        let e = parse_delta_log_for("edge 0 e 2\n", &mut vocab, 2).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("refers to node 2"), "{e}");
        assert!(e.to_string().contains("2 node(s) exist"), "{e}");

        // After a `node` line the same reference is legal, including
        // within the same batch; the next id past it is not.
        let ok = parse_delta_log_for("node t\nedge 0 e 2\nattr 2 a=1\n", &mut vocab, 2);
        assert!(ok.is_ok());
        let e = parse_delta_log_for("node t\ndel 3 e 0\n", &mut vocab, 2).unwrap_err();
        assert_eq!(e.line, 2);

        // Attr writes are checked too.
        let e = parse_delta_log_for("attr 7 a=1\n", &mut vocab, 3).unwrap_err();
        assert!(e.to_string().contains("refers to node 7"), "{e}");

        // The unbounded parser accepts the same text (round-trip use).
        assert!(parse_delta_log("edge 0 e 2\n", &mut vocab).is_ok());
    }

    #[test]
    fn lenient_parse_skips_corrupt_lines_with_reasons() {
        let mut vocab = Vocab::new();
        let src = "batch\nnode a\nedge 0 e\nnode b\nbogus 1 2\nedge 0 e 1\n";
        let p = parse_delta_log_lenient(src, &mut vocab, None).unwrap();
        assert_eq!(p.batches.len(), 1);
        assert_eq!(p.batches[0].ops.len(), 3, "two nodes + the good edge");
        assert_eq!(p.skipped.len(), 2);
        assert_eq!(p.skipped[0].0, 3);
        assert!(p.skipped[0].1.contains("expected `edge"), "{:?}", p.skipped);
        assert_eq!(p.skipped[1].0, 5);
        assert!(p.skipped[1].1.contains("bogus"), "{:?}", p.skipped);
        // The strict parser rejects the same text at the first bad line.
        let e = parse_delta_log(src, &mut vocab).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn lenient_skipped_node_does_not_advance_the_id_counter() {
        let mut vocab = Vocab::new();
        // Line 2's node is corrupt (trailing junk after the op). With 1
        // existing node, the replay target will only ever have node 1
        // from line 3 — so `attr 2` must be skipped as out of range,
        // not accepted against a phantom id.
        let src = "batch\nnode a extra junk\nnode b\nattr 2 x=1\nattr 1 x=1\n";
        let p = parse_delta_log_lenient(src, &mut vocab, Some(1)).unwrap();
        assert_eq!(p.skipped.len(), 2, "{:?}", p.skipped);
        assert_eq!(p.skipped[0].0, 2);
        assert_eq!(p.skipped[1].0, 4);
        assert!(
            p.skipped[1].1.contains("refers to node 2"),
            "{:?}",
            p.skipped
        );
        assert_eq!(p.batches[0].ops.len(), 2, "node b + attr 1");
    }

    #[test]
    fn lenient_on_clean_input_matches_strict() {
        let mut vocab = Vocab::new();
        let src = "batch\nnode a\nedge 0 e 0\nbatch\nattr 0 k=\"v\"\n";
        let strict = parse_delta_log(src, &mut vocab).unwrap();
        let lenient = parse_delta_log_lenient(src, &mut vocab, None).unwrap();
        assert!(lenient.skipped.is_empty());
        assert_eq!(strict.len(), lenient.batches.len());
        for (a, b) in strict.iter().zip(&lenient.batches) {
            assert_eq!(a.ops, b.ops);
        }
    }
}
