//! Checkpoint/resume for the streaming detector (DESIGN.md §11.4).
//!
//! A checkpoint captures everything `gfd detect --stream` needs to pick
//! up after a crash: the graph as of the last applied batch, the
//! violation cache, and the batch cursor. The file is **self-contained**
//! — labels and attributes are written as name strings, not interned
//! ids — so a resuming process with a freshly built `Vocab` reads it
//! without replaying the delta log from the start. The overlay is *not*
//! serialized: resuming rebuilds the index from the checkpointed graph
//! (`IncrementalDetector::from_parts`), which doubles as a compaction.
//!
//! Format (`GFDCKPT v1`, line-oriented, same tokenizer as the delta
//! log):
//!
//! ```text
//! GFDCKPT v1
//! cursor 7                  # batches already applied
//! value "ada"               # distinct attr values, first-touch order
//! node Person               # one per node, in dense-id order
//! attr 0 name="ada"
//! edge 0 knows 1
//! viol 2 3 0 5 9 2 1 4      # gfd, |m|, m..., |failed|, failed...
//! end                       # torn writes are detected by its absence
//! ```
//!
//! The `value` section persists the checkpoint's slice of the global
//! `ValueTable` in a deterministic order (first touch over dense node
//! order). Ids are never written — re-interning the lines in order on
//! load reproduces the writer's *relative* id order in the resuming
//! process, so id-keyed state rebuilds identically after the interning
//! change (DESIGN.md §15). The section is optional on read, keeping
//! pre-interning v1 checkpoints loadable.
//!
//! [`save_checkpoint`] writes to a temporary sibling and renames it into
//! place, so a crash mid-write leaves the previous checkpoint intact —
//! the property the crash-recovery test in `tests/fault_injection.rs`
//! relies on.

use crate::edgelist::LoadError;
use gfd_detect::ViolationRecord;
use gfd_graph::{Graph, NodeId, Vocab};
use std::fmt::Write as _;
use std::path::Path;

/// The first line of every checkpoint file; bump the version when the
/// format changes incompatibly.
const HEADER: &str = "GFDCKPT v1";

/// Resumable state of a streaming detection run.
#[derive(Debug)]
pub struct Checkpoint {
    /// Number of delta batches already applied (and detected against);
    /// resume starts replaying at this batch index.
    pub batches_applied: usize,
    /// The graph as of the last applied batch.
    pub graph: Graph,
    /// The violation cache at the cursor, sorted by `(gfd, m)`.
    pub violations: Vec<ViolationRecord>,
}

fn err(line: usize, message: impl Into<String>) -> LoadError {
    LoadError {
        line,
        message: message.into(),
    }
}

/// Render a checkpoint into its text form.
pub fn checkpoint_to_string(ckpt: &Checkpoint, vocab: &Vocab) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "cursor {}", ckpt.batches_applied);
    // Distinct attribute values in first-touch order; see the module
    // docs for why the order (not the ids) is what gets persisted.
    let mut seen = std::collections::BTreeSet::new();
    for n in ckpt.graph.nodes() {
        for &(_, value) in ckpt.graph.attrs(n) {
            if seen.insert(value.raw()) {
                let _ = writeln!(out, "value {}", crate::deltalog::fmt_value_id(value));
            }
        }
    }
    for n in ckpt.graph.nodes() {
        let _ = writeln!(out, "node {}", vocab.label_name(ckpt.graph.label(n)));
    }
    for n in ckpt.graph.nodes() {
        for (attr, value) in ckpt.graph.attrs(n) {
            let _ = writeln!(
                out,
                "attr {} {}={}",
                n.index(),
                vocab.attr_name(*attr),
                crate::deltalog::fmt_value_id(*value)
            );
        }
    }
    for (src, label, dst) in ckpt.graph.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {}",
            src.index(),
            vocab.label_name(label),
            dst.index()
        );
    }
    for v in &ckpt.violations {
        let _ = write!(out, "viol {} {}", v.gfd.index(), v.m.len());
        for n in v.m.iter() {
            let _ = write!(out, " {}", n.index());
        }
        let _ = write!(out, " {}", v.failed.len());
        for f in &v.failed {
            let _ = write!(out, " {f}");
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Parse a checkpoint produced by [`checkpoint_to_string`]. Fails with a
/// line-numbered error on any damage, including a missing `end` marker
/// (a torn write).
pub fn parse_checkpoint(src: &str, vocab: &mut Vocab) -> Result<Checkpoint, LoadError> {
    let mut lines = src.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (line_no, first) = lines
        .next()
        .ok_or_else(|| err(0, "empty checkpoint file"))?;
    if first != HEADER {
        return Err(err(line_no, format!("expected `{HEADER}` header")));
    }

    let mut cursor: Option<usize> = None;
    let mut graph = Graph::new();
    let mut violations = Vec::new();
    let mut ended = false;
    for (line_no, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if ended {
            return Err(err(line_no, "content after `end` marker"));
        }
        let tokens = crate::edgelist::tokenize(line);
        let mut parts = tokens.iter().map(String::as_str);
        let keyword = parts.next().expect("non-empty line");
        let parse_usize = |tok: Option<&str>, what: &str| -> Result<usize, LoadError> {
            tok.ok_or_else(|| err(line_no, format!("missing {what}")))?
                .parse::<usize>()
                .map_err(|_| err(line_no, format!("bad {what}")))
        };
        match keyword {
            "cursor" => {
                if cursor.is_some() {
                    return Err(err(line_no, "duplicate `cursor` line"));
                }
                cursor = Some(parse_usize(parts.next(), "batch cursor")?);
            }
            "value" => {
                let tok = parts
                    .next()
                    .ok_or_else(|| err(line_no, "expected `value VALUE`"))?;
                // Re-intern in writer order: the ids themselves are not
                // persisted, but dedup makes in-order re-interning
                // reproduce the writer's relative table order before any
                // `attr` line interns out of sequence.
                let _ = crate::edgelist::parse_value(tok);
            }
            "node" => {
                let label = parts
                    .next()
                    .ok_or_else(|| err(line_no, "expected `node LABEL`"))?;
                graph.add_node(vocab.label(label));
            }
            "attr" => {
                let (Some(n), Some(kv)) = (parts.next(), parts.next()) else {
                    return Err(err(line_no, "expected `attr NODE name=value`"));
                };
                let node = crate::deltalog::parse_node(n, line_no)?;
                if node.index() >= graph.node_count() {
                    return Err(err(line_no, format!("attr on unknown node {n}")));
                }
                let (name, value) = crate::edgelist::parse_attr(kv, line_no)?;
                graph.set_attr_id(node, vocab.attr(name), value);
            }
            "edge" => {
                let (Some(s), Some(l), Some(d)) = (parts.next(), parts.next(), parts.next()) else {
                    return Err(err(line_no, "expected `edge SRC LABEL DST`"));
                };
                let src = crate::deltalog::parse_node(s, line_no)?;
                let dst = crate::deltalog::parse_node(d, line_no)?;
                if src.index() >= graph.node_count() || dst.index() >= graph.node_count() {
                    return Err(err(line_no, "edge endpoint out of range"));
                }
                graph.add_edge(src, vocab.label(l), dst);
            }
            "viol" => {
                let gfd = parse_usize(parts.next(), "gfd index")?;
                let m_len = parse_usize(parts.next(), "match arity")?;
                let mut m = Vec::with_capacity(m_len);
                for _ in 0..m_len {
                    let n = parse_usize(parts.next(), "match node")?;
                    if n >= graph.node_count() {
                        return Err(err(line_no, format!("match node {n} out of range")));
                    }
                    m.push(NodeId::new(n));
                }
                let f_len = parse_usize(parts.next(), "failed-literal count")?;
                let mut failed = Vec::with_capacity(f_len);
                for _ in 0..f_len {
                    failed.push(parse_usize(parts.next(), "failed-literal index")?);
                }
                violations.push(ViolationRecord {
                    gfd: gfd_graph::GfdId::new(gfd),
                    m: m.into_boxed_slice(),
                    failed,
                });
            }
            "end" => {
                ended = true;
            }
            other => {
                return Err(err(
                    line_no,
                    format!("unknown checkpoint keyword `{other}`"),
                ));
            }
        }
        if parts.next().is_some() {
            return Err(err(line_no, "trailing tokens on checkpoint line"));
        }
    }
    if !ended {
        return Err(err(0, "missing `end` marker (truncated checkpoint?)"));
    }
    let batches_applied = cursor.ok_or_else(|| err(0, "missing `cursor` line"))?;
    Ok(Checkpoint {
        batches_applied,
        graph,
        violations,
    })
}

/// Write a checkpoint atomically: to `<path>.tmp` first, then rename
/// into place, so a crash mid-write never clobbers the previous
/// checkpoint.
pub fn save_checkpoint(path: &Path, ckpt: &Checkpoint, vocab: &Vocab) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, checkpoint_to_string(ckpt, vocab))?;
    std::fs::rename(&tmp, path)
}

/// Read and parse a checkpoint file; I/O failures surface as a
/// `line: 0` [`LoadError`] so callers have one error path.
pub fn load_checkpoint(path: &Path, vocab: &mut Vocab) -> Result<Checkpoint, LoadError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
    parse_checkpoint(&src, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{GfdId, Value};

    fn sample(vocab: &mut Vocab) -> Checkpoint {
        let mut g = Graph::new();
        let person = vocab.label("Person");
        let city = vocab.label("City");
        let a = g.add_node(person);
        let b = g.add_node(person);
        let c = g.add_node(city);
        g.set_attr(a, vocab.attr("name"), Value::str("ada"));
        g.set_attr(b, vocab.attr("age"), Value::Int(41));
        g.set_attr(c, vocab.attr("capital"), Value::Bool(true));
        g.add_edge(a, vocab.label("lives_in"), c);
        g.add_edge(b, vocab.label("knows"), a);
        Checkpoint {
            batches_applied: 7,
            graph: g,
            violations: vec![
                ViolationRecord {
                    gfd: GfdId::new(0),
                    m: vec![a, b].into_boxed_slice(),
                    failed: vec![1],
                },
                ViolationRecord {
                    gfd: GfdId::new(2),
                    m: vec![c].into_boxed_slice(),
                    failed: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_text() {
        let mut vocab = Vocab::new();
        let ckpt = sample(&mut vocab);
        let text = checkpoint_to_string(&ckpt, &vocab);

        // A resuming process starts with a fresh vocabulary.
        let mut vocab2 = Vocab::new();
        let back = parse_checkpoint(&text, &mut vocab2).unwrap();
        assert_eq!(back.batches_applied, 7);
        assert_eq!(back.graph.node_count(), 3);
        assert_eq!(back.graph.edge_count(), 2);
        assert_eq!(back.violations.len(), 2);
        assert_eq!(back.violations[0].gfd, GfdId::new(0));
        assert_eq!(&*back.violations[0].m, &[NodeId::new(0), NodeId::new(1)]);
        assert_eq!(back.violations[0].failed, vec![1]);
        // Re-rendering with the fresh vocab reproduces the bytes: the
        // crash-recovery equivalence test depends on this stability.
        assert_eq!(checkpoint_to_string(&back, &vocab2), text);
    }

    /// The `value` section lists each distinct attribute value once, in
    /// first-touch order over dense node ids, and a checkpoint without
    /// the section (pre-interning writer) still loads.
    #[test]
    fn value_section_is_deduped_ordered_and_optional() {
        let mut vocab = Vocab::new();
        let mut g = Graph::new();
        let t = vocab.label("T");
        let name = vocab.attr("name");
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(t);
        g.set_attr(a, name, Value::str("dup"));
        g.set_attr(b, name, Value::str("dup"));
        g.set_attr(c, name, Value::Int(9));
        let ckpt = Checkpoint {
            batches_applied: 0,
            graph: g,
            violations: vec![],
        };
        let text = checkpoint_to_string(&ckpt, &vocab);
        let value_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("value "))
            .collect();
        assert_eq!(value_lines, ["value \"dup\"", "value 9"]);
        assert!(parse_checkpoint(&text, &mut Vocab::new()).is_ok());

        // Section absent: still parses (old-format checkpoint).
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("value "))
            .map(|l| format!("{l}\n"))
            .collect();
        let back = parse_checkpoint(&stripped, &mut Vocab::new()).unwrap();
        assert_eq!(
            back.graph.attr(NodeId::new(0), vocab.attr("name")),
            Some(gfd_graph::ValueId::of("dup"))
        );
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let mut vocab = Vocab::new();
        let ckpt = sample(&mut vocab);
        let text = checkpoint_to_string(&ckpt, &vocab);
        let torn = &text[..text.len() - 5]; // lose the `end` marker
        let e = parse_checkpoint(torn, &mut Vocab::new()).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    #[test]
    fn damaged_lines_are_line_numbered() {
        let mut vocab = Vocab::new();
        for (src, needle) in [
            ("nope", "header"),
            ("GFDCKPT v1\ncursor x\nend", "bad batch cursor"),
            ("GFDCKPT v1\ncursor 0\nattr 3 a=1\nend", "unknown node"),
            ("GFDCKPT v1\ncursor 0\nedge 0 l 1\nend", "out of range"),
            ("GFDCKPT v1\ncursor 0\nviol 0 1 9 0\nend", "out of range"),
            ("GFDCKPT v1\nnode A\nend", "missing `cursor`"),
            ("GFDCKPT v1\ncursor 0\nend\nnode A", "after `end`"),
            ("GFDCKPT v1\ncursor 0\ncursor 1\nend", "duplicate"),
            ("GFDCKPT v1\ncursor 0 0\nend", "trailing"),
            ("GFDCKPT v1\ncursor 0\nvalue\nend", "expected `value"),
        ] {
            let e = parse_checkpoint(src, &mut vocab).unwrap_err();
            assert!(e.message.contains(needle), "`{src}` → {e}");
        }
    }

    #[test]
    fn save_is_atomic_via_rename() {
        let dir = std::env::temp_dir().join("gfd_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let mut vocab = Vocab::new();
        let ckpt = sample(&mut vocab);
        save_checkpoint(&path, &ckpt, &vocab).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        let back = load_checkpoint(&path, &mut Vocab::new()).unwrap();
        assert_eq!(back.batches_applied, ckpt.batches_applied);
        std::fs::remove_dir_all(&dir).ok();
    }
}
