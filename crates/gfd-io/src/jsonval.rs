//! A small self-contained JSON tree, parser and pretty-printer.
//!
//! This replaces `serde_json` for the interchange formats (DESIGN.md §5:
//! the workspace builds offline, so serialization is hand-rolled). The
//! subset is exactly what the wire formats need: objects with ordered
//! keys, arrays, strings, 64-bit integers, booleans and null. Floats are
//! rejected — no GFD value is a float, and silently truncating one on
//! import would corrupt data.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number form the formats use).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline-free
    /// final line, mirroring `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Byte offset of the offending input position.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting accepted by [`parse`]: crafted input with
/// thousands of `[`/`{` must return an error, not overflow the stack
/// (serde_json enforces the same bound).
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_keyword("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the formats;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        c => return Err(self.err(format!("unknown escape `\\{}`", c as char))),
                    }
                }
                Some(first) if first < 0x80 => {
                    out.push(first as char);
                    self.pos += 1;
                }
                Some(first) => {
                    // Consume one multi-byte UTF-8 scalar, validating only
                    // its own bytes: validating the whole remaining input
                    // per character made parsing quadratic on large files
                    // (a multi-megabyte trace took minutes).
                    let len = match first {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let scalar = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push(scalar.chars().next().unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Object(vec![
            ("name".into(), Json::Str("a \"quoted\" name\n".into())),
            ("n".into(), Json::Int(-42)),
            ("flag".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "items".into(),
                Json::Array(vec![
                    Json::Int(1),
                    Json::Str("two".into()),
                    Json::Array(vec![]),
                ]),
            ),
            ("empty".into(), Json::Object(vec![])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0], Json::Int(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1],
            Json::Str("A\t".into())
        );
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(parse(&deep_obj).is_err());
        // 100 levels stay fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{nodes: oops").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_survives() {
        let doc = Json::Str("héllo ☃".into());
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }
}
