//! A deliberately simple brute-force matcher used as a correctness oracle in
//! tests and property-based checks.
//!
//! It enumerates every assignment of pattern variables to graph nodes and
//! keeps those satisfying all label and edge constraints. Exponential, but
//! obviously correct — do not use outside tests/benchmarks.

use crate::search::Match;
use gfd_graph::{Graph, NodeId, Pattern};

/// Enumerate all homomorphic matches of `pattern` in `graph` by exhaustive
/// search. Matches are var-indexed like [`crate::search::Match`].
pub fn brute_force_matches(graph: &Graph, pattern: &Pattern) -> Vec<Match> {
    let k = pattern.node_count();
    if k == 0 || graph.node_count() == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut assignment = vec![NodeId::new(0); k];
    assign(graph, pattern, 0, &mut assignment, &mut out);
    out
}

fn assign(
    graph: &Graph,
    pattern: &Pattern,
    var: usize,
    assignment: &mut [NodeId],
    out: &mut Vec<Match>,
) {
    if var == assignment.len() {
        if is_valid(graph, pattern, assignment) {
            out.push(assignment.to_vec().into_boxed_slice());
        }
        return;
    }
    for node in graph.nodes() {
        assignment[var] = node;
        assign(graph, pattern, var + 1, assignment, out);
    }
}

/// Check every constraint of the pattern against a full assignment.
pub fn is_valid(graph: &Graph, pattern: &Pattern, assignment: &[NodeId]) -> bool {
    for v in pattern.vars() {
        if !pattern
            .label(v)
            .pattern_matches(graph.label(assignment[v.index()]))
        {
            return false;
        }
    }
    for e in pattern.edges() {
        let src = assignment[e.src.index()];
        let dst = assignment[e.dst.index()];
        if !graph.has_edge_pattern(src, e.label, dst) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::find_all_matches;
    use gfd_graph::{LabelIndex, Vocab};

    #[test]
    fn agrees_with_backtracking_matcher_on_triangle() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(t);
        g.add_edge(a, e, b);
        g.add_edge(b, e, c);
        g.add_edge(c, e, a);
        g.add_edge(a, e, c);

        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        p.add_edge(x, e, y);
        p.add_edge(y, e, z);

        let idx = LabelIndex::build(&g);
        let mut fast: Vec<Vec<NodeId>> = find_all_matches(&g, &idx, &p)
            .iter()
            .map(|m| m.to_vec())
            .collect();
        let mut brute: Vec<Vec<NodeId>> = brute_force_matches(&g, &p)
            .iter()
            .map(|m| m.to_vec())
            .collect();
        fast.sort();
        brute.sort();
        assert_eq!(fast, brute);
        assert!(!brute.is_empty());
    }

    #[test]
    fn empty_pattern_has_no_matches() {
        let g = Graph::new();
        let p = Pattern::new();
        assert!(brute_force_matches(&g, &p).is_empty());
    }
}
