//! Search plans: the variable ordering used by the backtracking matcher.
//!
//! A plan places pattern variables one at a time. Every position after the
//! first in a connected component is *anchored* to at least one earlier
//! position through a pattern edge, so candidate nodes can be generated from
//! adjacency lists instead of the whole graph (the VF2-style expansion the
//! paper adapts to homomorphism in §IV-C).

use gfd_graph::{LabelIndex, MatchIndex, Pattern, VarId};

/// Direction of an anchoring pattern edge relative to the new variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnchorDir {
    /// Edge runs from the anchored (earlier) variable to the new one:
    /// candidates come from the anchor's out-edges.
    FromAnchor,
    /// Edge runs from the new variable to the anchored one: candidates come
    /// from the anchor's in-edges.
    ToAnchor,
}

/// A constraint tying a plan position to an earlier one via a pattern edge.
#[derive(Clone, Copy, Debug)]
pub struct Anchor {
    /// Earlier plan position the edge connects to.
    pub pos: usize,
    /// The pattern edge label (possibly wildcard).
    pub label: gfd_graph::LabelId,
    /// Whether the edge leaves or enters the anchor.
    pub dir: AnchorDir,
}

/// How the matcher should merge a step's anchor adjacencies into the
/// candidate list (DESIGN.md §15). Picked per step from the view's
/// `(edge label, endpoint label)` pair frequencies; `TwoPointer` and
/// `Gallop` are advisory (the matcher re-derives the skew regime from
/// the exact lengths at frame time), but `Bitset` gates the
/// word-at-a-time path, which pays off only when several concrete
/// anchors are all high-degree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntersectStrategy {
    /// Linear sorted merge — comparable adjacency lengths.
    #[default]
    TwoPointer,
    /// Exponential-probe merge — one side much longer than the other.
    Gallop,
    /// Materialize each anchor adjacency into a `NodeSet` and intersect
    /// with u64 word ANDs — multiple dense anchors on a hub.
    Bitset,
}

/// Estimated per-anchor expansion (pair frequency) at which a step with
/// two or more concrete anchors switches to the bitset merge. Pinned by
/// the `micro_structures` intersection guard: below this the bitset's
/// materialize/reset overhead loses to the sorted merges.
pub const BITSET_ANCHOR_DEGREE: usize = 64;

/// Length-ratio between the largest and smallest anchor estimates past
/// which the plan expects the galloping merge to win (mirrors the
/// matcher's runtime `GALLOP_FACTOR`).
const SKEW_FACTOR: usize = 8;

/// One step of a plan: which variable to place and how it connects to the
/// already-placed prefix.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// The pattern variable placed at this position.
    pub var: VarId,
    /// Anchors to earlier positions; empty exactly for component roots.
    pub anchors: Vec<Anchor>,
    /// Labels of self-loop pattern edges `var --l--> var`; a candidate node
    /// must carry a matching self-loop.
    pub self_loops: Vec<gfd_graph::LabelId>,
    /// How to merge this step's anchor adjacencies into the candidates.
    pub strategy: IntersectStrategy,
}

/// A complete variable ordering for a pattern.
#[derive(Clone, Debug)]
pub struct MatchPlan {
    steps: Vec<PlanStep>,
    var_to_pos: Vec<usize>,
    component_roots: Vec<usize>,
}

impl MatchPlan {
    /// Build a plan for `pattern` from structure alone (no target-graph
    /// statistics).
    pub fn structural(pattern: &Pattern, pivot: Option<VarId>) -> Self {
        Self::build(pattern, pivot, None::<&LabelIndex>)
    }

    /// Build a plan for `pattern`.
    ///
    /// * `pivot` — if given, this variable is placed first (required for
    ///   pivoted work-unit matching). Otherwise the most selective variable
    ///   (rarest label per `stats`, if provided) starts the plan.
    /// * `stats` — label frequencies of the target graph, used to order
    ///   choices by selectivity. Optional; structure alone works. Any
    ///   [`MatchIndex`] serves: the frozen [`LabelIndex`] for static
    ///   graphs, `gfd_graph::DeltaIndex` for streaming ones — the latter
    ///   reports delta-adjusted counts, so plans built between
    ///   compactions follow the live selectivity, not the frozen base's.
    pub fn build<I: MatchIndex>(
        pattern: &Pattern,
        pivot: Option<VarId>,
        stats: Option<&I>,
    ) -> Self {
        let n = pattern.node_count();
        assert!(n > 0, "cannot plan an empty pattern");
        if let Some(p) = pivot {
            assert!(p.index() < n, "pivot out of range");
        }
        let freq =
            |v: VarId| -> usize { stats.map_or(usize::MAX, |s| s.frequency(pattern.label(v))) };

        // Estimated candidate count when `v` is placed next to the
        // current prefix: the node-label frequency, sharpened by the real
        // `(edge label, endpoint label)` pair frequencies of the view —
        // an upper bound on the anchored-expansion fan, which is what the
        // matcher actually enumerates.
        let anchored_estimate = |v: VarId, placed: &[bool]| -> usize {
            let Some(s) = stats else {
                return usize::MAX;
            };
            let mut est = s.frequency(pattern.label(v));
            for &(elabel, u) in pattern.in_edges(v) {
                // Pattern edge u --elabel--> v: candidates come from the
                // anchor's out-slice, so at most `out_pair_frequency`
                // edges can produce one.
                if u != v && placed[u.index()] {
                    est = est.min(s.out_pair_frequency(elabel, pattern.label(v)));
                }
            }
            for &(elabel, u) in pattern.out_edges(v) {
                if u != v && placed[u.index()] {
                    est = est.min(s.in_pair_frequency(elabel, pattern.label(v)));
                }
            }
            est
        };

        let mut placed = vec![false; n];
        let mut pos_of = vec![usize::MAX; n];
        let mut steps: Vec<PlanStep> = Vec::with_capacity(n);
        let mut component_roots = Vec::new();

        // Number of edges from `v` to already-placed variables.
        let connectivity = |v: VarId, placed: &[bool]| -> usize {
            pattern
                .out_edges(v)
                .iter()
                .chain(pattern.in_edges(v))
                .filter(|(_, u)| placed[u.index()])
                .count()
        };

        while steps.len() < n {
            let next = if steps.is_empty() {
                pivot.unwrap_or_else(|| {
                    // Most selective start: min label frequency, then max
                    // degree for tie-breaking.
                    pattern
                        .vars()
                        .min_by_key(|&v| (freq(v), usize::MAX - pattern.degree(v)))
                        .expect("non-empty pattern")
                })
            } else {
                // Prefer variables connected to the placed prefix; among
                // those, max connectivity then min estimated fan-out
                // (label-pair frequency, falling back to label frequency).
                let best_connected = pattern
                    .vars()
                    .filter(|&v| !placed[v.index()])
                    .filter(|&v| connectivity(v, &placed) > 0)
                    .max_by_key(|&v| {
                        (
                            connectivity(v, &placed),
                            usize::MAX - anchored_estimate(v, &placed),
                        )
                    });
                match best_connected {
                    Some(v) => v,
                    // New component: start a fresh root at the most
                    // selective remaining variable.
                    None => pattern
                        .vars()
                        .filter(|&v| !placed[v.index()])
                        .min_by_key(|&v| (freq(v), usize::MAX - pattern.degree(v)))
                        .expect("loop invariant: some variable unplaced"),
                }
            };

            let mut anchors = Vec::new();
            let mut self_loops = Vec::new();
            for &(label, u) in pattern.in_edges(next) {
                // Pattern edge u --label--> next.
                if u == next {
                    self_loops.push(label);
                } else if placed[u.index()] {
                    anchors.push(Anchor {
                        pos: pos_of[u.index()],
                        label,
                        dir: AnchorDir::FromAnchor,
                    });
                }
            }
            for &(label, u) in pattern.out_edges(next) {
                // Pattern edge next --label--> u. Self-loops were already
                // collected from the in-edge list.
                if u != next && placed[u.index()] {
                    anchors.push(Anchor {
                        pos: pos_of[u.index()],
                        label,
                        dir: AnchorDir::ToAnchor,
                    });
                }
            }
            if anchors.is_empty() {
                component_roots.push(steps.len());
            }
            let strategy = choose_strategy(pattern, next, &anchors, stats);
            placed[next.index()] = true;
            pos_of[next.index()] = steps.len();
            steps.push(PlanStep {
                var: next,
                anchors,
                self_loops,
                strategy,
            });
        }

        MatchPlan {
            steps,
            var_to_pos: pos_of,
            component_roots,
        }
    }

    /// The plan steps in placement order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Number of positions (= pattern variables).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the plan is empty (never true for valid patterns).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The variable placed at `pos`.
    pub fn var_at(&self, pos: usize) -> VarId {
        self.steps[pos].var
    }

    /// The plan position of variable `v`.
    pub fn pos_of(&self, v: VarId) -> usize {
        self.var_to_pos[v.index()]
    }

    /// Positions that start a new connected component (position 0 is always
    /// one of them).
    pub fn component_roots(&self) -> &[usize] {
        &self.component_roots
    }

    /// A copy of this plan with every [`IntersectStrategy::Bitset`] step
    /// demoted to the sorted two-pointer merge. Ordering, anchors and
    /// the remaining strategies are untouched, so the copy isolates the
    /// bitset candidate fold from the rest of the plan — the ablation
    /// the `micro_structures` crossover guard times (DESIGN.md §15).
    pub fn without_bitset(&self) -> Self {
        let mut plan = self.clone();
        for s in &mut plan.steps {
            if s.strategy == IntersectStrategy::Bitset {
                s.strategy = IntersectStrategy::TwoPointer;
            }
        }
        plan
    }
}

/// Pick the merge strategy for a step from the view's pair-frequency
/// stats. The matcher expands from the *smallest* anchor adjacency and
/// merges the rest, so the decision rides on the second-smallest
/// estimate: if every non-seed concrete anchor is still high-degree,
/// word-at-a-time bitset ANDs amortize over all of them; a large
/// largest/smallest skew favours galloping; otherwise the plain
/// two-pointer merge.
fn choose_strategy<I: MatchIndex>(
    pattern: &Pattern,
    var: VarId,
    anchors: &[Anchor],
    stats: Option<&I>,
) -> IntersectStrategy {
    let Some(s) = stats else {
        return IntersectStrategy::TwoPointer;
    };
    let mut ests: Vec<usize> = anchors
        .iter()
        .filter(|a| !a.label.is_wildcard())
        .map(|a| match a.dir {
            AnchorDir::FromAnchor => s.out_pair_frequency(a.label, pattern.label(var)),
            AnchorDir::ToAnchor => s.in_pair_frequency(a.label, pattern.label(var)),
        })
        .collect();
    ests.sort_unstable();
    match ests.as_slice() {
        [] | [_] => IntersectStrategy::TwoPointer,
        [lo, .., hi] => {
            if ests[1] >= BITSET_ANCHOR_DEGREE {
                IntersectStrategy::Bitset
            } else if *hi >= SKEW_FACTOR * (*lo).max(1) {
                IntersectStrategy::Gallop
            } else {
                IntersectStrategy::TwoPointer
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{Graph, LabelId, Vocab};

    fn diamond(v: &mut Vocab) -> Pattern {
        // x -> y, x -> z, y -> w, z -> w
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        let w = p.add_node(t, "w");
        p.add_edge(x, e, y);
        p.add_edge(x, e, z);
        p.add_edge(y, e, w);
        p.add_edge(z, e, w);
        p
    }

    #[test]
    fn every_non_root_step_is_anchored() {
        let mut v = Vocab::new();
        let p = diamond(&mut v);
        let plan = MatchPlan::structural(&p, None);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.component_roots(), &[0]);
        for (i, step) in plan.steps().iter().enumerate().skip(1) {
            assert!(!step.anchors.is_empty(), "step {i} lost connectivity");
            for a in &step.anchors {
                assert!(a.pos < i);
            }
        }
    }

    #[test]
    fn pivot_is_placed_first() {
        let mut v = Vocab::new();
        let p = diamond(&mut v);
        for pv in 0..4 {
            let plan = MatchPlan::structural(&p, Some(VarId::new(pv)));
            assert_eq!(plan.var_at(0), VarId::new(pv));
            assert_eq!(plan.pos_of(VarId::new(pv)), 0);
        }
    }

    #[test]
    fn var_pos_round_trip() {
        let mut v = Vocab::new();
        let p = diamond(&mut v);
        let plan = MatchPlan::structural(&p, Some(VarId::new(2)));
        for pos in 0..plan.len() {
            assert_eq!(plan.pos_of(plan.var_at(pos)), pos);
        }
    }

    #[test]
    fn disconnected_pattern_has_multiple_roots() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let mut p = Pattern::new();
        let a = p.add_node(t, "a");
        let b = p.add_node(t, "b");
        p.add_node(t, "c"); // isolated
        p.add_edge(a, v.label("e"), b);
        let plan = MatchPlan::structural(&p, None);
        assert_eq!(plan.component_roots().len(), 2);
    }

    #[test]
    fn selectivity_prefers_rare_labels() {
        let mut v = Vocab::new();
        let common = v.label("common");
        let rare = v.label("rare");
        let e = v.label("e");
        // Graph: many `common` nodes, one `rare`.
        let mut g = Graph::new();
        let r = g.add_node(rare);
        for _ in 0..10 {
            let c = g.add_node(common);
            g.add_edge(r, e, c);
        }
        let idx = LabelIndex::build(&g);
        // Pattern: common <- rare -> common
        let mut p = Pattern::new();
        let c1 = p.add_node(common, "c1");
        let rr = p.add_node(rare, "r");
        let c2 = p.add_node(common, "c2");
        p.add_edge(rr, e, c1);
        p.add_edge(rr, e, c2);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        assert_eq!(plan.var_at(0), rr, "should start at the rare label");
    }

    #[test]
    fn anchor_directions_reflect_edge_orientation() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y); // x -> y
        let plan = MatchPlan::structural(&p, Some(x));
        let step1 = &plan.steps()[1];
        assert_eq!(step1.var, y);
        assert_eq!(step1.anchors.len(), 1);
        // Edge runs from the anchor (x at pos 0) to y.
        assert_eq!(step1.anchors[0].dir, AnchorDir::FromAnchor);
        assert_eq!(step1.anchors[0].pos, 0);

        let plan2 = MatchPlan::structural(&p, Some(y));
        let step1 = &plan2.steps()[1];
        assert_eq!(step1.var, x);
        assert_eq!(step1.anchors[0].dir, AnchorDir::ToAnchor);
    }

    /// The streaming-planner regression: a delta batch inverts which
    /// label is rare, and a plan built from the overlay's statistics must
    /// anchor at the *new* rarest label — the frozen base would pick the
    /// stale one.
    #[test]
    fn delta_inverted_rarity_moves_the_anchor() {
        use gfd_graph::{DeltaBatch, NodeId};
        let mut v = Vocab::new();
        let a = v.label("a");
        let b = v.label("b");
        let e = v.label("e");
        // Base: one `a` node, ten `b` nodes — `a` is rare.
        let mut g = Graph::new();
        let ra = g.add_node(a);
        for _ in 0..10 {
            let nb = g.add_node(b);
            g.add_edge(ra, e, nb);
        }
        let mut p = Pattern::new();
        let pa = p.add_node(a, "x");
        let pb = p.add_node(b, "y");
        p.add_edge(pa, e, pb);

        let frozen = LabelIndex::build(&g);
        assert_eq!(MatchPlan::build(&p, None, Some(&frozen)).var_at(0), pa);

        // A delta batch floods the graph with `a` nodes: now `b` is rare.
        let mut idx = frozen.into_delta();
        let mut batch = DeltaBatch::new();
        for i in 0..30 {
            batch.add_node(a);
            batch.add_edge(NodeId::new(11 + i), e, NodeId::new(1));
        }
        idx.apply(&batch, &mut g);

        // The frozen-base plan above anchored at `a`; the overlay-aware
        // one must move to `b`.
        let overlay_plan = MatchPlan::build(&p, None, Some(&idx));
        assert_eq!(
            overlay_plan.var_at(0),
            pb,
            "plan ignored the delta-adjusted label frequencies"
        );
    }

    /// Two dense hubs feeding the same targets: the closing step of the
    /// diamond sees two concrete anchors whose pair frequencies both
    /// clear [`BITSET_ANCHOR_DEGREE`], so the plan gates the bitset merge.
    #[test]
    fn dense_multi_anchor_step_selects_bitset() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let h1 = g.add_node(t);
        let h2 = g.add_node(t);
        for _ in 0..128 {
            let w = g.add_node(t);
            g.add_edge(h1, e, w);
            g.add_edge(h2, e, w);
        }
        let idx = LabelIndex::build(&g);
        let p = diamond(&mut v);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let multi = plan
            .steps()
            .iter()
            .find(|s| s.anchors.len() >= 2)
            .expect("diamond has a doubly-anchored step");
        assert_eq!(multi.strategy, IntersectStrategy::Bitset);
        // Singly-anchored steps never pay for the bitset.
        for s in plan.steps().iter().filter(|s| s.anchors.len() < 2) {
            assert_ne!(s.strategy, IntersectStrategy::Bitset);
        }
    }

    /// On a sparse graph the same diamond keeps the two-pointer merge,
    /// and without stats the strategy defaults to it everywhere.
    #[test]
    fn sparse_or_statless_steps_stay_two_pointer() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(t);
        g.add_edge(a, e, c);
        g.add_edge(b, e, c);
        let idx = LabelIndex::build(&g);
        let p = diamond(&mut v);
        for step in MatchPlan::build(&p, None, Some(&idx)).steps() {
            assert_ne!(step.strategy, IntersectStrategy::Bitset);
        }
        for step in MatchPlan::structural(&p, None).steps() {
            assert_eq!(step.strategy, IntersectStrategy::TwoPointer);
        }
    }

    #[test]
    fn wildcard_label_is_least_selective() {
        let mut v = Vocab::new();
        let rare = v.label("rare");
        let e = v.label("e");
        let mut g = Graph::new();
        let a = g.add_node(rare);
        let b = g.add_node(v.label("other"));
        g.add_edge(a, e, b);
        let idx = LabelIndex::build(&g);
        let mut p = Pattern::new();
        let w = p.add_node(LabelId::WILDCARD, "w");
        let r = p.add_node(rare, "r");
        p.add_edge(r, e, w);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        assert_eq!(plan.var_at(0), r);
    }
}
