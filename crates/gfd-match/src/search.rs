//! Resumable backtracking homomorphism search.
//!
//! [`HomSearch`] drives a VF2-style state-space search relaxed to
//! homomorphism (pattern nodes may map to the same graph node). The search
//! state is an explicit stack, which gives the two capabilities the
//! parallel algorithms need:
//!
//! * **deadline interruption** — [`HomSearch::run`] can stop mid-search when
//!   a TTL expires and later continue where it left off;
//! * **work-unit splitting** — [`HomSearch::split_shallowest`] carves the
//!   untried sibling branches of the shallowest open level into *prefix
//!   assignments* that other workers can resume independently (the paper's
//!   Example 6).

use crate::plan::{Anchor, AnchorDir, IntersectStrategy, MatchPlan};
use gfd_graph::{Dir, Graph, LabelIndex, MatchIndex, NodeId, NodeSet, Pattern, TopologyView};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A complete match: `match_[v.index()]` is the graph node assigned to
/// pattern variable `v`.
pub type Match = Box<[NodeId]>;

/// Why a call to [`HomSearch::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The search space is exhausted; every remaining match was emitted.
    Exhausted,
    /// The deadline passed; the search can be resumed or split.
    Deadline,
    /// The stop flag was raised or the callback returned `Break`.
    Stopped,
}

/// External limits checked periodically during the search.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchLimits<'a> {
    /// Hard deadline; `run` returns [`RunOutcome::Deadline`] soon after.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation (e.g. another worker found a conflict).
    pub stop: Option<&'a AtomicBool>,
}

impl<'a> SearchLimits<'a> {
    /// No limits: run to exhaustion.
    pub fn none() -> Self {
        Self::default()
    }

    /// Limit by deadline only.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchLimits {
            deadline: Some(deadline),
            stop: None,
        }
    }
}

/// How often (in search steps) the limits are polled.
const CHECK_INTERVAL: u32 = 256;

enum Candidates<'a> {
    Borrowed(&'a [NodeId]),
    Owned(Vec<NodeId>),
}

impl Candidates<'_> {
    fn as_slice(&self) -> &[NodeId] {
        match self {
            Candidates::Borrowed(s) => s,
            Candidates::Owned(v) => v,
        }
    }
}

struct Frame<'a> {
    candidates: Candidates<'a>,
    cursor: usize,
}

/// A resumable homomorphism search of one pattern in one graph.
///
/// Edge probes and anchored expansion run on the [`TopologyView`]
/// carried by the index — the frozen CSR for a static graph
/// ([`LabelIndex`], the default), or the delta-CSR overlay for a graph
/// under streaming updates (`gfd_graph::DeltaIndex`): `O(log d + log δ)`
/// probes and per-`(node, label)` sorted sub-slices either way, so the
/// static and incremental pipelines share this one search.
pub struct HomSearch<'a, I: MatchIndex = LabelIndex> {
    graph: &'a Graph,
    index: &'a I,
    view: &'a I::View,
    pattern: &'a Pattern,
    plan: &'a MatchPlan,
    /// Optional per-variable candidate filters (e.g. dual-simulation sets).
    filters: Option<&'a [NodeSet]>,
    /// Fixed assignments for leading plan positions (pivot node and/or a
    /// split prefix).
    prefix: Vec<NodeId>,
    frames: Vec<Frame<'a>>,
    assignment: Vec<NodeId>,
    started: bool,
    exhausted: bool,
    /// Scratch bitsets for the word-at-a-time anchor merge, sized once
    /// to the graph and reset in-pass (the draining intersection) or
    /// sparsely between frames (DESIGN.md §15).
    scratch_cand: NodeSet,
    scratch_adj: NodeSet,
}

impl<'a, I: MatchIndex> HomSearch<'a, I> {
    /// A search over the whole graph.
    pub fn new(graph: &'a Graph, index: &'a I, pattern: &'a Pattern, plan: &'a MatchPlan) -> Self {
        // Fail fast (debug builds) if the graph's topology changed behind
        // the index's back — probes on a stale view silently miss edges.
        index.assert_fresh(graph);
        HomSearch {
            graph,
            index,
            view: index.view(),
            pattern,
            plan,
            filters: None,
            prefix: Vec::new(),
            frames: Vec::new(),
            assignment: vec![NodeId::new(0); plan.len()],
            started: false,
            exhausted: false,
            scratch_cand: NodeSet::default(),
            scratch_adj: NodeSet::default(),
        }
    }

    /// Fix the leading plan positions to `prefix` (position `i` ↦
    /// `prefix[i]`). With a single element this is pivoted search; longer
    /// prefixes resume split work units.
    pub fn with_prefix(mut self, prefix: &[NodeId]) -> Self {
        assert!(
            prefix.len() <= self.plan.len(),
            "prefix longer than the plan"
        );
        assert!(!self.started, "prefix must be set before running");
        self.prefix = prefix.to_vec();
        self
    }

    /// Restrict candidates of each variable to the given node sets
    /// (indexed by `VarId`), e.g. dual-simulation sets.
    pub fn with_filters(mut self, filters: &'a [NodeSet]) -> Self {
        assert_eq!(filters.len(), self.pattern.node_count());
        self.filters = Some(filters);
        self
    }

    /// Is the search complete (no further matches)?
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Current search depth (number of open stack frames).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn passes_filter(&self, var: gfd_graph::VarId, node: NodeId) -> bool {
        self.filters.is_none_or(|f| f[var.index()].contains(node))
    }

    fn anchor_holds(&self, anchor: &Anchor, candidate: NodeId) -> bool {
        let anchored = self.assignment[anchor.pos];
        match anchor.dir {
            AnchorDir::FromAnchor => self
                .view
                .has_edge_pattern(anchored, anchor.label, candidate),
            AnchorDir::ToAnchor => self
                .view
                .has_edge_pattern(candidate, anchor.label, anchored),
        }
    }

    fn self_loops_hold(&self, step: &crate::plan::PlanStep, node: NodeId) -> bool {
        step.self_loops
            .iter()
            .all(|&l| self.view.has_edge_pattern(node, l, node))
    }

    /// Is `node` a valid binding for plan position `pos`, given the bound
    /// positions `0..pos`?
    fn valid_at(&self, pos: usize, node: NodeId) -> bool {
        let step = &self.plan.steps()[pos];
        self.pattern
            .label(step.var)
            .pattern_matches(self.graph.label(node))
            && self.passes_filter(step.var, node)
            && self.self_loops_hold(step, node)
            && step.anchors.iter().all(|a| self.anchor_holds(a, node))
    }

    fn make_frame(&mut self, pos: usize) -> Frame<'a> {
        // Fixed prefix positions carry exactly one (validated) candidate.
        if pos < self.prefix.len() {
            let node = self.prefix[pos];
            let candidates = if self.valid_at(pos, node) {
                vec![node]
            } else {
                Vec::new()
            };
            return Frame {
                candidates: Candidates::Owned(candidates),
                cursor: 0,
            };
        }

        let step = &self.plan.steps()[pos];
        if step.anchors.is_empty() {
            // Component root: candidates from the label index.
            let base = self.index.candidates(self.pattern.label(step.var));
            let candidates = if self.filters.is_some() || !step.self_loops.is_empty() {
                Candidates::Owned(
                    base.iter()
                        .copied()
                        .filter(|&n| {
                            self.passes_filter(step.var, n) && self.self_loops_hold(step, n)
                        })
                        .collect(),
                )
            } else {
                Candidates::Borrowed(base)
            };
            return Frame {
                candidates,
                cursor: 0,
            };
        }

        // Anchored: expand from the anchor with the smallest
        // label-matching adjacency, located in O(log d + log δ) on the
        // topology view (instead of filtering the anchor's full
        // adjacency). The closures borrow only the assignment so the
        // scratch bitsets stay free for the word-merge below.
        let view = self.view;
        let assignment = &self.assignment;
        let probe_for = |a: &Anchor| -> (NodeId, Dir) {
            let anchored = assignment[a.pos];
            match a.dir {
                AnchorDir::FromAnchor => (anchored, Dir::Out),
                AnchorDir::ToAnchor => (anchored, Dir::In),
            }
        };
        // This runs once per frame push on the DFS hot path: pick the
        // seed and merge anchors by re-probing `matching_len` (an
        // O(log d) lookup over at most a handful of anchors) rather than
        // materializing every anchor's adjacency.
        let len_for = |a: &Anchor| -> usize {
            let (v, dir) = probe_for(a);
            view.matching_len(v, dir, a.label)
        };
        let best_i = (0..step.anchors.len())
            .min_by_key(|&i| len_for(&step.anchors[i]))
            .expect("anchored step has anchors");

        // Candidate node ids from the seed adjacency, visited in
        // (label, node) order. Under a concrete label node ids strictly
        // increase; under a wildcard anchor label the same node can recur
        // across label groups, so sort once and dedup adjacently — never
        // an O(d·c) `contains`.
        let seed = &step.anchors[best_i];
        let mut candidates: Vec<NodeId> = Vec::with_capacity(len_for(seed));
        let (seed_v, seed_dir) = probe_for(seed);
        view.for_each_matching(seed_v, seed_dir, seed.label, |(_, n)| candidates.push(n));
        if seed.label.is_wildcard() {
            candidates.sort_unstable();
        }
        candidates.dedup();

        // Non-seed concrete anchors; wildcard anchors have no single
        // sorted sub-slice, so they always stay per-candidate probes.
        let extra: Vec<usize> = (0..step.anchors.len())
            .filter(|&i| i != best_i && !step.anchors[i].label.is_wildcard())
            .collect();

        let use_bitset = step.strategy == IntersectStrategy::Bitset
            && !extra.is_empty()
            && candidates.len() >= BITSET_MIN_CANDIDATES;
        let mut merged_i = None;
        if use_bitset {
            // Bitset regime (plan-gated, DESIGN.md §15): fold *every*
            // remaining concrete anchor adjacency into the candidate
            // bitset, one u64 AND per 64 nodes. Scratch sets are sized
            // once to the graph; each anchor adjacency streams straight
            // into the adjacency scratch, and the draining intersection
            // zeroes it again in the same word pass — one insert per
            // streamed edge, no staging list, no sparse replay. A frame
            // costs O(candidates + Σ adjacency + words), never
            // O(node_count) bit-by-bit.
            let probes: Vec<(NodeId, Dir, gfd_graph::LabelId)> = extra
                .iter()
                .map(|&i| {
                    let a = &step.anchors[i];
                    let (v, d) = probe_for(a);
                    (v, d, a.label)
                })
                .collect();
            let cap = self.graph.node_count();
            self.scratch_cand.reserve_nodes(cap);
            self.scratch_adj.reserve_nodes(cap);
            for &c in &candidates {
                self.scratch_cand.insert(c);
            }
            for (v, dir, label) in probes {
                view.collect_matching_into(v, dir, label, &mut self.scratch_adj);
                let left = self.scratch_cand.intersect_with_drain(&mut self.scratch_adj);
                if left == 0 {
                    break;
                }
            }
            let survivors: Vec<NodeId> = self.scratch_cand.iter().collect();
            self.scratch_cand.clear_sparse(candidates.iter().copied());
            candidates = survivors;
        } else {
            // Sorted-merge intersection with the next-smallest concrete
            // anchor adjacency: both sequences are ascending, so one
            // two-pointer (or galloping, under skew) pass replaces
            // per-candidate edge probes for that anchor.
            merged_i = extra
                .iter()
                .copied()
                .min_by_key(|&i| len_for(&step.anchors[i]));
            if let Some(mi) = merged_i {
                let merge = &step.anchors[mi];
                let (merge_v, merge_dir) = probe_for(merge);
                candidates =
                    intersect_sorted_view(view, &candidates, merge_v, merge_dir, merge.label);
            }
        }

        let var_label = self.pattern.label(step.var);
        candidates.retain(|&node| {
            var_label.pattern_matches(self.graph.label(node))
                && self.passes_filter(step.var, node)
                && self.self_loops_hold(step, node)
                // Homomorphism: no injectivity check; just the anchors
                // not already covered by the seed slice, the merge, or
                // the bitset fold.
                && step
                    .anchors
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| {
                        i != best_i
                            && Some(i) != merged_i
                            && (!use_bitset || step.anchors[i].label.is_wildcard())
                    })
                    .all(|(_, a)| self.anchor_holds(a, node))
        });
        Frame {
            candidates: Candidates::Owned(candidates),
            cursor: 0,
        }
    }

    /// Extract the current complete assignment as a var-indexed match.
    fn emit(&self) -> Match {
        let mut m = vec![NodeId::new(0); self.plan.len()].into_boxed_slice();
        for pos in 0..self.plan.len() {
            m[self.plan.var_at(pos).index()] = self.assignment[pos];
        }
        m
    }

    /// Run the search, invoking `on_match` for every match found.
    ///
    /// Returns when the space is exhausted, a limit triggers, or the
    /// callback breaks. Can be called again after `Deadline` to resume.
    pub fn run<F>(&mut self, mut on_match: F, limits: SearchLimits<'_>) -> RunOutcome
    where
        F: FnMut(Match) -> ControlFlow<()>,
    {
        if self.exhausted {
            return RunOutcome::Exhausted;
        }
        if !self.started {
            self.started = true;
            let f = self.make_frame(0);
            self.frames.push(f);
        }

        let mut ticks: u32 = 0;
        loop {
            ticks += 1;
            if ticks >= CHECK_INTERVAL {
                ticks = 0;
                if let Some(stop) = limits.stop {
                    if stop.load(Ordering::Relaxed) {
                        return RunOutcome::Stopped;
                    }
                }
                if let Some(deadline) = limits.deadline {
                    if Instant::now() >= deadline {
                        return RunOutcome::Deadline;
                    }
                }
            }

            let depth = match self.frames.len() {
                0 => {
                    self.exhausted = true;
                    return RunOutcome::Exhausted;
                }
                d => d - 1,
            };
            let frame = &mut self.frames[depth];
            match frame.candidates.as_slice().get(frame.cursor) {
                Some(&node) => {
                    frame.cursor += 1;
                    self.assignment[depth] = node;
                    if depth + 1 == self.plan.len() {
                        if on_match(self.emit()).is_break() {
                            return RunOutcome::Stopped;
                        }
                    } else {
                        let f = self.make_frame(depth + 1);
                        self.frames.push(f);
                    }
                }
                None => {
                    self.frames.pop();
                }
            }
        }
    }

    /// Split the untried sibling branches at the shallowest open level into
    /// prefix assignments (plan positions `0..=d`), removing them from this
    /// search. Returns an empty vector when there is nothing to split.
    pub fn split_shallowest(&mut self) -> Vec<Vec<NodeId>> {
        for depth in 0..self.frames.len() {
            let untried =
                self.frames[depth].candidates.as_slice().len() - self.frames[depth].cursor;
            if untried == 0 {
                continue;
            }
            let frame = &self.frames[depth];
            let mut prefixes = Vec::with_capacity(untried);
            for &cand in &frame.candidates.as_slice()[frame.cursor..] {
                let mut p = Vec::with_capacity(depth + 1);
                p.extend_from_slice(&self.assignment[..depth]);
                p.push(cand);
                prefixes.push(p);
            }
            // Consume them locally: this search keeps only the branch it is
            // currently inside.
            let frame = &mut self.frames[depth];
            frame.cursor = frame.candidates.as_slice().len();
            return prefixes;
        }
        Vec::new()
    }
}

/// Length-ratio at which [`intersect_sorted_view`] abandons the linear
/// two-pointer merge for a galloping (exponential-probe) strategy.
const GALLOP_FACTOR: usize = 8;

/// Minimum live candidate count for a plan-gated
/// [`IntersectStrategy::Bitset`] step to actually take the bitset path:
/// below this the insert/read-back overhead of the scratch sets loses
/// to the sorted merges even when the plan's estimates were large
/// (estimates are upper bounds; the live set after the seed expansion
/// can be far smaller).
pub const BITSET_MIN_CANDIDATES: usize = 64;

/// Least index `j >= start` with `slice[j] >= target`, assuming `slice`
/// is ascending. Probes exponentially (`start+1`, `start+2`, `start+4`,
/// …) to bracket the answer, then binary-searches the bracketed window:
/// O(log gap) comparisons instead of the two-pointer's O(gap).
pub fn gallop_lower_bound(slice: &[NodeId], start: usize, target: NodeId) -> usize {
    if start >= slice.len() || slice[start] >= target {
        return start;
    }
    // Invariant: slice[lo] < target.
    let mut lo = start;
    let mut step = 1;
    loop {
        let hi = lo + step;
        if hi >= slice.len() {
            return lo + 1 + slice[lo + 1..].partition_point(|&x| x < target);
        }
        if slice[hi] >= target {
            return lo + 1 + slice[lo + 1..hi].partition_point(|&x| x < target);
        }
        lo = hi;
        step *= 2;
    }
}

/// Plain two-pointer intersection of two ascending slices. The baseline
/// the adaptive strategies in `intersect_sorted_view` are measured
/// against (see the `micro_structures` bench).
pub fn intersect_slices_two_pointer(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Bitset intersection of two ascending slices: materialize both into
/// [`NodeSet`]s and AND them word-at-a-time (the portable SIMD of the
/// matcher's hub regime). O(|a| + |b| + max_id/64) including the
/// materialization; wins over the pointer merges when both sides are
/// dense and several intersections share one materialized side — the
/// `micro_structures` bench pins the crossover against the other two.
pub fn intersect_slices_bitset(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let cap = match (a.last(), b.last()) {
        (Some(x), Some(y)) => x.index().max(y.index()) + 1,
        _ => return Vec::new(),
    };
    let mut sa = NodeSet::with_capacity(cap);
    for &n in a {
        sa.insert(n);
    }
    let mut sb = NodeSet::with_capacity(cap);
    for &n in b {
        sb.insert(n);
    }
    sa.intersect_with(&sb);
    sa.iter().collect()
}

/// Galloping intersection of two ascending slices where `short` is much
/// shorter than `long`: for each element of `short`, advance a cursor
/// into `long` by [`gallop_lower_bound`]. O(|short| · log(|long|/|short|)).
pub fn intersect_slices_gallop(short: &[NodeId], long: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(short.len());
    let mut j = 0;
    for &x in short {
        j = gallop_lower_bound(long, j, x);
        if j == long.len() {
            break;
        }
        if long[j] == x {
            out.push(x);
            j += 1;
        }
    }
    out
}

/// Intersect an ascending candidate list with the concrete-label
/// adjacency of `(v, dir)` — whose node ids the view emits ascending.
///
/// Adaptive on the length ratio (satellite of the parallel-apply PR):
///
/// * adjacency ≥ [`GALLOP_FACTOR`]× longer — probe each candidate with
///   a direction-aware `has_edge_pattern` membership test instead of
///   streaming the long adjacency: O(c·log d);
/// * candidates ≥ [`GALLOP_FACTOR`]× longer — stream the short
///   adjacency and advance the candidate cursor by
///   [`gallop_lower_bound`]: O(d·log(c/d));
/// * comparable lengths — the original single streamed two-pointer
///   pass (no materialized second list).
fn intersect_sorted_view<V: TopologyView>(
    view: &V,
    candidates: &[NodeId],
    v: NodeId,
    dir: Dir,
    label: gfd_graph::LabelId,
) -> Vec<NodeId> {
    let adj_len = view.matching_len(v, dir, label);
    if candidates.is_empty() || adj_len == 0 {
        return Vec::new();
    }
    if adj_len >= GALLOP_FACTOR * candidates.len() {
        return candidates
            .iter()
            .copied()
            .filter(|&c| match dir {
                Dir::Out => view.has_edge_pattern(v, label, c),
                Dir::In => view.has_edge_pattern(c, label, v),
            })
            .collect();
    }
    let gallop = candidates.len() >= GALLOP_FACTOR * adj_len;
    let mut out = Vec::with_capacity(candidates.len().min(adj_len));
    let mut i = 0;
    let _ = view.try_for_matching(v, dir, label, &mut |(_, n)| {
        if gallop {
            i = gallop_lower_bound(candidates, i, n);
        } else {
            while i < candidates.len() && candidates[i] < n {
                i += 1;
            }
        }
        if i == candidates.len() {
            return ControlFlow::Break(());
        }
        if candidates[i] == n {
            out.push(n);
            i += 1;
        }
        ControlFlow::Continue(())
    });
    out
}

/// Convenience: collect every match of `pattern` in `graph`.
pub fn find_all_matches(graph: &Graph, index: &LabelIndex, pattern: &Pattern) -> Vec<Match> {
    let plan = MatchPlan::build(pattern, None, Some(index));
    let mut out = Vec::new();
    let mut search = HomSearch::new(graph, index, pattern, &plan);
    search.run(
        |m| {
            out.push(m);
            ControlFlow::Continue(())
        },
        SearchLimits::none(),
    );
    out
}

/// Convenience: does `pattern` have at least one match in `graph`?
pub fn has_match(graph: &Graph, index: &LabelIndex, pattern: &Pattern) -> bool {
    let plan = MatchPlan::build(pattern, None, Some(index));
    let mut found = false;
    let mut search = HomSearch::new(graph, index, pattern, &plan);
    search.run(
        |_| {
            found = true;
            ControlFlow::Break(())
        },
        SearchLimits::none(),
    );
    found
}

/// Convenience: count matches of `pattern` in `graph`.
pub fn count_matches(graph: &Graph, index: &LabelIndex, pattern: &Pattern) -> usize {
    let plan = MatchPlan::build(pattern, None, Some(index));
    let mut n = 0usize;
    let mut search = HomSearch::new(graph, index, pattern, &plan);
    search.run(
        |_| {
            n += 1;
            ControlFlow::Continue(())
        },
        SearchLimits::none(),
    );
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{LabelId, VarId, Vocab};

    /// Triangle graph a -> b -> c -> a, all label `t`, edges `e`.
    fn triangle() -> (Graph, Vocab) {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(t);
        g.add_edge(a, e, b);
        g.add_edge(b, e, c);
        g.add_edge(c, e, a);
        (g, v)
    }

    fn edge_pattern(v: &mut Vocab) -> Pattern {
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        p
    }

    #[test]
    fn finds_all_edge_matches_in_triangle() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let ms = find_all_matches(&g, &idx, &p);
        assert_eq!(ms.len(), 3);
        assert!(has_match(&g, &idx, &p));
        assert_eq!(count_matches(&g, &idx, &p), 3);
    }

    #[test]
    fn homomorphism_allows_non_injective_maps() {
        // Graph with a self-loop: one node, edge to itself.
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let a = g.add_node(t);
        g.add_edge(a, e, a);
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        // x and y can both map to `a`.
        assert_eq!(count_matches(&g, &idx, &p), 1);
        let ms = find_all_matches(&g, &idx, &p);
        assert_eq!(ms[0][0], ms[0][1]);
    }

    #[test]
    fn cycle_pattern_in_triangle() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        p.add_edge(x, e, y);
        p.add_edge(y, e, z);
        p.add_edge(z, e, x);
        // The 3-cycle maps onto the triangle in 3 rotations (no reflections:
        // edges are directed).
        assert_eq!(count_matches(&g, &idx, &p), 3);
    }

    #[test]
    fn labels_restrict_matches() {
        let mut v = Vocab::new();
        let person = v.label("person");
        let place = v.label("place");
        let lives = v.label("livesIn");
        let mut g = Graph::new();
        let p1 = g.add_node(person);
        let c1 = g.add_node(place);
        let p2 = g.add_node(person);
        g.add_edge(p1, lives, c1);
        g.add_edge(p2, lives, c1);
        g.add_edge(p1, v.label("knows"), p2);
        let idx = LabelIndex::build(&g);

        let mut q = Pattern::new();
        let x = q.add_node(person, "x");
        let y = q.add_node(place, "y");
        q.add_edge(x, lives, y);
        assert_eq!(count_matches(&g, &idx, &q), 2);

        // Wildcard node label matches both person and place.
        let mut qw = Pattern::new();
        let xw = qw.add_node(LabelId::WILDCARD, "x");
        let yw = qw.add_node(LabelId::WILDCARD, "y");
        qw.add_edge(xw, LabelId::WILDCARD, yw);
        assert_eq!(count_matches(&g, &idx, &qw), 3);
    }

    #[test]
    fn pivoted_search_restricts_to_pivot() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        for start in 0..3 {
            let mut found = Vec::new();
            let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[NodeId::new(start)]);
            s.run(
                |m| {
                    found.push(m);
                    ControlFlow::Continue(())
                },
                SearchLimits::none(),
            );
            assert_eq!(found.len(), 1);
            assert_eq!(found[0][0], NodeId::new(start));
        }
    }

    #[test]
    fn pivoted_matches_partition_all_matches() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        let mut total = 0;
        for z in g.nodes() {
            let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[z]);
            s.run(
                |_| {
                    total += 1;
                    ControlFlow::Continue(())
                },
                SearchLimits::none(),
            );
        }
        assert_eq!(total, count_matches(&g, &idx, &p));
    }

    #[test]
    fn callback_break_stops_search() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let mut n = 0;
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Break(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(n, 1);
        assert!(!s.is_exhausted());
    }

    #[test]
    fn resume_after_stop_finds_the_rest() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        let mut first = 0;
        s.run(
            |_| {
                first += 1;
                ControlFlow::Break(())
            },
            SearchLimits::none(),
        );
        let mut rest = 0;
        let outcome = s.run(
            |_| {
                rest += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(first + rest, 3);
    }

    #[test]
    fn split_plus_resume_covers_every_match() {
        // Star graph: center -> 8 leaves; pattern x -> y.
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let center = g.add_node(t);
        for _ in 0..8 {
            let leaf = g.add_node(t);
            g.add_edge(center, e, leaf);
        }
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));

        let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[center]);
        // Find the first match, then split the rest.
        let mut local = Vec::new();
        s.run(
            |m| {
                local.push(m);
                ControlFlow::Break(())
            },
            SearchLimits::none(),
        );
        let prefixes = s.split_shallowest();
        assert!(!prefixes.is_empty(), "expected sibling branches to split");
        // Finish the local branch.
        s.run(
            |m| {
                local.push(m);
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        // Resume every split prefix.
        let mut from_splits = Vec::new();
        for prefix in &prefixes {
            let mut r = HomSearch::new(&g, &idx, &p, &plan).with_prefix(prefix);
            r.run(
                |m| {
                    from_splits.push(m);
                    ControlFlow::Continue(())
                },
                SearchLimits::none(),
            );
        }
        let mut all: Vec<Vec<NodeId>> = local
            .iter()
            .chain(from_splits.iter())
            .map(|m| m.to_vec())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8, "union of split + local must be all matches");
    }

    #[test]
    fn deadline_interrupts_and_resumes() {
        // Large-ish complete bipartite-ish graph so the search has work.
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..40).map(|_| g.add_node(t)).collect();
        for &a in &nodes {
            for &b in &nodes {
                g.add_edge(a, e, b);
            }
        }
        let idx = LabelIndex::build(&g);
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        p.add_edge(x, e, y);
        p.add_edge(y, e, z);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        let mut n = 0usize;
        // Deadline already passed: should stop quickly without exhausting.
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::with_deadline(Instant::now()),
        );
        assert_eq!(outcome, RunOutcome::Deadline);
        assert!(n < 40 * 40 * 40);
        // Resume without limits and finish.
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(n, 40 * 40 * 40);
    }

    #[test]
    fn stop_flag_aborts() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let stop = AtomicBool::new(true);
        let limits = SearchLimits {
            deadline: None,
            stop: Some(&stop),
        };
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        // The flag is polled every CHECK_INTERVAL steps; a triangle search
        // finishes sooner, so stop may not trigger — use a bigger graph.
        let outcome = s.run(|_| ControlFlow::Continue(()), limits);
        // Either it exhausted before the first poll or it stopped; both are
        // acceptable terminations for a tiny space.
        assert!(matches!(
            outcome,
            RunOutcome::Exhausted | RunOutcome::Stopped
        ));
    }

    #[test]
    fn parallel_edges_with_distinct_labels_yield_one_match_per_binding() {
        // a --e1--> b and a --e2--> b: a wildcard-edge pattern reaches b
        // twice from a, but each (x, y) binding must be emitted once
        // (regression for the anchored-expansion dedup).
        let mut v = Vocab::new();
        let t = v.label("t");
        let e1 = v.label("e1");
        let e2 = v.label("e2");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        g.add_edge(a, e1, b);
        g.add_edge(a, e2, b);
        let idx = LabelIndex::build(&g);

        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, LabelId::WILDCARD, y);
        let ms = find_all_matches(&g, &idx, &p);
        assert_eq!(ms.len(), 1, "one binding, not one per parallel edge");
        assert_eq!(ms[0][x.index()], a);
        assert_eq!(ms[0][y.index()], b);

        // With a concrete edge label each parallel edge still matches.
        let mut q = Pattern::new();
        let xq = q.add_node(t, "x");
        let yq = q.add_node(t, "y");
        q.add_edge(xq, e1, yq);
        assert_eq!(count_matches(&g, &idx, &q), 1);
    }

    #[test]
    fn multi_anchor_intersection_agrees_with_brute_force() {
        // Diamond data graph with an extra distractor: w is reachable
        // from y and z only through the right label pair, exercising the
        // sorted-merge intersection of two anchor sub-slices.
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let f = v.label("f");
        let mut g = Graph::new();
        let x = g.add_node(t);
        let y = g.add_node(t);
        let z = g.add_node(t);
        let w_good = g.add_node(t);
        let w_bad = g.add_node(t);
        g.add_edge(x, e, y);
        g.add_edge(x, e, z);
        g.add_edge(y, e, w_good);
        g.add_edge(z, e, w_good);
        g.add_edge(y, e, w_bad);
        g.add_edge(z, f, w_bad); // wrong label: must be pruned
        let idx = LabelIndex::build(&g);

        let mut p = Pattern::new();
        let px = p.add_node(t, "x");
        let py = p.add_node(t, "y");
        let pz = p.add_node(t, "z");
        let pw = p.add_node(t, "w");
        p.add_edge(px, e, py);
        p.add_edge(px, e, pz);
        p.add_edge(py, e, pw);
        p.add_edge(pz, e, pw);
        let mut fast: Vec<Vec<NodeId>> = find_all_matches(&g, &idx, &p)
            .iter()
            .map(|m| m.to_vec())
            .collect();
        let mut brute: Vec<Vec<NodeId>> = crate::brute::brute_force_matches(&g, &p)
            .iter()
            .map(|m| m.to_vec())
            .collect();
        fast.sort();
        brute.sort();
        assert_eq!(fast, brute);
        // The injective diamond instance is found; w_bad shows up only
        // through non-injective maps (y and z folding together), never
        // with distinct y ≠ z images — the f-labelled edge blocks it.
        assert!(fast
            .iter()
            .any(|m| m[pw.index()] == w_good && m[py.index()] != m[pz.index()]));
        assert!(fast
            .iter()
            .filter(|m| m[pw.index()] == w_bad)
            .all(|m| m[py.index()] == m[pz.index()]));
    }

    /// Two dense hubs sharing half their targets: the diamond-closing
    /// step is plan-gated to the bitset merge (both anchor pair
    /// frequencies clear `BITSET_ANCHOR_DEGREE` and the live candidate
    /// set clears `BITSET_MIN_CANDIDATES`), and the match set must be
    /// exactly what brute force and the stats-free two-pointer plan find.
    #[test]
    fn bitset_merge_agrees_with_brute_force_on_hubs() {
        use crate::plan::IntersectStrategy;
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let h1 = g.add_node(t);
        let h2 = g.add_node(t);
        for i in 0..200 {
            let w = g.add_node(t);
            g.add_edge(h1, e, w);
            if i % 2 == 0 {
                g.add_edge(h2, e, w);
            }
        }
        let idx = LabelIndex::build(&g);
        // Diamond: x -> y, x -> z, y -> w, z -> w.
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        let w = p.add_node(t, "w");
        p.add_edge(x, e, y);
        p.add_edge(x, e, z);
        p.add_edge(y, e, w);
        p.add_edge(z, e, w);

        let plan = MatchPlan::build(&p, None, Some(&idx));
        assert!(
            plan.steps()
                .iter()
                .any(|s| s.strategy == IntersectStrategy::Bitset),
            "stats plan on a hub graph must gate the bitset merge"
        );
        let mut bitset: Vec<Vec<NodeId>> = Vec::new();
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        s.run(
            |m| {
                bitset.push(m.to_vec());
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        let structural = MatchPlan::structural(&p, None);
        let mut merged: Vec<Vec<NodeId>> = Vec::new();
        let mut s2 = HomSearch::new(&g, &idx, &p, &structural);
        s2.run(
            |m| {
                merged.push(m.to_vec());
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        let mut brute: Vec<Vec<NodeId>> = crate::brute::brute_force_matches(&g, &p)
            .iter()
            .map(|m| m.to_vec())
            .collect();
        bitset.sort();
        merged.sort();
        brute.sort();
        assert_eq!(bitset, brute);
        assert_eq!(merged, brute);
    }

    #[test]
    fn bitset_slice_intersection_agrees() {
        let a = ids(&(0..500).step_by(3).collect::<Vec<_>>());
        let b = ids(&(0..500).step_by(5).collect::<Vec<_>>());
        assert_eq!(
            intersect_slices_bitset(&a, &b),
            intersect_slices_two_pointer(&a, &b)
        );
        assert_eq!(intersect_slices_bitset(&[], &a), Vec::<NodeId>::new());
        assert_eq!(intersect_slices_bitset(&a, &[]), Vec::<NodeId>::new());
    }

    #[test]
    fn disconnected_pattern_takes_cross_product() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        let mut p = Pattern::new();
        p.add_node(t, "a");
        p.add_node(t, "b");
        // Two isolated vars: every pair of nodes matches.
        assert_eq!(count_matches(&g, &idx, &p), 9);
    }

    #[test]
    fn filters_prune_candidates() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        // Only allow node 0 for x, anything for y.
        let mut only0 = NodeSet::with_capacity(3);
        only0.insert(NodeId::new(0));
        let mut all = NodeSet::with_capacity(3);
        for n in g.nodes() {
            all.insert(n);
        }
        let filters = vec![only0, all];
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        let mut s = HomSearch::new(&g, &idx, &p, &plan).with_filters(&filters);
        let mut n = 0;
        s.run(
            |m| {
                assert_eq!(m[0], NodeId::new(0));
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn invalid_prefix_yields_no_matches() {
        let mut v = Vocab::new();
        let person = v.label("person");
        let place = v.label("place");
        let mut g = Graph::new();
        g.add_node(person);
        let b = g.add_node(place);
        let idx = LabelIndex::build(&g);
        let mut p = Pattern::new();
        p.add_node(person, "x");
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        // Pivot at a place-labelled node for a person-labelled variable.
        let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[b]);
        let mut n = 0;
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(n, 0);
    }

    fn ids(xs: &[usize]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn gallop_lower_bound_matches_linear_scan() {
        let slice = ids(&[1, 3, 4, 8, 9, 15, 20, 21, 22, 40, 41, 99]);
        for start in 0..=slice.len() {
            for t in 0..=100 {
                let target = NodeId::new(t);
                let linear = (start..slice.len())
                    .find(|&j| slice[j] >= target)
                    .unwrap_or(slice.len());
                assert_eq!(
                    gallop_lower_bound(&slice, start, target),
                    linear,
                    "start={start} target={target}"
                );
            }
        }
    }

    #[test]
    fn slice_intersections_agree_across_skews() {
        let a = ids(&(0..400).step_by(3).collect::<Vec<_>>());
        let b = ids(&[2, 3, 6, 7, 9, 150, 151, 153, 399]);
        let expect = intersect_slices_two_pointer(&a, &b);
        assert_eq!(intersect_slices_gallop(&b, &a), expect);
        assert_eq!(intersect_slices_two_pointer(&b, &a), expect);
        assert_eq!(intersect_slices_gallop(&[], &a), Vec::<NodeId>::new());
        assert_eq!(intersect_slices_gallop(&b, &[]), Vec::<NodeId>::new());
    }

    /// A hub with many `e`-successors so the three intersect regimes
    /// (adjacency-heavy probe, candidate-heavy gallop, balanced
    /// two-pointer) can all be driven through `intersect_sorted_view`
    /// and checked against each other.
    #[test]
    fn intersect_sorted_view_is_skew_invariant() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let hub = g.add_node(t);
        let spokes: Vec<NodeId> = (0..256).map(|_| g.add_node(t)).collect();
        for (i, &s) in spokes.iter().enumerate() {
            if i % 2 == 0 {
                g.add_edge(hub, e, s);
            }
        }
        let view = g.freeze();
        let even: Vec<NodeId> = spokes.iter().copied().step_by(2).collect();

        // Adjacency (128 edges) >= 8x candidates: membership-probe path.
        let few: Vec<NodeId> = spokes[..12].to_vec();
        let got = intersect_sorted_view(&view, &few, hub, Dir::Out, e);
        assert_eq!(got, intersect_slices_two_pointer(&few, &even));

        // Candidates cover every spoke plus hub: galloping path (and the
        // balanced two-pointer on the reverse direction must agree).
        let mut all: Vec<NodeId> = vec![hub];
        all.extend(&spokes);
        let got = intersect_sorted_view(&view, &all, hub, Dir::Out, e);
        assert_eq!(got, even);
        for &s in &spokes[..8] {
            let got = intersect_sorted_view(&view, &all, s, Dir::In, e);
            let expect = if spokes.iter().position(|&x| x == s).unwrap() % 2 == 0 {
                vec![hub]
            } else {
                vec![]
            };
            assert_eq!(got, expect);
        }
    }
}
