//! Resumable backtracking homomorphism search.
//!
//! [`HomSearch`] drives a VF2-style state-space search relaxed to
//! homomorphism (pattern nodes may map to the same graph node). The search
//! state is an explicit stack, which gives the two capabilities the
//! parallel algorithms need:
//!
//! * **deadline interruption** — [`HomSearch::run`] can stop mid-search when
//!   a TTL expires and later continue where it left off;
//! * **work-unit splitting** — [`HomSearch::split_shallowest`] carves the
//!   untried sibling branches of the shallowest open level into *prefix
//!   assignments* that other workers can resume independently (the paper's
//!   Example 6).

use crate::plan::{Anchor, AnchorDir, MatchPlan};
use gfd_graph::{Graph, LabelIndex, NodeId, NodeSet, Pattern};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A complete match: `match_[v.index()]` is the graph node assigned to
/// pattern variable `v`.
pub type Match = Box<[NodeId]>;

/// Why a call to [`HomSearch::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The search space is exhausted; every remaining match was emitted.
    Exhausted,
    /// The deadline passed; the search can be resumed or split.
    Deadline,
    /// The stop flag was raised or the callback returned `Break`.
    Stopped,
}

/// External limits checked periodically during the search.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchLimits<'a> {
    /// Hard deadline; `run` returns [`RunOutcome::Deadline`] soon after.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation (e.g. another worker found a conflict).
    pub stop: Option<&'a AtomicBool>,
}

impl<'a> SearchLimits<'a> {
    /// No limits: run to exhaustion.
    pub fn none() -> Self {
        Self::default()
    }

    /// Limit by deadline only.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchLimits {
            deadline: Some(deadline),
            stop: None,
        }
    }
}

/// How often (in search steps) the limits are polled.
const CHECK_INTERVAL: u32 = 256;

enum Candidates<'a> {
    Borrowed(&'a [NodeId]),
    Owned(Vec<NodeId>),
}

impl Candidates<'_> {
    fn as_slice(&self) -> &[NodeId] {
        match self {
            Candidates::Borrowed(s) => s,
            Candidates::Owned(v) => v,
        }
    }
}

struct Frame<'a> {
    candidates: Candidates<'a>,
    cursor: usize,
}

/// A resumable homomorphism search of one pattern in one graph.
pub struct HomSearch<'a> {
    graph: &'a Graph,
    index: &'a LabelIndex,
    pattern: &'a Pattern,
    plan: &'a MatchPlan,
    /// Optional per-variable candidate filters (e.g. dual-simulation sets).
    filters: Option<&'a [NodeSet]>,
    /// Fixed assignments for leading plan positions (pivot node and/or a
    /// split prefix).
    prefix: Vec<NodeId>,
    frames: Vec<Frame<'a>>,
    assignment: Vec<NodeId>,
    started: bool,
    exhausted: bool,
}

impl<'a> HomSearch<'a> {
    /// A search over the whole graph.
    pub fn new(
        graph: &'a Graph,
        index: &'a LabelIndex,
        pattern: &'a Pattern,
        plan: &'a MatchPlan,
    ) -> Self {
        HomSearch {
            graph,
            index,
            pattern,
            plan,
            filters: None,
            prefix: Vec::new(),
            frames: Vec::new(),
            assignment: vec![NodeId::new(0); plan.len()],
            started: false,
            exhausted: false,
        }
    }

    /// Fix the leading plan positions to `prefix` (position `i` ↦
    /// `prefix[i]`). With a single element this is pivoted search; longer
    /// prefixes resume split work units.
    pub fn with_prefix(mut self, prefix: &[NodeId]) -> Self {
        assert!(
            prefix.len() <= self.plan.len(),
            "prefix longer than the plan"
        );
        assert!(!self.started, "prefix must be set before running");
        self.prefix = prefix.to_vec();
        self
    }

    /// Restrict candidates of each variable to the given node sets
    /// (indexed by `VarId`), e.g. dual-simulation sets.
    pub fn with_filters(mut self, filters: &'a [NodeSet]) -> Self {
        assert_eq!(filters.len(), self.pattern.node_count());
        self.filters = Some(filters);
        self
    }

    /// Is the search complete (no further matches)?
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Current search depth (number of open stack frames).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn passes_filter(&self, var: gfd_graph::VarId, node: NodeId) -> bool {
        self.filters.is_none_or(|f| f[var.index()].contains(node))
    }

    fn anchor_holds(&self, anchor: &Anchor, candidate: NodeId) -> bool {
        let anchored = self.assignment[anchor.pos];
        match anchor.dir {
            AnchorDir::FromAnchor => self.graph.has_edge_pattern(anchored, anchor.label, candidate),
            AnchorDir::ToAnchor => self.graph.has_edge_pattern(candidate, anchor.label, anchored),
        }
    }

    fn self_loops_hold(&self, step: &crate::plan::PlanStep, node: NodeId) -> bool {
        step.self_loops
            .iter()
            .all(|&l| self.graph.has_edge_pattern(node, l, node))
    }

    /// Is `node` a valid binding for plan position `pos`, given the bound
    /// positions `0..pos`?
    fn valid_at(&self, pos: usize, node: NodeId) -> bool {
        let step = &self.plan.steps()[pos];
        self.pattern
            .label(step.var)
            .pattern_matches(self.graph.label(node))
            && self.passes_filter(step.var, node)
            && self.self_loops_hold(step, node)
            && step.anchors.iter().all(|a| self.anchor_holds(a, node))
    }

    fn make_frame(&self, pos: usize) -> Frame<'a> {
        // Fixed prefix positions carry exactly one (validated) candidate.
        if pos < self.prefix.len() {
            let node = self.prefix[pos];
            let candidates = if self.valid_at(pos, node) {
                vec![node]
            } else {
                Vec::new()
            };
            return Frame {
                candidates: Candidates::Owned(candidates),
                cursor: 0,
            };
        }

        let step = &self.plan.steps()[pos];
        if step.anchors.is_empty() {
            // Component root: candidates from the label index.
            let base = self.index.candidates(self.pattern.label(step.var));
            let candidates = if self.filters.is_some() || !step.self_loops.is_empty() {
                Candidates::Owned(
                    base.iter()
                        .copied()
                        .filter(|&n| {
                            self.passes_filter(step.var, n) && self.self_loops_hold(step, n)
                        })
                        .collect(),
                )
            } else {
                Candidates::Borrowed(base)
            };
            return Frame { candidates, cursor: 0 };
        }

        // Anchored: expand from the anchor with the smallest adjacency list.
        let list_len = |a: &Anchor| -> usize {
            let anchored = self.assignment[a.pos];
            match a.dir {
                AnchorDir::FromAnchor => self.graph.out_edges(anchored).len(),
                AnchorDir::ToAnchor => self.graph.in_edges(anchored).len(),
            }
        };
        let (best_i, best) = step
            .anchors
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| list_len(a))
            .expect("anchored step has anchors");

        let anchored = self.assignment[best.pos];
        let adjacency = match best.dir {
            AnchorDir::FromAnchor => self.graph.out_edges(anchored),
            AnchorDir::ToAnchor => self.graph.in_edges(anchored),
        };
        let var_label = self.pattern.label(step.var);
        let mut candidates = Vec::new();
        for &(edge_label, node) in adjacency {
            if !best.label.pattern_matches(edge_label) {
                continue;
            }
            if !var_label.pattern_matches(self.graph.label(node)) {
                continue;
            }
            if !self.passes_filter(step.var, node) {
                continue;
            }
            if !self.self_loops_hold(step, node) {
                continue;
            }
            // Homomorphism: no injectivity check; just the other anchors.
            let ok = step
                .anchors
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != best_i)
                .all(|(_, a)| self.anchor_holds(a, node));
            if ok && !candidates.contains(&node) {
                candidates.push(node);
            }
        }
        Frame {
            candidates: Candidates::Owned(candidates),
            cursor: 0,
        }
    }

    /// Extract the current complete assignment as a var-indexed match.
    fn emit(&self) -> Match {
        let mut m = vec![NodeId::new(0); self.plan.len()].into_boxed_slice();
        for pos in 0..self.plan.len() {
            m[self.plan.var_at(pos).index()] = self.assignment[pos];
        }
        m
    }

    /// Run the search, invoking `on_match` for every match found.
    ///
    /// Returns when the space is exhausted, a limit triggers, or the
    /// callback breaks. Can be called again after `Deadline` to resume.
    pub fn run<F>(&mut self, mut on_match: F, limits: SearchLimits<'_>) -> RunOutcome
    where
        F: FnMut(Match) -> ControlFlow<()>,
    {
        if self.exhausted {
            return RunOutcome::Exhausted;
        }
        if !self.started {
            self.started = true;
            let f = self.make_frame(0);
            self.frames.push(f);
        }

        let mut ticks: u32 = 0;
        loop {
            ticks += 1;
            if ticks >= CHECK_INTERVAL {
                ticks = 0;
                if let Some(stop) = limits.stop {
                    if stop.load(Ordering::Relaxed) {
                        return RunOutcome::Stopped;
                    }
                }
                if let Some(deadline) = limits.deadline {
                    if Instant::now() >= deadline {
                        return RunOutcome::Deadline;
                    }
                }
            }

            let depth = match self.frames.len() {
                0 => {
                    self.exhausted = true;
                    return RunOutcome::Exhausted;
                }
                d => d - 1,
            };
            let frame = &mut self.frames[depth];
            match frame.candidates.as_slice().get(frame.cursor) {
                Some(&node) => {
                    frame.cursor += 1;
                    self.assignment[depth] = node;
                    if depth + 1 == self.plan.len() {
                        if on_match(self.emit()).is_break() {
                            return RunOutcome::Stopped;
                        }
                    } else {
                        let f = self.make_frame(depth + 1);
                        self.frames.push(f);
                    }
                }
                None => {
                    self.frames.pop();
                }
            }
        }
    }

    /// Split the untried sibling branches at the shallowest open level into
    /// prefix assignments (plan positions `0..=d`), removing them from this
    /// search. Returns an empty vector when there is nothing to split.
    pub fn split_shallowest(&mut self) -> Vec<Vec<NodeId>> {
        for depth in 0..self.frames.len() {
            let untried =
                self.frames[depth].candidates.as_slice().len() - self.frames[depth].cursor;
            if untried == 0 {
                continue;
            }
            let frame = &self.frames[depth];
            let mut prefixes = Vec::with_capacity(untried);
            for &cand in &frame.candidates.as_slice()[frame.cursor..] {
                let mut p = Vec::with_capacity(depth + 1);
                p.extend_from_slice(&self.assignment[..depth]);
                p.push(cand);
                prefixes.push(p);
            }
            // Consume them locally: this search keeps only the branch it is
            // currently inside.
            let frame = &mut self.frames[depth];
            frame.cursor = frame.candidates.as_slice().len();
            return prefixes;
        }
        Vec::new()
    }
}

/// Convenience: collect every match of `pattern` in `graph`.
pub fn find_all_matches(graph: &Graph, index: &LabelIndex, pattern: &Pattern) -> Vec<Match> {
    let plan = MatchPlan::build(pattern, None, Some(index));
    let mut out = Vec::new();
    let mut search = HomSearch::new(graph, index, pattern, &plan);
    search.run(
        |m| {
            out.push(m);
            ControlFlow::Continue(())
        },
        SearchLimits::none(),
    );
    out
}

/// Convenience: does `pattern` have at least one match in `graph`?
pub fn has_match(graph: &Graph, index: &LabelIndex, pattern: &Pattern) -> bool {
    let plan = MatchPlan::build(pattern, None, Some(index));
    let mut found = false;
    let mut search = HomSearch::new(graph, index, pattern, &plan);
    search.run(
        |_| {
            found = true;
            ControlFlow::Break(())
        },
        SearchLimits::none(),
    );
    found
}

/// Convenience: count matches of `pattern` in `graph`.
pub fn count_matches(graph: &Graph, index: &LabelIndex, pattern: &Pattern) -> usize {
    let plan = MatchPlan::build(pattern, None, Some(index));
    let mut n = 0usize;
    let mut search = HomSearch::new(graph, index, pattern, &plan);
    search.run(
        |_| {
            n += 1;
            ControlFlow::Continue(())
        },
        SearchLimits::none(),
    );
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{LabelId, VarId, Vocab};

    /// Triangle graph a -> b -> c -> a, all label `t`, edges `e`.
    fn triangle() -> (Graph, Vocab) {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(t);
        g.add_edge(a, e, b);
        g.add_edge(b, e, c);
        g.add_edge(c, e, a);
        (g, v)
    }

    fn edge_pattern(v: &mut Vocab) -> Pattern {
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        p
    }

    #[test]
    fn finds_all_edge_matches_in_triangle() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let ms = find_all_matches(&g, &idx, &p);
        assert_eq!(ms.len(), 3);
        assert!(has_match(&g, &idx, &p));
        assert_eq!(count_matches(&g, &idx, &p), 3);
    }

    #[test]
    fn homomorphism_allows_non_injective_maps() {
        // Graph with a self-loop: one node, edge to itself.
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let a = g.add_node(t);
        g.add_edge(a, e, a);
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        // x and y can both map to `a`.
        assert_eq!(count_matches(&g, &idx, &p), 1);
        let ms = find_all_matches(&g, &idx, &p);
        assert_eq!(ms[0][0], ms[0][1]);
    }

    #[test]
    fn cycle_pattern_in_triangle() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        p.add_edge(x, e, y);
        p.add_edge(y, e, z);
        p.add_edge(z, e, x);
        // The 3-cycle maps onto the triangle in 3 rotations (no reflections:
        // edges are directed).
        assert_eq!(count_matches(&g, &idx, &p), 3);
    }

    #[test]
    fn labels_restrict_matches() {
        let mut v = Vocab::new();
        let person = v.label("person");
        let place = v.label("place");
        let lives = v.label("livesIn");
        let mut g = Graph::new();
        let p1 = g.add_node(person);
        let c1 = g.add_node(place);
        let p2 = g.add_node(person);
        g.add_edge(p1, lives, c1);
        g.add_edge(p2, lives, c1);
        g.add_edge(p1, v.label("knows"), p2);
        let idx = LabelIndex::build(&g);

        let mut q = Pattern::new();
        let x = q.add_node(person, "x");
        let y = q.add_node(place, "y");
        q.add_edge(x, lives, y);
        assert_eq!(count_matches(&g, &idx, &q), 2);

        // Wildcard node label matches both person and place.
        let mut qw = Pattern::new();
        let xw = qw.add_node(LabelId::WILDCARD, "x");
        let yw = qw.add_node(LabelId::WILDCARD, "y");
        qw.add_edge(xw, LabelId::WILDCARD, yw);
        assert_eq!(count_matches(&g, &idx, &qw), 3);
    }

    #[test]
    fn pivoted_search_restricts_to_pivot() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        for start in 0..3 {
            let mut found = Vec::new();
            let mut s =
                HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[NodeId::new(start)]);
            s.run(
                |m| {
                    found.push(m);
                    ControlFlow::Continue(())
                },
                SearchLimits::none(),
            );
            assert_eq!(found.len(), 1);
            assert_eq!(found[0][0], NodeId::new(start));
        }
    }

    #[test]
    fn pivoted_matches_partition_all_matches() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        let mut total = 0;
        for z in g.nodes() {
            let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[z]);
            s.run(
                |_| {
                    total += 1;
                    ControlFlow::Continue(())
                },
                SearchLimits::none(),
            );
        }
        assert_eq!(total, count_matches(&g, &idx, &p));
    }

    #[test]
    fn callback_break_stops_search() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let mut n = 0;
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Break(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(n, 1);
        assert!(!s.is_exhausted());
    }

    #[test]
    fn resume_after_stop_finds_the_rest() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        let mut first = 0;
        s.run(
            |_| {
                first += 1;
                ControlFlow::Break(())
            },
            SearchLimits::none(),
        );
        let mut rest = 0;
        let outcome = s.run(
            |_| {
                rest += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(first + rest, 3);
    }

    #[test]
    fn split_plus_resume_covers_every_match() {
        // Star graph: center -> 8 leaves; pattern x -> y.
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let center = g.add_node(t);
        for _ in 0..8 {
            let leaf = g.add_node(t);
            g.add_edge(center, e, leaf);
        }
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));

        let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[center]);
        // Find the first match, then split the rest.
        let mut local = Vec::new();
        s.run(
            |m| {
                local.push(m);
                ControlFlow::Break(())
            },
            SearchLimits::none(),
        );
        let prefixes = s.split_shallowest();
        assert!(!prefixes.is_empty(), "expected sibling branches to split");
        // Finish the local branch.
        s.run(
            |m| {
                local.push(m);
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        // Resume every split prefix.
        let mut from_splits = Vec::new();
        for prefix in &prefixes {
            let mut r = HomSearch::new(&g, &idx, &p, &plan).with_prefix(prefix);
            r.run(
                |m| {
                    from_splits.push(m);
                    ControlFlow::Continue(())
                },
                SearchLimits::none(),
            );
        }
        let mut all: Vec<Vec<NodeId>> = local
            .iter()
            .chain(from_splits.iter())
            .map(|m| m.to_vec())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8, "union of split + local must be all matches");
    }

    #[test]
    fn deadline_interrupts_and_resumes() {
        // Large-ish complete bipartite-ish graph so the search has work.
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..40).map(|_| g.add_node(t)).collect();
        for &a in &nodes {
            for &b in &nodes {
                g.add_edge(a, e, b);
            }
        }
        let idx = LabelIndex::build(&g);
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        p.add_edge(x, e, y);
        p.add_edge(y, e, z);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        let mut n = 0usize;
        // Deadline already passed: should stop quickly without exhausting.
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::with_deadline(Instant::now()),
        );
        assert_eq!(outcome, RunOutcome::Deadline);
        assert!(n < 40 * 40 * 40);
        // Resume without limits and finish.
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(n, 40 * 40 * 40);
    }

    #[test]
    fn stop_flag_aborts() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        let plan = MatchPlan::build(&p, None, Some(&idx));
        let stop = AtomicBool::new(true);
        let limits = SearchLimits {
            deadline: None,
            stop: Some(&stop),
        };
        let mut s = HomSearch::new(&g, &idx, &p, &plan);
        // The flag is polled every CHECK_INTERVAL steps; a triangle search
        // finishes sooner, so stop may not trigger — use a bigger graph.
        let outcome = s.run(|_| ControlFlow::Continue(()), limits);
        // Either it exhausted before the first poll or it stopped; both are
        // acceptable terminations for a tiny space.
        assert!(matches!(outcome, RunOutcome::Exhausted | RunOutcome::Stopped));
    }

    #[test]
    fn disconnected_pattern_takes_cross_product() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        let mut p = Pattern::new();
        p.add_node(t, "a");
        p.add_node(t, "b");
        // Two isolated vars: every pair of nodes matches.
        assert_eq!(count_matches(&g, &idx, &p), 9);
    }

    #[test]
    fn filters_prune_candidates() {
        let (g, mut v) = triangle();
        let idx = LabelIndex::build(&g);
        let p = edge_pattern(&mut v);
        // Only allow node 0 for x, anything for y.
        let mut only0 = NodeSet::with_capacity(3);
        only0.insert(NodeId::new(0));
        let mut all = NodeSet::with_capacity(3);
        for n in g.nodes() {
            all.insert(n);
        }
        let filters = vec![only0, all];
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        let mut s = HomSearch::new(&g, &idx, &p, &plan).with_filters(&filters);
        let mut n = 0;
        s.run(
            |m| {
                assert_eq!(m[0], NodeId::new(0));
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn invalid_prefix_yields_no_matches() {
        let mut v = Vocab::new();
        let person = v.label("person");
        let place = v.label("place");
        let mut g = Graph::new();
        g.add_node(person);
        let b = g.add_node(place);
        let idx = LabelIndex::build(&g);
        let mut p = Pattern::new();
        p.add_node(person, "x");
        let plan = MatchPlan::build(&p, Some(VarId::new(0)), Some(&idx));
        // Pivot at a place-labelled node for a person-labelled variable.
        let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[b]);
        let mut n = 0;
        let outcome = s.run(
            |_| {
                n += 1;
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(n, 0);
    }
}
