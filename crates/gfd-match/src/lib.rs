//! Homomorphism matching for GFD reasoning.
//!
//! The paper's reasoning algorithms spend nearly all their time finding
//! homomorphic matches of graph patterns inside canonical graphs (§IV-C:
//! "matching dominates the cost"). This crate provides:
//!
//! * [`plan::MatchPlan`] — selectivity-ordered, connectivity-preserving
//!   variable orderings (the VF2-style expansion order);
//! * [`search::HomSearch`] — the resumable backtracking matcher with
//!   deadline interruption and shallowest-frontier **work-unit splitting**;
//! * [`simulation`] — dual graph simulation used as a cheap pruning /
//!   multi-query-optimization test;
//! * [`brute`] — an exhaustive oracle for tests.

#![warn(missing_docs)]

pub mod brute;
pub mod plan;
pub mod search;
pub mod simulation;

pub use plan::{Anchor, AnchorDir, IntersectStrategy, MatchPlan, PlanStep, BITSET_ANCHOR_DEGREE};
pub use search::{
    count_matches, find_all_matches, gallop_lower_bound, has_match, intersect_slices_bitset,
    intersect_slices_gallop, intersect_slices_two_pointer, HomSearch, Match, RunOutcome,
    SearchLimits, BITSET_MIN_CANDIDATES,
};
pub use simulation::{dual_simulation, may_embed};

#[cfg(test)]
mod proptests {
    use crate::brute::brute_force_matches;
    use crate::search::find_all_matches;
    use gfd_graph::{Graph, LabelId, LabelIndex, NodeId, Pattern};
    use proptest::prelude::*;

    /// Strategy: a small random labelled graph.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        // nodes: 1..6 labels out of 3; edges: subset of pairs with labels
        // out of 2.
        (1usize..6).prop_flat_map(|n| {
            let labels = proptest::collection::vec(1u32..4, n);
            let edges = proptest::collection::vec(((0..n), 1u32..3, (0..n)), 0..(n * n).min(12));
            (labels, edges).prop_map(move |(labels, edges)| {
                let mut g = Graph::new();
                for l in labels {
                    g.add_node(LabelId(l));
                }
                for (s, l, d) in edges {
                    g.add_edge(NodeId::new(s), LabelId(l), NodeId::new(d));
                }
                g
            })
        })
    }

    /// Strategy: a small random pattern (labels may be wildcard = 0).
    fn arb_pattern() -> impl Strategy<Value = Pattern> {
        (1usize..4).prop_flat_map(|k| {
            let labels = proptest::collection::vec(0u32..4, k);
            let edges = proptest::collection::vec(((0..k), 0u32..3, (0..k)), 0..(k * k).min(6));
            (labels, edges).prop_map(move |(labels, edges)| {
                let mut p = Pattern::new();
                for l in labels {
                    p.add_anon_node(LabelId(l));
                }
                for (s, l, d) in edges {
                    p.add_edge(
                        gfd_graph::VarId::new(s),
                        LabelId(l),
                        gfd_graph::VarId::new(d),
                    );
                }
                p
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// The backtracking matcher finds exactly the brute-force match set.
        #[test]
        fn matcher_agrees_with_brute_force(g in arb_graph(), p in arb_pattern()) {
            let idx = LabelIndex::build(&g);
            let mut fast: Vec<Vec<NodeId>> =
                find_all_matches(&g, &idx, &p).iter().map(|m| m.to_vec()).collect();
            let mut brute: Vec<Vec<NodeId>> =
                brute_force_matches(&g, &p).iter().map(|m| m.to_vec()).collect();
            fast.sort();
            brute.sort();
            // No dedup: the matcher must emit each match exactly once.
            prop_assert_eq!(fast, brute);
        }

        /// Dual-simulation sets contain every homomorphic image.
        #[test]
        fn simulation_is_sound(g in arb_graph(), p in arb_pattern()) {
            let idx = LabelIndex::build(&g);
            let matches = brute_force_matches(&g, &p);
            match crate::simulation::dual_simulation(&g, &idx, &p) {
                None => prop_assert!(matches.is_empty(),
                    "simulation said no match but {} exist", matches.len()),
                Some(sim) => {
                    for m in &matches {
                        for v in p.vars() {
                            prop_assert!(sim[v.index()].contains(m[v.index()]));
                        }
                    }
                }
            }
        }

        /// Pivoted searches partition the full match set by pivot value.
        #[test]
        fn pivoting_partitions_matches(g in arb_graph(), p in arb_pattern()) {
            use crate::plan::MatchPlan;
            use crate::search::{HomSearch, SearchLimits};
            use std::ops::ControlFlow;
            let idx = LabelIndex::build(&g);
            let plan = MatchPlan::build(&p, Some(gfd_graph::VarId::new(0)), Some(&idx));
            let mut collected: Vec<Vec<NodeId>> = Vec::new();
            for z in g.nodes() {
                let mut s = HomSearch::new(&g, &idx, &p, &plan).with_prefix(&[z]);
                s.run(|m| { collected.push(m.to_vec()); ControlFlow::Continue(()) },
                      SearchLimits::none());
            }
            let mut brute: Vec<Vec<NodeId>> =
                brute_force_matches(&g, &p).iter().map(|m| m.to_vec()).collect();
            collected.sort();
            brute.sort();
            prop_assert_eq!(collected, brute);
        }
    }
}
