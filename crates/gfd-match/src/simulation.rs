//! Graph simulation (Henzinger, Henzinger & Kopke, FOCS'95) adapted to
//! labelled directed graphs.
//!
//! The paper (§V-B, optimization) uses simulation as a cheap necessary
//! condition for homomorphism: if pattern `Q1` does not simulate into a
//! graph (or into another pattern), no homomorphism can exist, so the
//! exponential matcher can be skipped. We implement:
//!
//! * [`dual_simulation`] — the fixed-point over both out- and in-edges; the
//!   resulting per-variable node sets are sound candidate filters for the
//!   backtracking matcher (every homomorphic image is contained in them);
//! * [`may_embed`] — the multi-query-optimization test: can `q1` possibly
//!   map homomorphically into `q2`?

use gfd_graph::{Dir, Graph, LabelIndex, MatchIndex, NodeSet, Pattern, TopologyView};

/// Compute the dual-simulation sets of `pattern` over `graph`.
///
/// Returns one [`NodeSet`] per pattern variable, or `None` if some variable
/// ends up with an empty set (in which case the pattern has no match at
/// all). Every node that can appear in any homomorphic match of the pattern
/// is contained in its variable's set, so the sets are sound filters.
///
/// Generic over the index like the matcher: the refinement probes run on
/// the frozen CSR ([`LabelIndex`]) or the delta overlay
/// (`gfd_graph::DeltaIndex`) alike.
pub fn dual_simulation<I: MatchIndex>(
    graph: &Graph,
    index: &I,
    pattern: &Pattern,
) -> Option<Vec<NodeSet>> {
    index.assert_fresh(graph);
    let nvars = pattern.node_count();
    let mut sim: Vec<NodeSet> = Vec::with_capacity(nvars);

    // Initial sets: label-compatible nodes.
    for u in pattern.vars() {
        let mut set = NodeSet::with_capacity(graph.node_count());
        for &v in index.candidates(pattern.label(u)) {
            set.insert(v);
        }
        if set.is_empty() {
            return None;
        }
        sim.push(set);
    }

    // Fixed point: remove v from sim(u) if some pattern edge at u has no
    // matching graph edge at v whose endpoint survives. Concrete pattern
    // edge labels probe only the O(log d)-located label sub-slice of the
    // view instead of scanning v's whole adjacency.
    let view = index.view();
    // Scratch set for bulk removal rounds, allocated once per call.
    let mut removal_set = NodeSet::with_capacity(graph.node_count());
    // Past this many removals a round switches from per-bit clears to a
    // word-at-a-time `difference_with`, whose cost is one AND-NOT per 64
    // nodes regardless of how many bits fall (DESIGN.md §15).
    let bulk_threshold = (graph.node_count() / 64).max(8);
    let mut changed = true;
    while changed {
        changed = false;
        for u in pattern.vars() {
            let mut removals = Vec::new();
            for v in sim[u.index()].iter() {
                let ok_out = pattern.out_edges(u).iter().all(|&(elabel, u2)| {
                    view.any_matching(v, Dir::Out, elabel, |(_, v2)| sim[u2.index()].contains(v2))
                });
                let ok_in = ok_out
                    && pattern.in_edges(u).iter().all(|&(elabel, u2)| {
                        view.any_matching(v, Dir::In, elabel, |(_, v2)| {
                            sim[u2.index()].contains(v2)
                        })
                    });
                if !ok_in {
                    removals.push(v);
                }
            }
            if !removals.is_empty() {
                changed = true;
                let set = &mut sim[u.index()];
                if removals.len() >= bulk_threshold {
                    for &n in &removals {
                        removal_set.insert(n);
                    }
                    let left = set.difference_with(&removal_set);
                    removal_set.clear_sparse(removals.iter().copied());
                    if left == 0 {
                        return None;
                    }
                } else {
                    for &n in &removals {
                        set.remove(n);
                    }
                    if set.is_empty() {
                        return None;
                    }
                }
            }
        }
    }
    Some(sim)
}

/// Cheap necessary condition for a homomorphism from `q1` into (a subgraph
/// of) `q2`: dual simulation of `q1` over `q2`-as-graph.
///
/// `false` means *definitely no homomorphism*; `true` means "maybe" — the
/// exact matcher must decide. Wildcard labels in `q2` are kept verbatim
/// (canonical-graph semantics: only a wildcard in `q1` matches them).
pub fn may_embed(q1: &Pattern, q2: &Pattern) -> bool {
    if q1.node_count() == 0 {
        return true;
    }
    if q2.node_count() == 0 {
        return false;
    }
    let g2 = q2.to_graph();
    let idx = LabelIndex::build(&g2);
    dual_simulation(&g2, &idx, q1).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::count_matches;
    use gfd_graph::{LabelId, NodeId, Vocab};

    fn chain_graph(n: usize) -> (Graph, Vocab) {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(t)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], e, w[1]);
        }
        (g, v)
    }

    #[test]
    fn simulation_sets_contain_all_match_images() {
        let (g, mut v) = chain_graph(5);
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        let sim = dual_simulation(&g, &idx, &p).expect("matches exist");
        // x needs an out-edge: nodes 0..4; y needs an in-edge: nodes 1..5.
        assert!(!sim[x.index()].contains(NodeId::new(4)));
        assert!(sim[x.index()].contains(NodeId::new(0)));
        assert!(!sim[y.index()].contains(NodeId::new(0)));
        assert!(sim[y.index()].contains(NodeId::new(4)));
        // Soundness: every match image is in the sets.
        for m in crate::search::find_all_matches(&g, &idx, &p) {
            assert!(sim[x.index()].contains(m[x.index()]));
            assert!(sim[y.index()].contains(m[y.index()]));
        }
    }

    #[test]
    fn unmatchable_pattern_yields_none() {
        let (g, mut v) = chain_graph(3);
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        let e = v.label("e");
        // A 3-cycle cannot simulate into a 3-chain.
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let z = p.add_node(t, "z");
        p.add_edge(x, e, y);
        p.add_edge(y, e, z);
        p.add_edge(z, e, x);
        assert!(dual_simulation(&g, &idx, &p).is_none());
        assert_eq!(count_matches(&g, &idx, &p), 0);
    }

    #[test]
    fn missing_label_yields_none() {
        let (g, mut v) = chain_graph(3);
        let idx = LabelIndex::build(&g);
        let mut p = Pattern::new();
        p.add_node(v.label("nonexistent"), "x");
        assert!(dual_simulation(&g, &idx, &p).is_none());
    }

    #[test]
    fn long_chain_pattern_pruned_from_short_chain() {
        // 4-node chain pattern cannot match a 3-node chain graph
        // (homomorphism needs 3 consecutive edges).
        let (g, mut v) = chain_graph(3);
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        let e = v.label("e");
        let mut p = Pattern::new();
        let vars: Vec<_> = (0..4).map(|i| p.add_node(t, format!("v{i}"))).collect();
        for w in vars.windows(2) {
            p.add_edge(w[0], e, w[1]);
        }
        assert!(dual_simulation(&g, &idx, &p).is_none());
        assert_eq!(count_matches(&g, &idx, &p), 0);
    }

    #[test]
    fn may_embed_is_a_sound_necessary_condition() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        // q1: single edge. q2: triangle. Edge embeds in the triangle.
        let mut q1 = Pattern::new();
        let a = q1.add_node(t, "a");
        let b = q1.add_node(t, "b");
        q1.add_edge(a, e, b);
        let mut q2 = Pattern::new();
        let x = q2.add_node(t, "x");
        let y = q2.add_node(t, "y");
        let z = q2.add_node(t, "z");
        q2.add_edge(x, e, y);
        q2.add_edge(y, e, z);
        q2.add_edge(z, e, x);
        assert!(may_embed(&q1, &q2));
        // Triangle into a single edge: impossible.
        assert!(!may_embed(&q2, &q1));
    }

    #[test]
    fn concrete_label_does_not_embed_into_wildcard_pattern() {
        let mut v = Vocab::new();
        let t = v.label("t");
        let mut q1 = Pattern::new();
        q1.add_node(t, "a");
        let mut q2 = Pattern::new();
        q2.add_node(LabelId::WILDCARD, "x");
        // Canonical-graph semantics: `t` does not match `_`.
        assert!(!may_embed(&q1, &q2));
        // The wildcard variable, however, embeds anywhere.
        assert!(may_embed(&q2, &q1));
    }
}
