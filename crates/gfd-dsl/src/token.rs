//! Lexer for the GFD text format.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`gfd`, `graph`, `node`, `edge`, labels…).
    Ident(String),
    /// String literal (escapes resolved).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.`
    Dot,
    /// `-` (leading half of `-label->`)
    Dash,
    /// `->`
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::Colon => write!(f, "`:`"),
            Token::Comma => write!(f, "`,`"),
            Token::Eq => write!(f, "`=`"),
            Token::Neq => write!(f, "`!=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Dot => write!(f, "`.`"),
            Token::Dash => write!(f, "`-`"),
            Token::Arrow => write!(f, "`->`"),
        }
    }
}

/// A parse/lex error with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Tokenize `src` into `(token, line)` pairs. `#` starts a line comment.
pub fn tokenize(src: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push((Token::LBrace, line));
                chars.next();
            }
            '}' => {
                out.push((Token::RBrace, line));
                chars.next();
            }
            ':' => {
                out.push((Token::Colon, line));
                chars.next();
            }
            ',' => {
                out.push((Token::Comma, line));
                chars.next();
            }
            '=' => {
                out.push((Token::Eq, line));
                chars.next();
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::Neq, line));
                } else {
                    return Err(ParseError {
                        line,
                        msg: "expected `!=`".into(),
                    });
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::Le, line));
                } else {
                    out.push((Token::Lt, line));
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::Ge, line));
                } else {
                    out.push((Token::Gt, line));
                }
            }
            '.' => {
                out.push((Token::Dot, line));
                chars.next();
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        out.push((Token::Arrow, line));
                    }
                    Some(d) if d.is_ascii_digit() => {
                        // Negative integer literal.
                        let n = lex_int(&mut chars, line)?;
                        out.push((Token::Int(-n), line));
                    }
                    _ => out.push((Token::Dash, line)),
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => {
                            return Err(ParseError {
                                line,
                                msg: "unterminated string".into(),
                            })
                        }
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            Some(other) => {
                                return Err(ParseError {
                                    line,
                                    msg: format!("unknown escape `\\{other}`"),
                                })
                            }
                            None => {
                                return Err(ParseError {
                                    line,
                                    msg: "unterminated escape".into(),
                                })
                            }
                        },
                        Some('\n') => {
                            return Err(ParseError {
                                line,
                                msg: "newline in string".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push((Token::Str(s), line));
            }
            c if c.is_ascii_digit() => {
                let n = lex_int(&mut chars, line)?;
                out.push((Token::Int(n), line));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Token::Ident(s), line));
            }
            other => {
                return Err(ParseError {
                    line,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_int(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: usize,
) -> Result<i64, ParseError> {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s.parse().map_err(|_| ParseError {
        line,
        msg: format!("invalid integer `{s}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("gfd phi { x.a = 1 }"),
            vec![
                Token::Ident("gfd".into()),
                Token::Ident("phi".into()),
                Token::LBrace,
                Token::Ident("x".into()),
                Token::Dot,
                Token::Ident("a".into()),
                Token::Eq,
                Token::Int(1),
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn edge_syntax() {
        assert_eq!(
            toks("x -locateIn-> y"),
            vec![
                Token::Ident("x".into()),
                Token::Dash,
                Token::Ident("locateIn".into()),
                Token::Arrow,
                Token::Ident("y".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_negatives() {
        assert_eq!(
            toks(r#""a\"b" -42"#),
            vec![Token::Str("a\"b".into()), Token::Int(-42)]
        );
        assert_eq!(toks("\"x\\ny\""), vec![Token::Str("x\ny".into())]);
    }

    #[test]
    fn comments_and_lines() {
        let ts = tokenize("a # comment\nb").unwrap();
        assert_eq!(ts[0], (Token::Ident("a".into()), 1));
        assert_eq!(ts[1], (Token::Ident("b".into()), 2));
    }

    #[test]
    fn wildcard_is_an_ident() {
        assert_eq!(toks("_"), vec![Token::Ident("_".into())]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = tokenize("ok\n\"unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        let err = tokenize("@").unwrap_err();
        assert!(err.msg.contains('@'));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a != b < c <= d > e >= f"),
            vec![
                Token::Ident("a".into()),
                Token::Neq,
                Token::Ident("b".into()),
                Token::Lt,
                Token::Ident("c".into()),
                Token::Le,
                Token::Ident("d".into()),
                Token::Gt,
                Token::Ident("e".into()),
                Token::Ge,
                Token::Ident("f".into()),
            ]
        );
        // A bare `!` is an error.
        assert!(tokenize("!x").is_err());
    }
}
