//! Pretty-printer for the GFD text format (round-trips through the
//! parser).

use gfd_core::{Consequence, DepSet, Dependency, Gfd, GfdSet, Operand};
use gfd_graph::{Graph, Pattern, Value, ValueId, Vocab};
use std::fmt::Write as _;

fn print_value_id(v: &ValueId, out: &mut String) {
    print_value(&v.resolve(), out);
}

fn print_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            let escaped = s
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            let _ = write!(out, "\"{escaped}\"");
        }
    }
}

/// Render a comma-separated literal list with variable names resolved
/// against `pattern` (for GGDs this is the *target* pattern, which
/// extends the premise variables with the fresh ones).
fn print_literals(lits: &[gfd_core::Literal], pattern: &Pattern, vocab: &Vocab, out: &mut String) {
    for (i, lit) in lits.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{}.{} = ",
            pattern.var_name(lit.var),
            vocab.attr_name(lit.attr)
        );
        match &lit.rhs {
            Operand::Const(v) => print_value_id(v, out),
            Operand::Attr(v2, a2) => {
                let _ = write!(out, "{}.{}", pattern.var_name(*v2), vocab.attr_name(*a2));
            }
        }
    }
}

/// Render a `pattern { ... }` block body (shared by all rule kinds).
fn print_pattern(pattern: &Pattern, vocab: &Vocab, out: &mut String) {
    out.push_str("  pattern {\n");
    for v in pattern.vars() {
        let _ = writeln!(
            out,
            "    node {}: {}",
            pattern.var_name(v),
            vocab.label_name(pattern.label(v))
        );
    }
    for e in pattern.edges() {
        let _ = writeln!(
            out,
            "    edge {} -{}-> {}",
            pattern.var_name(e.src),
            vocab.label_name(e.label),
            pattern.var_name(e.dst)
        );
    }
    out.push_str("  }\n");
}

/// Render one GFD in the text format.
pub fn print_gfd(gfd: &Gfd, vocab: &Vocab) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "gfd {} {{", gfd.name);
    print_pattern(&gfd.pattern, vocab, &mut out);

    let print_lits = |lits: &[gfd_core::Literal], out: &mut String| {
        print_literals(lits, &gfd.pattern, vocab, out);
    };

    if !gfd.premise.is_empty() {
        out.push_str("  when { ");
        print_lits(&gfd.premise, &mut out);
        out.push_str(" }\n");
    }
    // Print `false` only for the exact canonical denial encoding (the one
    // `Gfd::with_false_consequence` produces); other denial-shaped
    // consequences keep their literals so round-trips are lossless.
    let canonical_false = gfd.consequence.len() == 2
        && gfd.is_denial()
        && gfd
            .consequence
            .iter()
            .all(|l| vocab.attr_name(l.attr) == gfd_core::FALSE_ATTR_NAME);
    if canonical_false {
        out.push_str("  then { false }\n");
    } else {
        out.push_str("  then { ");
        print_lits(&gfd.consequence, &mut out);
        out.push_str(" }\n");
    }
    out.push_str("}\n");
    out
}

/// Render a whole set, one GFD after another.
pub fn print_gfd_set(sigma: &GfdSet, vocab: &Vocab) -> String {
    let mut out = String::new();
    for (_, gfd) in sigma.iter() {
        out.push_str(&print_gfd(gfd, vocab));
        out.push('\n');
    }
    out
}

/// Render one generalized dependency: literal consequences print as a
/// `gfd` block (byte-identical to [`print_gfd`]), generating ones as a
/// `ggd` block with a `create { ... }` consequence. Round-trips through
/// [`crate::parse_document`].
pub fn print_dependency(dep: &Dependency, vocab: &Vocab) -> String {
    let gen = match &dep.consequence {
        Consequence::Literals(_) => {
            let gfd = dep.as_gfd().expect("literal consequence lowers");
            return print_gfd(&gfd, vocab);
        }
        Consequence::Generate(gen) => gen,
    };
    let mut out = String::new();
    let _ = writeln!(out, "ggd {} {{", dep.name);
    print_pattern(&dep.pattern, vocab, &mut out);
    if !dep.premise.is_empty() {
        out.push_str("  when { ");
        print_literals(&dep.premise, &dep.pattern, vocab, &mut out);
        out.push_str(" }\n");
    }
    out.push_str("  create {\n");
    for v in gen.fresh_vars() {
        let _ = writeln!(
            out,
            "    node {}: {}",
            gen.pattern.var_name(v),
            vocab.label_name(gen.pattern.label(v))
        );
    }
    for e in gen.pattern.edges() {
        let _ = writeln!(
            out,
            "    edge {} -{}-> {}",
            gen.pattern.var_name(e.src),
            vocab.label_name(e.label),
            gen.pattern.var_name(e.dst)
        );
    }
    if !gen.attrs.is_empty() {
        out.push_str("    set { ");
        print_literals(&gen.attrs, &gen.pattern, vocab, &mut out);
        out.push_str(" }\n");
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Render a generalized dependency set, one rule after another, in the
/// canonical form `gfd fmt` emits.
pub fn print_dep_set(sigma: &DepSet, vocab: &Vocab) -> String {
    let mut out = String::new();
    for (_, dep) in sigma.iter() {
        out.push_str(&print_dependency(dep, vocab));
        out.push('\n');
    }
    out
}

fn print_ged_literals(
    lits: &[gfd_ged::GedLiteral],
    pattern: &gfd_graph::Pattern,
    vocab: &Vocab,
    out: &mut String,
) {
    use gfd_ged::GedLiteral;
    for (i, lit) in lits.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match lit {
            GedLiteral::AttrConst {
                var,
                attr,
                op,
                value,
            } => {
                let _ = write!(
                    out,
                    "{}.{} {} ",
                    pattern.var_name(*var),
                    vocab.attr_name(*attr),
                    op.symbol()
                );
                print_value_id(value, out);
            }
            GedLiteral::AttrAttr {
                var,
                attr,
                op,
                other_var,
                other_attr,
            } => {
                let _ = write!(
                    out,
                    "{}.{} {} {}.{}",
                    pattern.var_name(*var),
                    vocab.attr_name(*attr),
                    op.symbol(),
                    pattern.var_name(*other_var),
                    vocab.attr_name(*other_attr)
                );
            }
            GedLiteral::Id { left, right } => {
                let _ = write!(
                    out,
                    "{}.id = {}.id",
                    pattern.var_name(*left),
                    pattern.var_name(*right)
                );
            }
        }
    }
}

/// Render one GED in the text format (round-trips through
/// [`crate::parse_ged`]).
pub fn print_ged(ged: &gfd_ged::Ged, vocab: &Vocab) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ged {} {{", ged.name);
    out.push_str("  pattern {\n");
    for v in ged.pattern.vars() {
        let _ = writeln!(
            out,
            "    node {}: {}",
            ged.pattern.var_name(v),
            vocab.label_name(ged.pattern.label(v))
        );
    }
    for e in ged.pattern.edges() {
        let _ = writeln!(
            out,
            "    edge {} -{}-> {}",
            ged.pattern.var_name(e.src),
            vocab.label_name(e.label),
            ged.pattern.var_name(e.dst)
        );
    }
    out.push_str("  }\n");
    if !ged.premise.is_empty() {
        out.push_str("  when { ");
        print_ged_literals(&ged.premise, &ged.pattern, vocab, &mut out);
        out.push_str(" }\n");
    }
    if ged.disjuncts.is_empty() {
        out.push_str("  then { false }\n");
    } else {
        for (i, disjunct) in ged.disjuncts.iter().enumerate() {
            out.push_str(if i == 0 { "  then { " } else { "  or { " });
            print_ged_literals(disjunct, &ged.pattern, vocab, &mut out);
            out.push_str(" }\n");
        }
    }
    out.push_str("}\n");
    out
}

/// Render a GED set, one after another.
pub fn print_ged_set(sigma: &gfd_ged::GedSet, vocab: &Vocab) -> String {
    let mut out = String::new();
    for (_, ged) in sigma.iter() {
        out.push_str(&print_ged(ged, vocab));
        out.push('\n');
    }
    out
}

/// Render a data graph in the text format.
pub fn print_graph(name: &str, graph: &Graph, vocab: &Vocab) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in graph.nodes() {
        let _ = write!(
            out,
            "  node n{}: {}",
            v.index(),
            vocab.label_name(graph.label(v))
        );
        let attrs = graph.attrs(v);
        if attrs.is_empty() {
            out.push('\n');
        } else {
            out.push_str(" { ");
            for (i, (attr, value)) in attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} = ", vocab.attr_name(*attr));
                print_value_id(value, &mut out);
            }
            out.push_str(" }\n");
        }
    }
    for (src, label, dst) in graph.edges() {
        let _ = writeln!(
            out,
            "  edge n{} -{}-> n{}",
            src.index(),
            vocab.label_name(label),
            dst.index()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_document, parse_gfd};
    use gfd_core::Literal;
    use gfd_graph::{NodeId, Pattern, VarId};

    #[test]
    fn gfd_round_trip() {
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        let x = p.add_node(vocab.label("person"), "x");
        let y = p.add_node(vocab.label("person"), "y");
        p.add_edge(x, vocab.label("knows"), y);
        let nat = vocab.attr("nationality");
        let gfd = Gfd::new(
            "phi",
            p,
            vec![Literal::eq_const(x, nat, "FR")],
            vec![Literal::eq_attr(x, nat, y, nat)],
        );
        let printed = print_gfd(&gfd, &vocab);
        let reparsed = parse_gfd(&printed, &mut vocab).unwrap();
        assert_eq!(reparsed.name, gfd.name);
        assert_eq!(reparsed.premise, gfd.premise);
        assert_eq!(reparsed.consequence, gfd.consequence);
        assert_eq!(reparsed.pattern.edges(), gfd.pattern.edges());
        assert_eq!(reparsed.pattern.node_labels(), gfd.pattern.node_labels());
    }

    #[test]
    fn denial_round_trip() {
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "x");
        let gfd = Gfd::with_false_consequence("deny", p, vec![], &mut vocab);
        let printed = print_gfd(&gfd, &vocab);
        assert!(printed.contains("then { false }"));
        let reparsed = parse_gfd(&printed, &mut vocab).unwrap();
        assert!(reparsed.is_denial());
    }

    #[test]
    fn graph_round_trip() {
        let mut vocab = Vocab::new();
        let mut g = Graph::new();
        let a = g.add_node(vocab.label("place"));
        let b = g.add_node(vocab.label("place"));
        g.add_edge(a, vocab.label("locateIn"), b);
        g.set_attr(a, vocab.attr("name"), Value::str("airport \"x\""));
        g.set_attr(a, vocab.attr("pop"), Value::Int(-5));
        let printed = print_graph("G", &g, &vocab);
        let doc = parse_document(&printed, &mut vocab).unwrap();
        let g2 = &doc.graphs[0].1;
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        assert_eq!(
            g2.attr(NodeId::new(0), vocab.find_attr("name").unwrap()),
            Some(ValueId::of("airport \"x\""))
        );
        assert_eq!(
            g2.attr(NodeId::new(0), vocab.find_attr("pop").unwrap()),
            Some(ValueId::of(-5i64))
        );
    }

    #[test]
    fn ggd_round_trip() {
        use gfd_core::{Consequence, Dependency, GenerateConsequence};
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        let x = p.add_node(vocab.label("person"), "x");
        let y = p.add_node(vocab.label("person"), "y");
        p.add_edge(x, vocab.label("knows"), y);
        let city = vocab.attr("city");
        let mut gen = GenerateConsequence::over(&p);
        let m = gen.add_fresh(vocab.label("meeting"), "m");
        gen.add_edge(x, vocab.label("attends"), m);
        gen.add_edge(y, vocab.label("attends"), m);
        gen.push_attr(Literal::eq_attr(m, city, x, city));
        let dep = Dependency::new(
            "meetup",
            p,
            vec![Literal::eq_attr(x, city, y, city)],
            Consequence::Generate(gen),
        );
        let printed = print_dependency(&dep, &vocab);
        assert!(printed.contains("ggd meetup {"), "{printed}");
        assert!(printed.contains("create {"), "{printed}");
        assert!(printed.contains("node m: meeting"), "{printed}");
        assert!(printed.contains("set { m.city = x.city }"), "{printed}");
        let doc = parse_document(&printed, &mut vocab).unwrap();
        assert_eq!(doc.deps.len(), 1);
        let back = doc.deps.get(gfd_graph::GfdId::new(0));
        assert_eq!(back.name, dep.name);
        assert_eq!(back.premise, dep.premise);
        let (gfd_core::Consequence::Generate(g1), gfd_core::Consequence::Generate(g2)) =
            (&back.consequence, &dep.consequence)
        else {
            panic!("both must generate")
        };
        assert_eq!(g1.shared, g2.shared);
        assert_eq!(g1.pattern.edges(), g2.pattern.edges());
        assert_eq!(g1.attrs, g2.attrs);
        // Printing again is a fixpoint.
        assert_eq!(print_dependency(back, &vocab), printed);
    }

    #[test]
    fn literal_dependency_prints_as_gfd() {
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        let x = p.add_node(vocab.label("t"), "x");
        let a = vocab.attr("a");
        let gfd = Gfd::new("g", p, vec![], vec![Literal::eq_const(x, a, 1i64)]);
        let dep = gfd_core::Dependency::from_gfd(gfd.clone());
        assert_eq!(print_dependency(&dep, &vocab), print_gfd(&gfd, &vocab));
    }

    #[test]
    fn ged_round_trip_with_all_features() {
        use gfd_ged::{CmpOp, Ged, GedLiteral};
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        let x = p.add_node(vocab.label("person"), "x");
        let y = p.add_node(vocab.label("person"), "y");
        p.add_edge(x, vocab.label("knows"), y);
        let age = vocab.attr("age");
        let email = vocab.attr("email");
        let ged = Ged::new(
            "k",
            p,
            vec![
                GedLiteral::eq_attr(x, email, y, email),
                GedLiteral::cmp_const(x, age, CmpOp::Ge, 18i64),
            ],
            vec![
                vec![GedLiteral::id(x, y)],
                vec![GedLiteral::cmp_attr(x, age, CmpOp::Ne, y, age)],
            ],
        );
        let printed = print_ged(&ged, &vocab);
        assert!(printed.contains("x.age >= 18"), "{printed}");
        assert!(printed.contains("x.id = y.id"), "{printed}");
        assert!(printed.contains("or {"), "{printed}");
        let reparsed = crate::parse_ged(&printed, &mut vocab).unwrap();
        assert_eq!(reparsed.premise, ged.premise);
        assert_eq!(reparsed.disjuncts, ged.disjuncts);
        // Printing again is a fixpoint.
        assert_eq!(print_ged(&reparsed, &vocab), printed);
    }

    #[test]
    fn ged_denial_round_trip() {
        use gfd_ged::Ged;
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "x");
        let ged = Ged::denial("never", p, vec![]);
        let printed = print_ged(&ged, &vocab);
        assert!(printed.contains("then { false }"), "{printed}");
        let reparsed = crate::parse_ged(&printed, &mut vocab).unwrap();
        assert!(reparsed.is_denial());
    }

    #[test]
    fn var_names_survive() {
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "alpha");
        p.add_node(vocab.label("t"), "beta");
        let a = vocab.attr("a");
        let gfd = Gfd::new(
            "named",
            p,
            vec![],
            vec![Literal::eq_attr(VarId::new(0), a, VarId::new(1), a)],
        );
        let printed = print_gfd(&gfd, &vocab);
        assert!(printed.contains("alpha.a = beta.a"), "{printed}");
        let reparsed = parse_gfd(&printed, &mut vocab).unwrap();
        assert_eq!(reparsed.pattern.var_name(VarId::new(0)), "alpha");
    }
}
