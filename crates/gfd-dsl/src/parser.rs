//! Recursive-descent parser for the GFD text format.
//!
//! ```text
//! graph G {
//!   node a: place { name = "Bamburi", pop = 100 }
//!   node b: place
//!   edge a -locateIn-> b
//! }
//!
//! gfd phi1 {
//!   pattern {
//!     node x: place
//!     node y: place
//!     edge x -locateIn-> y
//!     edge y -partOf-> x
//!   }
//!   when { }            # premise X (omit or leave empty for ∅)
//!   then { false }      # consequence Y; `false` is the denial sugar
//! }
//! ```

use crate::token::{tokenize, ParseError, Token};
use gfd_core::{Consequence, DepSet, Dependency, GenerateConsequence, Gfd, GfdSet, Literal};
use gfd_ged::{CmpOp, Ged, GedLiteral, GedSet};
use gfd_graph::{Graph, NodeId, Pattern, ValueId, ValueTable, VarId, Vocab};
use rustc_hash::FxHashMap;

/// A parsed document: named graphs, the generalized rule set, and
/// (optionally) GEDs.
#[derive(Debug, Default)]
pub struct Document {
    /// Named data graphs, in source order.
    pub graphs: Vec<(String, Graph)>,
    /// Every `gfd` and `ggd` block as a generalized [`Dependency`], in
    /// source order — what the reasoning and detection commands consume
    /// (mixed rule sets allowed).
    pub deps: DepSet,
    /// The `gfd` blocks only, in source order — the literal subset, kept
    /// for call sites that speak the classic [`GfdSet`].
    pub gfds: GfdSet,
    /// All GEDs (`ged NAME { ... }` blocks), in source order.
    pub geds: GedSet,
}

impl Document {
    /// Every rule as a GED: the declared GEDs plus the GFDs lifted into
    /// GED form. Useful when a file mixes both kinds and the caller wants
    /// to reason over the union with the GED algorithms.
    pub fn all_as_geds(&self) -> GedSet {
        let mut out = GedSet::new();
        for (_, g) in self.gfds.iter() {
            out.push(Ged::from_gfd(g));
        }
        for (_, g) in self.geds.iter() {
            out.push(g.clone());
        }
        out
    }
}

struct Parser<'v> {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    vocab: &'v mut Vocab,
}

impl<'v> Parser<'v> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l);
        Err(ParseError {
            line,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {want}, found {t}"))
            }
            None => self.err(format!("expected {want}, found end of input")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {t}"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<ValueId, ParseError> {
        // Intern at the parse boundary: repeated occurrences of the
        // same literal share one table entry (and one allocation).
        match self.next() {
            Some(Token::Str(s)) => Ok(ValueTable::intern_str(&s)),
            Some(Token::Int(i)) => Ok(ValueTable::intern_int(i)),
            Some(Token::Ident(s)) if s == "true" => Ok(ValueTable::intern_bool(true)),
            Some(Token::Ident(s)) if s == "false" => Ok(ValueTable::intern_bool(false)),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected a value, found {t}"))
            }
            None => self.err("expected a value, found end of input"),
        }
    }

    fn parse_document(&mut self) -> Result<Document, ParseError> {
        let mut doc = Document::default();
        while let Some(t) = self.peek() {
            match t {
                Token::Ident(s) if s == "graph" => {
                    self.pos += 1;
                    let (name, graph) = self.parse_graph()?;
                    doc.graphs.push((name, graph));
                }
                Token::Ident(s) if s == "gfd" => {
                    self.pos += 1;
                    let gfd = self.parse_gfd_body()?;
                    doc.deps.push(Dependency::from_gfd(gfd.clone()));
                    doc.gfds.push(gfd);
                }
                Token::Ident(s) if s == "ggd" => {
                    self.pos += 1;
                    let dep = self.parse_ggd_body()?;
                    doc.deps.push(dep);
                }
                Token::Ident(s) if s == "ged" => {
                    self.pos += 1;
                    let ged = self.parse_ged_body()?;
                    doc.geds.push(ged);
                }
                t => {
                    let t = t.clone();
                    return self.err(format!(
                        "expected `graph`, `gfd`, `ggd` or `ged`, found {t}"
                    ));
                }
            }
        }
        Ok(doc)
    }

    fn parse_graph(&mut self) -> Result<(String, Graph), ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let mut graph = Graph::new();
        let mut nodes: FxHashMap<String, NodeId> = FxHashMap::default();
        loop {
            if self.eat_keyword("node") {
                let node_name = self.expect_ident()?;
                self.expect(&Token::Colon)?;
                let label_name = self.expect_ident()?;
                let label = self.vocab.label(&label_name);
                if nodes.contains_key(&node_name) {
                    return self.err(format!("duplicate node `{node_name}`"));
                }
                let id = graph.add_node(label);
                nodes.insert(node_name, id);
                // Optional attribute block.
                if self.peek() == Some(&Token::LBrace) {
                    self.pos += 1;
                    loop {
                        if self.peek() == Some(&Token::RBrace) {
                            self.pos += 1;
                            break;
                        }
                        let attr_name = self.expect_ident()?;
                        let attr = self.vocab.attr(&attr_name);
                        self.expect(&Token::Eq)?;
                        let value = self.parse_value()?;
                        graph.set_attr_id(id, attr, value);
                        if self.peek() == Some(&Token::Comma) {
                            self.pos += 1;
                        }
                    }
                }
            } else if self.eat_keyword("edge") {
                let src = self.expect_ident()?;
                self.expect(&Token::Dash)?;
                let label_name = self.expect_ident()?;
                self.expect(&Token::Arrow)?;
                let dst = self.expect_ident()?;
                let (Some(&s), Some(&d)) = (nodes.get(&src), nodes.get(&dst)) else {
                    return self.err(format!("edge references unknown node `{src}`/`{dst}`"));
                };
                graph.add_edge(s, self.vocab.label(&label_name), d);
            } else if self.peek() == Some(&Token::RBrace) {
                self.pos += 1;
                break;
            } else {
                return self.err("expected `node`, `edge` or `}` in graph body");
            }
        }
        Ok((name, graph))
    }

    /// Parse a `pattern { node ... edge ... }` block.
    fn parse_pattern(&mut self) -> Result<(Pattern, FxHashMap<String, VarId>), ParseError> {
        if !self.eat_keyword("pattern") {
            return self.err("expected `pattern` block");
        }
        self.expect(&Token::LBrace)?;
        let mut pattern = Pattern::new();
        let mut vars: FxHashMap<String, VarId> = FxHashMap::default();
        loop {
            if self.eat_keyword("node") {
                let var_name = self.expect_ident()?;
                self.expect(&Token::Colon)?;
                let label_name = self.expect_ident()?;
                let label = self.vocab.label(&label_name);
                if vars.contains_key(&var_name) {
                    return self.err(format!("duplicate pattern variable `{var_name}`"));
                }
                let v = pattern.add_node(label, var_name.clone());
                vars.insert(var_name, v);
            } else if self.eat_keyword("edge") {
                let src = self.expect_ident()?;
                self.expect(&Token::Dash)?;
                let label_name = self.expect_ident()?;
                self.expect(&Token::Arrow)?;
                let dst = self.expect_ident()?;
                let (Some(&s), Some(&d)) = (vars.get(&src), vars.get(&dst)) else {
                    return self.err(format!("edge references unknown variable `{src}`/`{dst}`"));
                };
                pattern.add_edge(s, self.vocab.label(&label_name), d);
            } else if self.peek() == Some(&Token::RBrace) {
                self.pos += 1;
                break;
            } else {
                return self.err("expected `node`, `edge` or `}` in pattern body");
            }
        }
        if pattern.node_count() == 0 {
            return self.err("pattern must have at least one node");
        }
        Ok((pattern, vars))
    }

    fn parse_gfd_body(&mut self) -> Result<Gfd, ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let (pattern, vars) = self.parse_pattern()?;

        // when { ... } (optional)
        let premise = if self.eat_keyword("when") {
            self.parse_literals(&pattern, &vars)?.ok_or(()).or_else(
                |_| -> Result<Vec<Literal>, ParseError> {
                    self.err("`false` is not allowed in a premise")
                },
            )?
        } else {
            Vec::new()
        };

        // then { ... }
        if !self.eat_keyword("then") {
            return self.err("expected `then` block");
        }
        let consequence = self.parse_literals(&pattern, &vars)?;
        self.expect(&Token::RBrace)?;

        Ok(match consequence {
            Some(lits) => Gfd::new(name, pattern, premise, lits),
            // `then { false }`: the denial sugar.
            None => Gfd::with_false_consequence(name, pattern, premise, self.vocab),
        })
    }

    /// Parse a `ggd NAME { pattern {...} [when {...}] create {...} }`
    /// block: a graph-generating dependency whose consequence asserts —
    /// and, under the chase, creates — a target subgraph:
    ///
    /// ```text
    /// ggd meetup {
    ///   pattern { node x: person  node y: person  edge x -knows-> y }
    ///   when { x.city = y.city }
    ///   create {
    ///     node m: meeting
    ///     edge x -attends-> m
    ///     edge y -attends-> m
    ///     set { m.city = x.city }
    ///   }
    /// }
    /// ```
    ///
    /// `node` entries are fresh variables (concrete labels only), `edge`
    /// entries may connect pattern and fresh variables freely, and the
    /// optional `set` block assigns attributes over the combined
    /// variable space.
    fn parse_ggd_body(&mut self) -> Result<Dependency, ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let (pattern, mut vars) = self.parse_pattern()?;

        let premise = if self.eat_keyword("when") {
            match self.parse_literals(&pattern, &vars)? {
                Some(lits) => lits,
                None => return self.err("`false` is not allowed in a premise"),
            }
        } else {
            Vec::new()
        };

        if !self.eat_keyword("create") {
            return self.err("expected `create` block in ggd");
        }
        self.expect(&Token::LBrace)?;
        let mut gen = GenerateConsequence::over(&pattern);
        let mut attrs: Option<Vec<Literal>> = None;
        loop {
            if self.eat_keyword("node") {
                let var_name = self.expect_ident()?;
                if vars.contains_key(&var_name) {
                    return self.err(format!("duplicate variable `{var_name}` in create"));
                }
                self.expect(&Token::Colon)?;
                let label_name = self.expect_ident()?;
                let label = self.vocab.label(&label_name);
                if label.is_wildcard() {
                    return self.err(format!(
                        "generated node `{var_name}` needs a concrete label, not `_`"
                    ));
                }
                let v = gen.add_fresh(label, var_name.clone());
                vars.insert(var_name, v);
            } else if self.eat_keyword("edge") {
                let src = self.expect_ident()?;
                self.expect(&Token::Dash)?;
                let label_name = self.expect_ident()?;
                self.expect(&Token::Arrow)?;
                let dst = self.expect_ident()?;
                let (Some(&s), Some(&d)) = (vars.get(&src), vars.get(&dst)) else {
                    return self.err(format!("edge references unknown variable `{src}`/`{dst}`"));
                };
                let label = self.vocab.label(&label_name);
                if label.is_wildcard() {
                    return self.err("generated edges need a concrete label, not `_`");
                }
                gen.add_edge(s, label, d);
            } else if self.eat_keyword("set") {
                if attrs.is_some() {
                    return self.err("duplicate `set` block in create");
                }
                let target = gen.pattern.clone();
                match self.parse_literals(&target, &vars)? {
                    Some(lits) => attrs = Some(lits),
                    None => return self.err("`false` is not allowed in a `set` block"),
                }
            } else if self.peek() == Some(&Token::RBrace) {
                self.pos += 1;
                break;
            } else {
                return self.err("expected `node`, `edge`, `set` or `}` in create body");
            }
        }
        for lit in attrs.unwrap_or_default() {
            gen.push_attr(lit);
        }
        self.expect(&Token::RBrace)?;
        Ok(Dependency::new(
            name,
            pattern,
            premise,
            Consequence::Generate(gen),
        ))
    }

    /// Parse `{ lit, lit, ... }`. Returns `None` for the special body
    /// `{ false }`.
    #[allow(clippy::type_complexity)]
    fn parse_literals(
        &mut self,
        pattern: &Pattern,
        vars: &FxHashMap<String, VarId>,
    ) -> Result<Option<Vec<Literal>>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut lits = Vec::new();
        let mut first = true;
        loop {
            if self.peek() == Some(&Token::RBrace) {
                self.pos += 1;
                break;
            }
            // `false` alone means the Boolean constant.
            if first && matches!(self.peek(), Some(Token::Ident(s)) if s == "false") {
                // Only if not a literal start (`false.x = ...` is not valid
                // var syntax anyway since `false` is reserved here).
                self.pos += 1;
                self.expect(&Token::RBrace)?;
                return Ok(None);
            }
            first = false;
            let var_name = self.expect_ident()?;
            let Some(&var) = vars.get(&var_name) else {
                return self.err(format!("unknown variable `{var_name}` in literal"));
            };
            self.expect(&Token::Dot)?;
            let attr_name = self.expect_ident()?;
            let attr = self.vocab.attr(&attr_name);
            self.expect(&Token::Eq)?;
            // Right-hand side: `var.attr` or a constant.
            let lit = match self.peek() {
                Some(Token::Ident(s)) if s != "true" && s != "false" => {
                    let rhs_name = self.expect_ident()?;
                    let Some(&rhs_var) = vars.get(&rhs_name) else {
                        return self.err(format!("unknown variable `{rhs_name}` in literal"));
                    };
                    self.expect(&Token::Dot)?;
                    let rhs_attr_name = self.expect_ident()?;
                    let rhs_attr = self.vocab.attr(&rhs_attr_name);
                    Literal::eq_attr(var, attr, rhs_var, rhs_attr)
                }
                _ => Literal::eq_id(var, attr, self.parse_value()?),
            };
            let _ = pattern;
            lits.push(lit);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            }
        }
        Ok(Some(lits))
    }

    /// Parse a `ged NAME { pattern {...} [when {...}] then {...}
    /// [or {...}]* }` block. `then { false }` is the denial (no disjunct);
    /// each `or` block adds a disjunct.
    fn parse_ged_body(&mut self) -> Result<Ged, ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let (pattern, vars) = self.parse_pattern()?;

        let premise = if self.eat_keyword("when") {
            match self.parse_ged_literals(&vars)? {
                Some(lits) => lits,
                None => return self.err("`false` is not allowed in a premise"),
            }
        } else {
            Vec::new()
        };

        if !self.eat_keyword("then") {
            return self.err("expected `then` block");
        }
        let mut disjuncts = Vec::new();
        match self.parse_ged_literals(&vars)? {
            Some(lits) => disjuncts.push(lits),
            None => {
                // `then { false }`: a denial — no `or` blocks allowed.
                if self.eat_keyword("or") {
                    return self.err("`or` after `then { false }` makes no sense");
                }
                self.expect(&Token::RBrace)?;
                return Ok(Ged::new(name, pattern, premise, Vec::new()));
            }
        }
        while self.eat_keyword("or") {
            match self.parse_ged_literals(&vars)? {
                Some(lits) => disjuncts.push(lits),
                None => return self.err("`false` is not allowed in an `or` disjunct"),
            }
        }
        self.expect(&Token::RBrace)?;
        Ok(Ged::new(name, pattern, premise, disjuncts))
    }

    /// Parse one comparison operator token.
    fn parse_cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.next() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Neq) => Ok(CmpOp::Ne),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Le) => Ok(CmpOp::Le),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            Some(Token::Ge) => Ok(CmpOp::Ge),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected a comparison operator, found {t}"))
            }
            None => self.err("expected a comparison operator, found end of input"),
        }
    }

    /// Parse `{ lit, ... }` with GED literals: `x.A op c`, `x.A op y.B`,
    /// or `x.id = y.id` (the id literal — `id` on *both* sides with `=`).
    /// Returns `None` for the special body `{ false }`.
    fn parse_ged_literals(
        &mut self,
        vars: &FxHashMap<String, VarId>,
    ) -> Result<Option<Vec<GedLiteral>>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut lits = Vec::new();
        let mut first = true;
        loop {
            if self.peek() == Some(&Token::RBrace) {
                self.pos += 1;
                break;
            }
            if first && matches!(self.peek(), Some(Token::Ident(s)) if s == "false") {
                self.pos += 1;
                self.expect(&Token::RBrace)?;
                return Ok(None);
            }
            first = false;
            let var_name = self.expect_ident()?;
            let Some(&var) = vars.get(&var_name) else {
                return self.err(format!("unknown variable `{var_name}` in literal"));
            };
            self.expect(&Token::Dot)?;
            let attr_name = self.expect_ident()?;
            let op = self.parse_cmp_op()?;
            // Right-hand side: `var.attr`, `var.id`, or a constant.
            let lit = match self.peek() {
                Some(Token::Ident(s)) if s != "true" && s != "false" => {
                    let rhs_name = self.expect_ident()?;
                    let Some(&rhs_var) = vars.get(&rhs_name) else {
                        return self.err(format!("unknown variable `{rhs_name}` in literal"));
                    };
                    self.expect(&Token::Dot)?;
                    let rhs_attr_name = self.expect_ident()?;
                    if attr_name == "id" && rhs_attr_name == "id" {
                        // The id literal: both sides are `.id`.
                        if op != CmpOp::Eq {
                            return self.err("id literals support `=` only (x.id = y.id)");
                        }
                        GedLiteral::id(var, rhs_var)
                    } else {
                        GedLiteral::cmp_attr(
                            var,
                            self.vocab.attr(&attr_name),
                            op,
                            rhs_var,
                            self.vocab.attr(&rhs_attr_name),
                        )
                    }
                }
                _ => {
                    GedLiteral::cmp_id(var, self.vocab.attr(&attr_name), op, self.parse_value()?)
                }
            };
            lits.push(lit);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            }
        }
        Ok(Some(lits))
    }
}

/// Parse a full document (graphs and GFDs) from `src`.
pub fn parse_document(src: &str, vocab: &mut Vocab) -> Result<Document, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        vocab,
    };
    p.parse_document()
}

/// Parse a source containing exactly one GFD.
pub fn parse_gfd(src: &str, vocab: &mut Vocab) -> Result<Gfd, ParseError> {
    let doc = parse_document(src, vocab)?;
    if doc.gfds.len() != 1 || doc.deps.len() != 1 || !doc.graphs.is_empty() || !doc.geds.is_empty()
    {
        return Err(ParseError {
            line: 1,
            msg: format!(
                "expected exactly one gfd, found {} gfds, {} geds and {} graphs",
                doc.gfds.len(),
                doc.geds.len(),
                doc.graphs.len()
            ),
        });
    }
    Ok(doc.gfds.as_slice()[0].clone())
}

/// Parse a source containing exactly one GED.
pub fn parse_ged(src: &str, vocab: &mut Vocab) -> Result<Ged, ParseError> {
    let doc = parse_document(src, vocab)?;
    if doc.geds.len() != 1 || !doc.graphs.is_empty() || !doc.deps.is_empty() {
        return Err(ParseError {
            line: 1,
            msg: format!(
                "expected exactly one ged, found {} geds, {} gfds and {} graphs",
                doc.geds.len(),
                doc.gfds.len(),
                doc.graphs.len()
            ),
        });
    }
    Ok(doc.geds.get(gfd_graph::GfdId::new(0)).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::LabelId;

    #[test]
    fn parse_phi1_denial() {
        let mut vocab = Vocab::new();
        let gfd = parse_gfd(
            "gfd phi1 {\n  pattern {\n    node x: place\n    node y: place\n    edge x -locateIn-> y\n    edge y -partOf-> x\n  }\n  then { false }\n}",
            &mut vocab,
        )
        .unwrap();
        assert_eq!(gfd.name, "phi1");
        assert_eq!(gfd.pattern.node_count(), 2);
        assert_eq!(gfd.pattern.edge_count(), 2);
        assert!(gfd.has_empty_premise());
        assert!(gfd.is_denial());
    }

    #[test]
    fn parse_phi3_with_literals() {
        let mut vocab = Vocab::new();
        let src = r#"
            gfd phi3 {
              pattern {
                node x: person
                node y: person
                node z: country
                edge x -president-> z
                edge y -vicePresident-> z
              }
              when { x.c = y.c }
              then { x.nationality = y.nationality }
            }
        "#;
        let gfd = parse_gfd(src, &mut vocab).unwrap();
        assert_eq!(gfd.premise.len(), 1);
        assert_eq!(gfd.consequence.len(), 1);
        assert!(!gfd.is_denial());
    }

    #[test]
    fn parse_wildcard_and_constants() {
        let mut vocab = Vocab::new();
        let src = r#"
            gfd g {
              pattern { node x: _ }
              then { x.a = 1, x.b = "s", x.c = true, x.d = -3 }
            }
        "#;
        let gfd = parse_gfd(src, &mut vocab).unwrap();
        assert_eq!(gfd.pattern.label(VarId::new(0)), LabelId::WILDCARD);
        assert_eq!(gfd.consequence.len(), 4);
    }

    #[test]
    fn parse_graph_with_attrs() {
        let mut vocab = Vocab::new();
        let src = r#"
            graph G {
              node a: place { name = "Bamburi airport", pop = 100 }
              node b: place
              edge a -locateIn-> b
              edge b -partOf-> a
            }
        "#;
        let doc = parse_document(src, &mut vocab).unwrap();
        assert_eq!(doc.graphs.len(), 1);
        let g = &doc.graphs[0].1;
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        let name = vocab.find_attr("name").unwrap();
        assert_eq!(
            g.attr(NodeId::new(0), name),
            Some(ValueId::of("Bamburi airport"))
        );
    }

    #[test]
    fn errors_are_informative() {
        let mut vocab = Vocab::new();
        let err = parse_gfd(
            "gfd g { pattern { node x: t } then { y.a = 1 } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown variable"), "{err}");
        let err = parse_gfd("gfd g { pattern { } then { } }", &mut vocab).unwrap_err();
        assert!(err.msg.contains("at least one node"), "{err}");
        let err = parse_document("graph G { edge a -e-> b }", &mut vocab).unwrap_err();
        assert!(err.msg.contains("unknown node"), "{err}");
        let err = parse_document("bogus", &mut vocab).unwrap_err();
        assert!(
            err.msg.contains("expected `graph`, `gfd`, `ggd` or `ged`"),
            "{err}"
        );
    }

    #[test]
    fn parse_ggd_create_block() {
        let mut vocab = Vocab::new();
        let src = r#"
            ggd meetup {
              pattern {
                node x: person
                node y: person
                edge x -knows-> y
              }
              when { x.city = y.city }
              create {
                node m: meeting
                edge x -attends-> m
                edge y -attends-> m
                set { m.city = x.city, m.open = true }
              }
            }
        "#;
        let doc = parse_document(src, &mut vocab).unwrap();
        assert_eq!(doc.deps.len(), 1);
        assert!(doc.gfds.is_empty());
        let dep = doc.deps.get(gfd_graph::GfdId::new(0));
        assert!(dep.is_generating());
        assert_eq!(dep.premise.len(), 1);
        let gfd_core::Consequence::Generate(gen) = &dep.consequence else {
            panic!("expected a generating consequence")
        };
        assert_eq!(gen.shared, 2);
        assert_eq!(gen.fresh_count(), 1);
        assert_eq!(gen.pattern.edge_count(), 2);
        assert_eq!(gen.attrs.len(), 2);
        assert_eq!(gen.pattern.var_name(VarId::new(2)), "m");
    }

    #[test]
    fn mixed_gfd_ggd_documents_keep_source_order() {
        let mut vocab = Vocab::new();
        let src = r#"
            gfd a { pattern { node x: t } then { x.v = 1 } }
            ggd b { pattern { node x: t } create { node y: u edge x -e-> y } }
            gfd c { pattern { node x: t } then { x.w = 2 } }
        "#;
        let doc = parse_document(src, &mut vocab).unwrap();
        assert_eq!(doc.deps.len(), 3);
        assert_eq!(doc.gfds.len(), 2);
        let names: Vec<&str> = doc.deps.iter().map(|(_, d)| d.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(doc.deps.has_generating());
        // The literal deps match their gfd twins byte for byte.
        assert_eq!(
            doc.deps
                .get(gfd_graph::GfdId::new(0))
                .as_gfd()
                .unwrap()
                .consequence,
            doc.gfds.get(gfd_graph::GfdId::new(0)).consequence
        );
    }

    #[test]
    fn ggd_errors_are_informative() {
        let mut vocab = Vocab::new();
        let err = parse_document(
            "ggd g { pattern { node x: t } create { node y: _ } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("concrete label"), "{err}");
        let err = parse_document(
            "ggd g { pattern { node x: t } create { node x: u } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("duplicate variable"), "{err}");
        let err = parse_document(
            "ggd g { pattern { node x: t } create { edge x -e-> z } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown variable"), "{err}");
        let err = parse_document(
            "ggd g { pattern { node x: t } then { x.a = 1 } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("expected `create`"), "{err}");
        let err = parse_document(
            "ggd g { pattern { node x: t } create { set { false } } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("`false` is not allowed"), "{err}");
    }

    #[test]
    fn parse_ged_with_order_and_disjunction() {
        let mut vocab = Vocab::new();
        let src = r#"
            ged policy {
              pattern { node p: product }
              when { p.discounted = true }
              then { p.price < 50 }
              or   { p.clearance = true, p.price <= 20 }
            }
        "#;
        let ged = parse_ged(src, &mut vocab).unwrap();
        assert_eq!(ged.name, "policy");
        assert_eq!(ged.premise.len(), 1);
        assert_eq!(ged.disjuncts.len(), 2);
        assert_eq!(ged.disjuncts[0].len(), 1);
        assert_eq!(ged.disjuncts[1].len(), 2);
    }

    #[test]
    fn parse_ged_id_literal_and_key() {
        let mut vocab = Vocab::new();
        let src = r#"
            ged person_key {
              pattern { node x: person node y: person }
              when { x.email = y.email }
              then { x.id = y.id }
            }
        "#;
        let ged = parse_ged(src, &mut vocab).unwrap();
        use gfd_ged::GedLiteral;
        assert!(matches!(ged.disjuncts[0][0], GedLiteral::Id { .. }));
        // `x.id = 5` is an *attribute* named id, not an id literal.
        let src2 = "ged g { pattern { node x: t } then { x.id = 5 } }";
        let ged2 = parse_ged(src2, &mut vocab).unwrap();
        assert!(matches!(ged2.disjuncts[0][0], GedLiteral::AttrConst { .. }));
    }

    #[test]
    fn parse_ged_denial_and_all_ops() {
        let mut vocab = Vocab::new();
        let ged = parse_ged(
            "ged d { pattern { node x: t } when { x.a != 1, x.b > 2, x.c >= 3 } then { false } }",
            &mut vocab,
        )
        .unwrap();
        assert!(ged.is_denial());
        assert_eq!(ged.premise.len(), 3);
    }

    #[test]
    fn ged_errors_are_informative() {
        let mut vocab = Vocab::new();
        let err = parse_ged(
            "ged g { pattern { node x: t } then { x.id < y.id } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown variable"), "{err}");
        let err = parse_ged(
            "ged g { pattern { node x: t node y: t } then { x.id < y.id } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("id literals support `=`"), "{err}");
        let err = parse_ged(
            "ged g { pattern { node x: t } then { false } or { x.a = 1 } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("makes no sense"), "{err}");
        let err = parse_ged(
            "ged g { pattern { node x: t } when { false } then { x.a = 1 } }",
            &mut vocab,
        )
        .unwrap_err();
        assert!(err.msg.contains("premise"), "{err}");
    }

    #[test]
    fn mixed_gfd_and_ged_document_lifts() {
        let mut vocab = Vocab::new();
        let src = r#"
            gfd a { pattern { node x: t } then { x.v = 1 } }
            ged b { pattern { node x: t } then { x.v >= 1 } }
        "#;
        let doc = parse_document(src, &mut vocab).unwrap();
        assert_eq!(doc.gfds.len(), 1);
        assert_eq!(doc.geds.len(), 1);
        let all = doc.all_as_geds();
        assert_eq!(all.len(), 2);
        // The combined set is satisfiable (v = 1 satisfies both).
        assert!(gfd_ged::ged_sat(&all).is_satisfiable());
    }

    #[test]
    fn mixed_document() {
        let mut vocab = Vocab::new();
        let src = r#"
            graph data { node n: t }
            gfd a { pattern { node x: t } then { x.v = 1 } }
            gfd b { pattern { node x: t } when { x.v = 1 } then { x.w = 2 } }
        "#;
        let doc = parse_document(src, &mut vocab).unwrap();
        assert_eq!(doc.graphs.len(), 1);
        assert_eq!(doc.gfds.len(), 2);
    }
}
