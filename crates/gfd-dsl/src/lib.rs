//! A human-readable text format for graphs and GFDs.
//!
//! Parsing ([`parser`]) and printing ([`printer`]) round-trip; see the
//! grammar sketch in [`parser`]. Used by the examples and integration
//! tests, and convenient for storing rule sets on disk.
//!
//! ```
//! use gfd_graph::Vocab;
//! let mut vocab = Vocab::new();
//! let gfd = gfd_dsl::parse_gfd(
//!     "gfd phi2 {
//!        pattern {
//!          node x: _
//!          node y: speed
//!          node z: speed
//!          edge x -topSpeed-> y
//!          edge x -topSpeed-> z
//!        }
//!        then { y.val = z.val }
//!      }",
//!     &mut vocab,
//! ).unwrap();
//! assert_eq!(gfd.pattern.node_count(), 3);
//! let printed = gfd_dsl::print_gfd(&gfd, &vocab);
//! let again = gfd_dsl::parse_gfd(&printed, &mut vocab).unwrap();
//! assert_eq!(again.consequence, gfd.consequence);
//! ```

#![warn(missing_docs)]

pub mod parser;
pub mod printer;
pub mod token;

pub use parser::{parse_document, parse_ged, parse_gfd, Document};
pub use printer::{
    print_dep_set, print_dependency, print_ged, print_ged_set, print_gfd, print_gfd_set,
    print_graph,
};
pub use token::ParseError;

#[cfg(test)]
mod proptests {
    use gfd_core::{Gfd, GfdSet, Literal};
    use gfd_graph::{LabelId, Pattern, Value, VarId, Vocab};
    use proptest::prelude::*;

    /// Strategy: a small random GFD over a fixed vocabulary shape.
    fn arb_gfd() -> impl Strategy<Value = (Gfd, Vocab)> {
        let label_names = ["t", "u", "v"];
        let attr_names = ["a", "b", "c"];
        (
            1usize..4,
            proptest::collection::vec((0usize..3, 0usize..3, 0usize..3), 0..4),
            proptest::collection::vec(
                (
                    0usize..3,
                    0usize..3,
                    proptest::option::of(0i64..5),
                    0usize..3,
                    0usize..3,
                ),
                0..3,
            ),
            proptest::collection::vec(
                (
                    0usize..3,
                    0usize..3,
                    proptest::option::of(0i64..5),
                    0usize..3,
                    0usize..3,
                ),
                1..3,
            ),
        )
            .prop_map(move |(k, edges, pre, post)| {
                let mut vocab = Vocab::new();
                let labels: Vec<LabelId> = label_names.iter().map(|n| vocab.label(n)).collect();
                let attrs: Vec<_> = attr_names.iter().map(|n| vocab.attr(n)).collect();
                let mut p = Pattern::new();
                for i in 0..k {
                    p.add_node(labels[i % labels.len()], format!("x{i}"));
                }
                for (s, l, d) in edges {
                    p.add_edge(
                        VarId::new(s % k),
                        labels[l % labels.len()],
                        VarId::new(d % k),
                    );
                }
                let mk = |items: Vec<(usize, usize, Option<i64>, usize, usize)>| {
                    items
                        .into_iter()
                        .map(|(v, a, c, v2, a2)| match c {
                            Some(c) => Literal::eq_const(
                                VarId::new(v % k),
                                attrs[a % attrs.len()],
                                Value::Int(c),
                            ),
                            None => Literal::eq_attr(
                                VarId::new(v % k),
                                attrs[a % attrs.len()],
                                VarId::new(v2 % k),
                                attrs[a2 % attrs.len()],
                            ),
                        })
                        .collect::<Vec<_>>()
                };
                (Gfd::new("g", p, mk(pre), mk(post)), vocab)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// print → parse is the identity on GFD structure.
        #[test]
        fn gfd_print_parse_round_trip((gfd, vocab) in arb_gfd()) {
            let mut vocab = vocab;
            let printed = crate::print_gfd(&gfd, &vocab);
            let reparsed = crate::parse_gfd(&printed, &mut vocab)
                .expect("printer output must parse");
            prop_assert_eq!(&reparsed.premise, &gfd.premise);
            prop_assert_eq!(&reparsed.consequence, &gfd.consequence);
            prop_assert_eq!(reparsed.pattern.edges(), gfd.pattern.edges());
            prop_assert_eq!(reparsed.pattern.node_labels(), gfd.pattern.node_labels());
            // Printing again is a fixpoint.
            let printed2 = crate::print_gfd(&reparsed, &vocab);
            prop_assert_eq!(printed, printed2);
        }

        /// Sets round-trip element-wise.
        #[test]
        fn set_print_parse_round_trip(gv in proptest::collection::vec(arb_gfd(), 1..3)) {
            // Merge into one vocab by reprinting each with its own vocab
            // then parsing the concatenation with a fresh one.
            let mut src = String::new();
            for (i, (gfd, vocab)) in gv.iter().enumerate() {
                let mut g = gfd.clone();
                g.name = format!("g{i}");
                src.push_str(&crate::print_gfd(&g, vocab));
            }
            let mut vocab = Vocab::new();
            let doc = crate::parse_document(&src, &mut vocab).expect("parse set");
            prop_assert_eq!(doc.gfds.len(), gv.len());
        }

        /// Fuzz (DESIGN.md §11): the parser is panic-free on arbitrary
        /// text — every input yields a document or a structured error.
        #[test]
        fn parse_document_never_panics(src in "\\PC*") {
            let mut vocab = Vocab::new();
            let _ = crate::parse_document(&src, &mut vocab);
        }

        /// …and on token soup built from the DSL's own keywords and
        /// punctuation, which reaches far deeper than random text.
        #[test]
        fn parse_document_never_panics_on_token_soup(
            picks in proptest::collection::vec(0usize..25, 0..40),
        ) {
            const POOL: [&str; 25] = [
                "graph", "gfd", "ggd", "ged", "pattern", "when", "then",
                "create", "set", "node", "edge", "{", "}", ":", "=", ">=",
                ",", ".", "->", "-e->", "x", "t", "1", "\"s", "_",
            ];
            let src = picks
                .iter()
                .map(|i| POOL[*i])
                .collect::<Vec<_>>()
                .join(" ");
            let mut vocab = Vocab::new();
            let _ = crate::parse_document(&src, &mut vocab);
        }
    }

    /// Strategy: a small random GED with order predicates, id literals
    /// and up to three disjuncts.
    fn arb_ged() -> impl Strategy<Value = (gfd_ged::Ged, Vocab)> {
        use gfd_ged::{CmpOp, Ged, GedLiteral};
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        (
            2usize..4,
            proptest::collection::vec((0usize..3, 0usize..3, 0usize..3), 0..3),
            proptest::collection::vec(
                (
                    0usize..3,
                    0usize..3,
                    0usize..6,
                    proptest::option::of(0i64..5),
                    0usize..3,
                ),
                0..3,
            ),
            proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![
                        // 0 = attr literal, 1 = id literal
                        (
                            0usize..3,
                            0usize..3,
                            0usize..6,
                            proptest::option::of(0i64..5),
                            0usize..3
                        )
                            .prop_map(|t| (0usize, t)),
                        (0usize..3, 0usize..3).prop_map(|(a, b)| (1usize, (a, b, 0, None, 0))),
                    ],
                    1..3,
                ),
                1..3,
            ),
        )
            .prop_map(move |(k, edges, premise, disjuncts)| {
                let mut vocab = Vocab::new();
                let t = vocab.label("t");
                let e = vocab.label("e");
                let attrs = [vocab.attr("a"), vocab.attr("b"), vocab.attr("c")];
                let mut p = Pattern::new();
                for i in 0..k {
                    p.add_node(t, format!("x{i}"));
                }
                for (s, _, d) in &edges {
                    p.add_edge(VarId::new(s % k), e, VarId::new(d % k));
                }
                let mk_attr_lit =
                    |(v, a, op, c, v2): (usize, usize, usize, Option<i64>, usize)| match c {
                        Some(c) => GedLiteral::cmp_const(
                            VarId::new(v % k),
                            attrs[a % attrs.len()],
                            ops[op % ops.len()],
                            c,
                        ),
                        None => GedLiteral::cmp_attr(
                            VarId::new(v % k),
                            attrs[a % attrs.len()],
                            ops[op % ops.len()],
                            VarId::new(v2 % k),
                            attrs[(a + 1) % attrs.len()],
                        ),
                    };
                let premise: Vec<GedLiteral> = premise
                    .into_iter()
                    .map(|(v, a, op, c, v2)| mk_attr_lit((v, a, op, c, v2)))
                    .collect();
                let disjuncts: Vec<Vec<GedLiteral>> = disjuncts
                    .into_iter()
                    .map(|lits| {
                        lits.into_iter()
                            .map(|(kind, t)| {
                                if kind == 1 {
                                    GedLiteral::id(VarId::new(t.0 % k), VarId::new(t.1 % k))
                                } else {
                                    mk_attr_lit(t)
                                }
                            })
                            .collect()
                    })
                    .collect();
                (Ged::new("g", p, premise, disjuncts), vocab)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// GED print → parse is the identity, and printing is a fixpoint.
        #[test]
        fn ged_print_parse_round_trip((ged, vocab) in arb_ged()) {
            let mut vocab = vocab;
            let printed = crate::print_ged(&ged, &vocab);
            let reparsed = crate::parse_ged(&printed, &mut vocab)
                .expect("printer output must parse");
            prop_assert_eq!(&reparsed.premise, &ged.premise);
            prop_assert_eq!(&reparsed.disjuncts, &ged.disjuncts);
            prop_assert_eq!(reparsed.pattern.edges(), ged.pattern.edges());
            let printed2 = crate::print_ged(&reparsed, &vocab);
            prop_assert_eq!(printed, printed2);
        }
    }

    /// Strategy: a small random GGD — premise pattern over t/u/v labels,
    /// 1–2 fresh nodes, generated edges over the combined variable space
    /// and attribute assignments (`set`).
    fn arb_ggd() -> impl Strategy<Value = (gfd_core::Dependency, Vocab)> {
        use gfd_core::{Consequence, Dependency, GenerateConsequence};
        (
            1usize..3,
            proptest::collection::vec((0usize..3, 0usize..3, 0usize..3), 0..3),
            1usize..3,
            proptest::collection::vec((0usize..5, 0usize..3, 0usize..5), 1..4),
            proptest::collection::vec(
                (
                    0usize..5,
                    0usize..3,
                    proptest::option::of(0i64..5),
                    0usize..5,
                    0usize..3,
                ),
                0..3,
            ),
            proptest::collection::vec(
                (
                    0usize..3,
                    0usize..3,
                    proptest::option::of(0i64..5),
                    0usize..3,
                    0usize..3,
                ),
                0..2,
            ),
        )
            .prop_map(move |(k, edges, fresh, gen_edges, gen_attrs, premise)| {
                let mut vocab = Vocab::new();
                let labels = [vocab.label("t"), vocab.label("u"), vocab.label("v")];
                let attrs = [vocab.attr("a"), vocab.attr("b"), vocab.attr("c")];
                let mut p = Pattern::new();
                for i in 0..k {
                    p.add_node(labels[i % labels.len()], format!("x{i}"));
                }
                for (s, l, d) in edges {
                    p.add_edge(
                        VarId::new(s % k),
                        labels[l % labels.len()],
                        VarId::new(d % k),
                    );
                }
                let premise: Vec<Literal> = premise
                    .into_iter()
                    .map(|(v, a, c, v2, a2)| match c {
                        Some(c) => Literal::eq_const(
                            VarId::new(v % k),
                            attrs[a % attrs.len()],
                            Value::Int(c),
                        ),
                        None => Literal::eq_attr(
                            VarId::new(v % k),
                            attrs[a % attrs.len()],
                            VarId::new(v2 % k),
                            attrs[a2 % attrs.len()],
                        ),
                    })
                    .collect();
                let mut gen = GenerateConsequence::over(&p);
                for i in 0..fresh {
                    gen.add_fresh(labels[i % labels.len()], format!("f{i}"));
                }
                let total = k + fresh;
                for (s, l, d) in gen_edges {
                    gen.add_edge(
                        VarId::new(s % total),
                        labels[l % labels.len()],
                        VarId::new(d % total),
                    );
                }
                for (v, a, c, v2, a2) in gen_attrs {
                    let lit = match c {
                        Some(c) => Literal::eq_const(
                            VarId::new(v % total),
                            attrs[a % attrs.len()],
                            Value::Int(c),
                        ),
                        None => Literal::eq_attr(
                            VarId::new(v % total),
                            attrs[a % attrs.len()],
                            VarId::new(v2 % total),
                            attrs[a2 % attrs.len()],
                        ),
                    };
                    gen.push_attr(lit);
                }
                (
                    Dependency::new("g", p, premise, Consequence::Generate(gen)),
                    vocab,
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Mixed GFD/GGD rule files round-trip: print → parse preserves
        /// every rule's structure in order, and printing the reparsed
        /// document is a fixpoint (`gfd fmt` canonicalization is stable).
        #[test]
        fn mixed_rule_file_round_trip(
            rules in proptest::collection::vec(
                prop_oneof![
                    arb_gfd().prop_map(|(g, v)| (gfd_core::Dependency::from_gfd(g), v)),
                    arb_ggd(),
                ],
                1..4,
            )
        ) {
            let mut src = String::new();
            for (i, (dep, vocab)) in rules.iter().enumerate() {
                let mut named = dep.clone();
                named.name = format!("r{i}");
                src.push_str(&crate::print_dependency(&named, vocab));
            }
            let mut vocab = Vocab::new();
            let doc = crate::parse_document(&src, &mut vocab).expect("mixed print must parse");
            prop_assert_eq!(doc.deps.len(), rules.len());
            // Interned ids differ between each rule's private vocab and
            // the document's, so compare structure through the printed
            // form (names resolve identically on both sides).
            for (i, (dep, rule_vocab)) in rules.iter().enumerate() {
                let mut named = dep.clone();
                named.name = format!("r{i}");
                let expect = crate::print_dependency(&named, rule_vocab);
                let back = doc.deps.get(gfd_graph::GfdId::new(i));
                prop_assert_eq!(back.is_generating(), dep.is_generating(), "rule {}", i);
                prop_assert_eq!(crate::print_dependency(back, &vocab), expect, "rule {}", i);
            }
            // Fixpoint: printing the reparsed set reproduces the text.
            let printed = crate::print_dep_set(&doc.deps, &vocab);
            let mut vocab2 = Vocab::new();
            let doc2 = crate::parse_document(&printed, &mut vocab2).expect("fixpoint parse");
            prop_assert_eq!(crate::print_dep_set(&doc2.deps, &vocab2), printed);
        }
    }

    #[test]
    fn round_trip_preserves_reasoning() {
        // A sanity check that DSL round-trips preserve satisfiability.
        let mut vocab = Vocab::new();
        let src = r#"
            gfd a { pattern { node x: _ } then { x.v = 1 } }
            gfd b { pattern { node x: _ } then { x.v = 2 } }
        "#;
        let doc = crate::parse_document(src, &mut vocab).unwrap();
        assert!(!gfd_core::seq_sat(&doc.gfds).is_satisfiable());
        let printed = crate::print_gfd_set(&doc.gfds, &vocab);
        let doc2 = crate::parse_document(&printed, &mut vocab).unwrap();
        assert!(!gfd_core::seq_sat(&doc2.gfds).is_satisfiable());
        let _ = GfdSet::new();
    }
}
