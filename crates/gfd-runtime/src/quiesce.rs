//! The scheduler's quiescence and cancellation protocol, extracted so
//! it can be model-checked (DESIGN.md §14.4).
//!
//! Quiescence is an in-flight unit counter: seeded and split units
//! increment it, completed units decrement it, and a worker may exit
//! only when it observes zero (or the stop flag). The protocol's
//! correctness rests on two ordering decisions this module owns:
//!
//! 1. **Split publishes count-first.** A straggler splitting off
//!    remainder units raises the counter *before* the units become
//!    stealable. Were the order flipped, a thief could steal, execute
//!    and decrement a split unit before its increment landed — the
//!    counter dips to zero (or underflows) with work still queued, and
//!    another worker exits early. [`Quiesce::split`] encapsulates the
//!    order; the `gfd-model` scenario `quiesce_split_protocol` explores
//!    both orders and exhibits the early-exit schedule for the flipped
//!    one (behind [`Weaken::QuiesceSplitPublish`]).
//! 2. **Counter traffic is SeqCst.** The decrement a worker performs
//!    after finishing a unit and the zero-check another worker exits on
//!    must be in one total order with the split increments, so "observed
//!    zero" implies "every unit, split or not, fully executed".
//!
//! The stop flag is the cancellation side: any worker (or the task, via
//! its own reference) raises it with a SeqCst store; workers poll it
//! with a relaxed load — cancellation is a latency hint, not a
//! synchronization edge, and the final verdict travels through the
//! scheduler's mutex-protected verdict slot and thread joins instead.

use crate::atomics::{AtomicFlag, AtomicInt, Atomics, StdAtomics, Weaken};
use std::sync::atomic::Ordering;

/// The in-flight unit counter behind scheduler quiescence, generic over
/// the [`Atomics`] family so the model build can explore its
/// interleavings.
pub struct Quiesce<A: Atomics = StdAtomics> {
    in_flight: A::Usize,
}

impl<A: Atomics> Quiesce<A> {
    /// A counter seeded with `seeded` not-yet-executed units.
    pub fn new(seeded: usize) -> Self {
        Quiesce {
            in_flight: A::Usize::new(seeded),
        }
    }

    /// Publish `n` split units: raise the counter, then make the units
    /// visible by running `push` (which enqueues them wherever the
    /// caller's topology wants them). The count-first order is the
    /// protocol invariant — see the module docs. The parent unit is
    /// still counted while this runs, so the counter cannot reach zero
    /// mid-split either way; the order matters for the *children*,
    /// which become stealable the moment `push` runs.
    pub fn split(&self, n: usize, push: impl FnOnce()) {
        if A::weakened(Weaken::QuiesceSplitPublish) {
            // Deliberately wrong order, reachable only from the model
            // build: children are stealable before they are counted.
            push();
            self.in_flight.fetch_add(n, Ordering::SeqCst);
        } else {
            self.in_flight.fetch_add(n, Ordering::SeqCst);
            push();
        }
    }

    /// A unit (seeded or split) finished executing — including any
    /// splits it published, which were counted separately before this
    /// decrement.
    pub fn complete_one(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Has every counted unit finished? A `true` answer is a worker's
    /// licence to exit: with the count-first split order, zero implies
    /// no unit is queued anywhere and none is mid-execution.
    pub fn quiescent(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0
    }

    /// The current in-flight count (diagnostics only — stale the moment
    /// it returns).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Raise the stop flag: every worker exits its loop at the next
    /// poll. SeqCst store so a raise is never reordered behind whatever
    /// verdict write preceded it.
    pub fn raise_stop(stop: &A::Bool) {
        stop.store(true, Ordering::SeqCst);
    }

    /// Poll the stop flag (relaxed: a missed poll only costs one more
    /// unit of latency; the raise itself is SeqCst).
    pub fn stop_requested(stop: &A::Bool) -> bool {
        stop.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_seed_split_and_completion() {
        let q: Quiesce = Quiesce::new(2);
        assert!(!q.quiescent());
        q.split(3, || {});
        assert_eq!(q.in_flight(), 5);
        for _ in 0..5 {
            assert!(!q.quiescent());
            q.complete_one();
        }
        assert!(q.quiescent());
    }

    #[test]
    fn stop_flag_round_trip() {
        let stop = std::sync::atomic::AtomicBool::new(false);
        assert!(!Quiesce::<StdAtomics>::stop_requested(&stop));
        Quiesce::<StdAtomics>::raise_stop(&stop);
        assert!(Quiesce::<StdAtomics>::stop_requested(&stop));
    }
}
