//! The unified run metrics reported by every scheduler workload.
//!
//! One type serves all three reasoning layers (it replaced the former
//! `ReasonStats` / `WorkerStats` / ad-hoc detection atomics): sequential
//! runs populate the same counters as parallel ones, just with one worker.

use gfd_trace::Trace;
use std::time::Duration;

/// Counters and timings for one scheduler run (`SeqSat`/`SeqImp`,
/// `ParSat`/`ParImp`, or a detection pass).
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Wall-clock time of the whole run (including setup and the final
    /// convergence phase).
    pub elapsed: Duration,
    /// Number of workers used.
    pub workers: usize,
    /// Initial work units generated from pivot candidates.
    pub units_generated: usize,
    /// Units executed by workers (initial + split).
    pub units_dispatched: u64,
    /// Units created by TTL straggler splitting.
    pub units_split: u64,
    /// Units taken from another worker's deque.
    pub units_stolen: u64,
    /// Matches found and processed across all workers.
    pub matches: u64,
    /// Branches explored by branch-and-bound workloads (the GED
    /// small-model search); zero for match-driven workloads.
    pub branches: u64,
    /// Matches that entered the pending (inverted) index.
    pub pending: u64,
    /// Pending re-checks triggered by attribute instantiation.
    pub rechecks: u64,
    /// ΔEq ops broadcast between workers.
    pub delta_ops_broadcast: u64,
    /// Unit executions that panicked and were caught by the scheduler's
    /// isolation envelope.
    pub units_panicked: u64,
    /// Panicked units requeued for another attempt.
    pub units_retried: u64,
    /// When the run had a wall-clock deadline: the slack left at the end,
    /// in milliseconds (negative = the run overshot the deadline while
    /// finishing its last units).
    pub deadline_slack_ms: Option<i64>,
    /// Busy (CPU) time per worker.
    pub worker_busy: Vec<Duration>,
    /// Wall time each worker spent with no runnable unit (steal attempts
    /// failed, waiting for quiescence or new splits).
    pub worker_idle: Vec<Duration>,
    /// Did the run end early (conflict / consequence / budget reached)?
    pub early_terminated: bool,
    /// The structured trace recorded by this run (empty unless tracing
    /// was enabled — see `gfd_trace` and DESIGN.md §13). Riding on the
    /// metrics lets every engine's existing return path deliver traces
    /// to the CLI without new plumbing.
    pub trace: Trace,
}

impl RunMetrics {
    /// The simulated parallel makespan: the maximum per-worker busy (CPU)
    /// time. On a machine with ≥ p free cores this approximates wall
    /// time; on fewer cores it still reflects what dedicated processors
    /// would achieve, which is what the scalability experiments compare.
    pub fn makespan(&self) -> Option<Duration> {
        self.worker_busy.iter().max().copied()
    }

    /// Total busy (CPU) time across workers.
    pub fn total_busy(&self) -> Duration {
        self.worker_busy.iter().sum()
    }

    /// Total idle (wall) time across workers.
    pub fn total_idle(&self) -> Duration {
        self.worker_idle.iter().sum()
    }

    /// Load imbalance: max busy time over mean busy time (1.0 = perfectly
    /// balanced). `None` when per-worker times were not collected.
    pub fn imbalance(&self) -> Option<f64> {
        if self.worker_busy.is_empty() {
            return None;
        }
        let max = self.worker_busy.iter().max()?.as_secs_f64();
        let mean = self
            .worker_busy
            .iter()
            .map(Duration::as_secs_f64)
            .sum::<f64>()
            / self.worker_busy.len() as f64;
        if mean == 0.0 {
            return Some(1.0);
        }
        Some(max / mean)
    }

    /// Fold another run's metrics into this one — the accumulator for
    /// multi-run flows (one streamed `DeltaBatch` after another, or the
    /// chase's per-round scheduler runs).
    ///
    /// Counters sum; `elapsed` sums; `workers` takes the max;
    /// `early_terminated` is sticky; `deadline_slack_ms` takes the most
    /// recent measurement (the later run's remaining slack supersedes the
    /// earlier one's); per-worker busy/idle vectors add element-wise,
    /// extending with zeros when worker counts differ; traces concatenate.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.elapsed += other.elapsed;
        self.workers = self.workers.max(other.workers);
        self.units_generated += other.units_generated;
        self.units_dispatched += other.units_dispatched;
        self.units_split += other.units_split;
        self.units_stolen += other.units_stolen;
        self.matches += other.matches;
        self.branches += other.branches;
        self.pending += other.pending;
        self.rechecks += other.rechecks;
        self.delta_ops_broadcast += other.delta_ops_broadcast;
        self.units_panicked += other.units_panicked;
        self.units_retried += other.units_retried;
        if other.deadline_slack_ms.is_some() {
            self.deadline_slack_ms = other.deadline_slack_ms;
        }
        if self.worker_busy.len() < other.worker_busy.len() {
            self.worker_busy
                .resize(other.worker_busy.len(), Duration::ZERO);
        }
        for (acc, d) in self.worker_busy.iter_mut().zip(&other.worker_busy) {
            *acc += *d;
        }
        if self.worker_idle.len() < other.worker_idle.len() {
            self.worker_idle
                .resize(other.worker_idle.len(), Duration::ZERO);
        }
        for (acc, d) in self.worker_idle.iter_mut().zip(&other.worker_idle) {
            *acc += *d;
        }
        self.early_terminated |= other.early_terminated;
        self.trace.merge(&other.trace);
    }

    /// Serialize as a machine-readable JSON object: every counter, the
    /// per-worker timings (integer microseconds — the interchange parser
    /// is integer-only), and the aggregated trace profile. One schema
    /// serves the CLI's `--metrics-json` and the bench harness.
    pub fn to_json(&self, rule_names: &[String]) -> String {
        let durs = |v: &[Duration]| {
            let items: Vec<String> = v.iter().map(|d| d.as_micros().to_string()).collect();
            format!("[{}]", items.join(", "))
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!(
            "  \"elapsed_us\": {},\n",
            self.elapsed.as_micros()
        ));
        out.push_str(&format!(
            "  \"units_generated\": {}, \"units_dispatched\": {}, \
             \"units_split\": {}, \"units_stolen\": {},\n",
            self.units_generated, self.units_dispatched, self.units_split, self.units_stolen
        ));
        out.push_str(&format!(
            "  \"matches\": {}, \"branches\": {}, \"pending\": {}, \
             \"rechecks\": {}, \"delta_ops_broadcast\": {},\n",
            self.matches, self.branches, self.pending, self.rechecks, self.delta_ops_broadcast
        ));
        out.push_str(&format!(
            "  \"units_panicked\": {}, \"units_retried\": {},\n",
            self.units_panicked, self.units_retried
        ));
        out.push_str(&format!(
            "  \"deadline_slack_ms\": {},\n",
            match self.deadline_slack_ms {
                Some(ms) => ms.to_string(),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!(
            "  \"early_terminated\": {},\n",
            self.early_terminated
        ));
        out.push_str(&format!(
            "  \"worker_busy_us\": {},\n  \"worker_idle_us\": {},\n",
            durs(&self.worker_busy),
            durs(&self.worker_idle)
        ));
        out.push_str(&format!(
            "  \"profile\": {}\n",
            self.trace.profile().to_json(rule_names, 1)
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let m = RunMetrics {
            worker_busy: vec![Duration::from_millis(10); 4],
            ..Default::default()
        };
        assert!((m.imbalance().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_straggler() {
        let m = RunMetrics {
            worker_busy: vec![
                Duration::from_millis(10),
                Duration::from_millis(10),
                Duration::from_millis(40),
            ],
            ..Default::default()
        };
        assert!(m.imbalance().unwrap() > 1.5);
    }

    #[test]
    fn imbalance_none_without_data() {
        assert!(RunMetrics::default().imbalance().is_none());
    }

    #[test]
    fn idle_time_totals() {
        let m = RunMetrics {
            worker_idle: vec![Duration::from_millis(3), Duration::from_millis(4)],
            ..Default::default()
        };
        assert_eq!(m.total_idle(), Duration::from_millis(7));
    }

    #[test]
    fn makespan_edge_cases() {
        // Empty worker_busy: no makespan at all, not a zero one.
        assert!(RunMetrics::default().makespan().is_none());
        // All-zero busy times still report a (zero) makespan: the data
        // was collected, the workers just never ran a unit.
        let m = RunMetrics {
            worker_busy: vec![Duration::ZERO; 3],
            ..Default::default()
        };
        assert_eq!(m.makespan(), Some(Duration::ZERO));
    }

    #[test]
    fn imbalance_zero_mean_busy_is_balanced() {
        // Zero-mean busy (e.g. an empty seed at p > 1) must not divide by
        // zero: by convention the run is perfectly balanced.
        let m = RunMetrics {
            worker_busy: vec![Duration::ZERO; 4],
            ..Default::default()
        };
        assert_eq!(m.imbalance(), Some(1.0));
    }

    #[test]
    fn merge_accumulates_counters_and_worker_vectors() {
        let mut total = RunMetrics {
            workers: 2,
            units_dispatched: 10,
            units_stolen: 1,
            matches: 5,
            elapsed: Duration::from_millis(30),
            worker_busy: vec![Duration::from_millis(10), Duration::from_millis(20)],
            worker_idle: vec![Duration::from_millis(1), Duration::from_millis(2)],
            ..Default::default()
        };
        let batch = RunMetrics {
            workers: 4,
            units_dispatched: 7,
            units_stolen: 3,
            units_split: 2,
            matches: 4,
            elapsed: Duration::from_millis(12),
            deadline_slack_ms: Some(-3),
            early_terminated: true,
            worker_busy: vec![Duration::from_millis(5); 4],
            worker_idle: vec![Duration::from_millis(1); 4],
            ..Default::default()
        };
        total.merge(&batch);
        assert_eq!(total.workers, 4);
        assert_eq!(total.units_dispatched, 17);
        assert_eq!(total.units_stolen, 4);
        assert_eq!(total.units_split, 2);
        assert_eq!(total.matches, 9);
        assert_eq!(total.elapsed, Duration::from_millis(42));
        assert_eq!(total.deadline_slack_ms, Some(-3));
        assert!(total.early_terminated);
        // Element-wise busy add, extended with zeros to 4 workers.
        assert_eq!(
            total.worker_busy,
            vec![
                Duration::from_millis(15),
                Duration::from_millis(25),
                Duration::from_millis(5),
                Duration::from_millis(5),
            ]
        );
        // Merging an empty batch changes nothing.
        let snapshot = total.units_dispatched;
        total.merge(&RunMetrics::default());
        assert_eq!(total.units_dispatched, snapshot);
        assert_eq!(total.deadline_slack_ms, Some(-3), "None must not clobber");
    }

    #[test]
    fn merge_concatenates_traces() {
        use gfd_trace::{EventKind, Trace, TraceEvent};
        let ev = |id| TraceEvent {
            kind: EventKind::UnitExec,
            worker: 0,
            id,
            t0_ns: 0,
            dur_ns: 5,
            a: 0,
            b: 0,
        };
        let mut total = RunMetrics {
            trace: Trace {
                events: vec![ev(0)],
                dropped: 1,
            },
            ..Default::default()
        };
        let batch = RunMetrics {
            trace: Trace {
                events: vec![ev(1), ev(2)],
                dropped: 0,
            },
            ..Default::default()
        };
        total.merge(&batch);
        assert_eq!(total.trace.events.len(), 3);
        assert_eq!(total.trace.dropped, 1);
    }

    #[test]
    fn json_export_is_integer_only_and_complete() {
        let m = RunMetrics {
            workers: 2,
            units_dispatched: 3,
            deadline_slack_ms: Some(-7),
            worker_busy: vec![Duration::from_micros(1500), Duration::from_micros(200)],
            ..Default::default()
        };
        let json = m.to_json(&[]);
        assert!(json.contains("\"workers\": 2"), "{json}");
        assert!(json.contains("\"deadline_slack_ms\": -7"), "{json}");
        assert!(json.contains("\"worker_busy_us\": [1500, 200]"), "{json}");
        assert!(json.contains("\"profile\""), "{json}");
        assert!(!json.contains('.'), "floats would break the parser: {json}");
        let none = RunMetrics::default().to_json(&[]);
        assert!(none.contains("\"deadline_slack_ms\": null"), "{none}");
    }
}
