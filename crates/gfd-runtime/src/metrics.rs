//! The unified run metrics reported by every scheduler workload.
//!
//! One type serves all three reasoning layers (it replaced the former
//! `ReasonStats` / `WorkerStats` / ad-hoc detection atomics): sequential
//! runs populate the same counters as parallel ones, just with one worker.

use std::time::Duration;

/// Counters and timings for one scheduler run (`SeqSat`/`SeqImp`,
/// `ParSat`/`ParImp`, or a detection pass).
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Wall-clock time of the whole run (including setup and the final
    /// convergence phase).
    pub elapsed: Duration,
    /// Number of workers used.
    pub workers: usize,
    /// Initial work units generated from pivot candidates.
    pub units_generated: usize,
    /// Units executed by workers (initial + split).
    pub units_dispatched: u64,
    /// Units created by TTL straggler splitting.
    pub units_split: u64,
    /// Units taken from another worker's deque.
    pub units_stolen: u64,
    /// Matches found and processed across all workers.
    pub matches: u64,
    /// Branches explored by branch-and-bound workloads (the GED
    /// small-model search); zero for match-driven workloads.
    pub branches: u64,
    /// Matches that entered the pending (inverted) index.
    pub pending: u64,
    /// Pending re-checks triggered by attribute instantiation.
    pub rechecks: u64,
    /// ΔEq ops broadcast between workers.
    pub delta_ops_broadcast: u64,
    /// Unit executions that panicked and were caught by the scheduler's
    /// isolation envelope.
    pub units_panicked: u64,
    /// Panicked units requeued for another attempt.
    pub units_retried: u64,
    /// When the run had a wall-clock deadline: the slack left at the end,
    /// in milliseconds (negative = the run overshot the deadline while
    /// finishing its last units).
    pub deadline_slack_ms: Option<i64>,
    /// Busy (CPU) time per worker.
    pub worker_busy: Vec<Duration>,
    /// Wall time each worker spent with no runnable unit (steal attempts
    /// failed, waiting for quiescence or new splits).
    pub worker_idle: Vec<Duration>,
    /// Did the run end early (conflict / consequence / budget reached)?
    pub early_terminated: bool,
}

impl RunMetrics {
    /// The simulated parallel makespan: the maximum per-worker busy (CPU)
    /// time. On a machine with ≥ p free cores this approximates wall
    /// time; on fewer cores it still reflects what dedicated processors
    /// would achieve, which is what the scalability experiments compare.
    pub fn makespan(&self) -> Option<Duration> {
        self.worker_busy.iter().max().copied()
    }

    /// Total busy (CPU) time across workers.
    pub fn total_busy(&self) -> Duration {
        self.worker_busy.iter().sum()
    }

    /// Total idle (wall) time across workers.
    pub fn total_idle(&self) -> Duration {
        self.worker_idle.iter().sum()
    }

    /// Load imbalance: max busy time over mean busy time (1.0 = perfectly
    /// balanced). `None` when per-worker times were not collected.
    pub fn imbalance(&self) -> Option<f64> {
        if self.worker_busy.is_empty() {
            return None;
        }
        let max = self.worker_busy.iter().max()?.as_secs_f64();
        let mean = self
            .worker_busy
            .iter()
            .map(Duration::as_secs_f64)
            .sum::<f64>()
            / self.worker_busy.len() as f64;
        if mean == 0.0 {
            return Some(1.0);
        }
        Some(max / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let m = RunMetrics {
            worker_busy: vec![Duration::from_millis(10); 4],
            ..Default::default()
        };
        assert!((m.imbalance().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_straggler() {
        let m = RunMetrics {
            worker_busy: vec![
                Duration::from_millis(10),
                Duration::from_millis(10),
                Duration::from_millis(40),
            ],
            ..Default::default()
        };
        assert!(m.imbalance().unwrap() > 1.5);
    }

    #[test]
    fn imbalance_none_without_data() {
        assert!(RunMetrics::default().imbalance().is_none());
    }

    #[test]
    fn idle_time_totals() {
        let m = RunMetrics {
            worker_idle: vec![Duration::from_millis(3), Duration::from_millis(4)],
            ..Default::default()
        };
        assert_eq!(m.total_idle(), Duration::from_millis(7));
    }
}
