//! The generic work-stealing scheduler.
//!
//! Dispatch topology (the work-stealing default):
//!
//! * Seed units are dealt round-robin across `p` per-worker deques in
//!   priority order, so every deque is priority-ascending front to back.
//! * A worker pops its **own deque from the front** (highest priority
//!   first). Split units produced mid-run are pushed to the owner's
//!   **front**: a straggler's remainder inherits its parent's priority
//!   and stays on the worker whose caches already hold its prefix.
//! * An idle worker **steals the back half** of a victim's deque — the
//!   lowest-priority work, so the victim keeps the units the priority
//!   order wanted it to run next.
//! * Quiescence is an in-flight counter: seeded and split units increment
//!   it, completed units decrement it; workers exit when it reaches zero
//!   (or the shared stop flag is raised). Because a split happens *while
//!   its parent unit is still counted*, the counter can only reach zero
//!   when every unit, split or not, has been fully executed.
//!
//! The former coordinator topology — one central queue handing batches to
//! whichever worker reports done, costing an idle channel round-trip per
//! batch — survives as [`DispatchMode::Coordinator`] for the head-to-head
//! benchmarks.

use crate::cputime::BusyTimer;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How units travel from the queue(s) to the workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Per-worker deques with back-half stealing (the default).
    #[default]
    WorkStealing,
    /// One shared queue every worker pops from — the centralized-dispatch
    /// baseline the original coordinator/worker runtime implemented.
    Coordinator,
}

/// A schedulable workload.
///
/// The scheduler owns unit dispatch; the task owns unit semantics: what a
/// unit *is*, the per-worker state it runs against, and any side channels
/// between workers (e.g. the reasoning task's `ΔEq` broadcast mesh).
pub trait Task: Sync {
    /// One unit of work.
    type Unit: Send;
    /// Per-worker state, created on the worker thread and returned to the
    /// caller after quiescence.
    type Worker: Send;

    /// Create worker-local state for worker `id`.
    fn worker(&self, id: usize) -> Self::Worker;

    /// Execute one unit. Straggler splitting pushes the remainder units
    /// through [`WorkerCtx::split`]; early termination raises the stop
    /// flag the task closed over.
    fn run_unit(
        &self,
        worker: &mut Self::Worker,
        unit: Self::Unit,
        ctx: &WorkerCtx<'_, Self::Unit>,
    );

    /// Called when the worker found no runnable unit (own deque empty,
    /// steals failed) but the run is not yet quiescent — a chance to drain
    /// inboxes while another worker's straggler may still split.
    fn on_idle(&self, _worker: &mut Self::Worker, _ctx: &WorkerCtx<'_, Self::Unit>) {}
}

struct Shared<'s, U> {
    queues: Vec<Mutex<VecDeque<U>>>,
    /// Units seeded or split but not yet fully executed.
    in_flight: AtomicUsize,
    stop: &'s AtomicBool,
    mode: DispatchMode,
    units_executed: AtomicU64,
    units_stolen: AtomicU64,
    units_split: AtomicU64,
}

impl<U> Shared<'_, U> {
    /// Next unit for worker `id`: own front, else steal a victim's back
    /// half (work stealing), or the single shared front (coordinator).
    fn pop(&self, id: usize) -> Option<U> {
        match self.mode {
            DispatchMode::Coordinator => self.queues[0].lock().pop_front(),
            DispatchMode::WorkStealing => {
                if let Some(u) = self.queues[id].lock().pop_front() {
                    return Some(u);
                }
                self.steal(id)
            }
        }
    }

    fn steal(&self, thief: usize) -> Option<U> {
        let p = self.queues.len();
        for k in 1..p {
            let victim = (thief + k) % p;
            let mut loot = {
                let mut q = self.queues[victim].lock();
                let n = q.len();
                if n == 0 {
                    continue;
                }
                // Take the back half (lowest priority), keeping its
                // internal order.
                q.split_off(n - n.div_ceil(2))
            };
            self.units_stolen
                .fetch_add(loot.len() as u64, Ordering::Relaxed);
            let first = loot.pop_front();
            if !loot.is_empty() {
                self.queues[thief].lock().extend(loot);
            }
            return first;
        }
        None
    }
}

/// The scheduler handle a [`Task`] uses from inside `run_unit`/`on_idle`.
pub struct WorkerCtx<'s, U> {
    shared: &'s Shared<'s, U>,
    worker: usize,
}

impl<U> WorkerCtx<'_, U> {
    /// The id of the worker this context belongs to.
    pub fn worker_id(&self) -> usize {
        self.worker
    }

    /// Enqueue split units carved off a straggler. They go to the front of
    /// this worker's own deque (the shared queue's front under
    /// [`DispatchMode::Coordinator`]), preserving the given order, so the
    /// remainder inherits the parent unit's priority.
    pub fn split(&self, units: Vec<U>) {
        if units.is_empty() {
            return;
        }
        self.shared
            .in_flight
            .fetch_add(units.len(), Ordering::SeqCst);
        self.shared
            .units_split
            .fetch_add(units.len() as u64, Ordering::Relaxed);
        let qi = match self.shared.mode {
            DispatchMode::Coordinator => 0,
            DispatchMode::WorkStealing => self.worker,
        };
        let mut q = self.shared.queues[qi].lock();
        for u in units.into_iter().rev() {
            q.push_front(u);
        }
    }
}

/// What a finished scheduler run hands back to the caller.
pub struct SchedRun<W> {
    /// Per-worker final states, in worker-id order.
    pub workers: Vec<W>,
    /// Units executed (seeded + split).
    pub units_executed: u64,
    /// Units taken from another worker's deque.
    pub units_stolen: u64,
    /// Units created by splitting.
    pub units_split: u64,
    /// Busy (CPU) time per worker.
    pub worker_busy: Vec<Duration>,
    /// Idle (wall) time per worker.
    pub worker_idle: Vec<Duration>,
}

fn worker_loop<T: Task>(
    task: &T,
    shared: &Shared<'_, T::Unit>,
    id: usize,
) -> (T::Worker, Duration, Duration) {
    let mut worker = task.worker(id);
    let mut busy = Duration::ZERO;
    let mut idle = Duration::ZERO;
    let mut spins = 0u32;
    let ctx = WorkerCtx { shared, worker: id };
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(unit) = shared.pop(id) {
            spins = 0;
            let timer = BusyTimer::start();
            task.run_unit(&mut worker, unit, &ctx);
            busy += timer.elapsed();
            shared.units_executed.fetch_add(1, Ordering::Relaxed);
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if shared.in_flight.load(Ordering::SeqCst) == 0 {
            break;
        }
        // No runnable unit, but a straggler elsewhere may still split.
        // `on_idle` can do real work (e.g. drain a `ΔEq` inbox, cascading
        // pending rechecks), so its CPU time counts as busy; only the
        // yield/sleep wait is booked as idle.
        let timer = BusyTimer::start();
        task.on_idle(&mut worker, &ctx);
        busy += timer.elapsed();
        let idle_start = Instant::now();
        if spins < 64 {
            spins += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
        }
        idle += idle_start.elapsed();
    }
    (worker, busy, idle)
}

/// Run `task` over `seed` units on `workers` threads until quiescence or
/// until `stop` is raised.
///
/// Seed units are dealt round-robin across the per-worker deques in the
/// given order (all into one queue under [`DispatchMode::Coordinator`]),
/// so seeding in priority order keeps every deque priority-ascending.
///
/// With `workers == 1` the single worker runs inline on the calling
/// thread — the sequential algorithms are exactly this instantiation and
/// pay no thread-spawn cost.
pub fn run_scheduler<T: Task>(
    task: &T,
    seed: Vec<T::Unit>,
    workers: usize,
    mode: DispatchMode,
    stop: &AtomicBool,
) -> SchedRun<T::Worker> {
    let p = workers.max(1);
    let queue_count = match mode {
        DispatchMode::Coordinator => 1,
        DispatchMode::WorkStealing => p,
    };
    let in_flight = seed.len();
    let queues: Vec<Mutex<VecDeque<T::Unit>>> = (0..queue_count)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (i, unit) in seed.into_iter().enumerate() {
        queues[i % queue_count].lock().push_back(unit);
    }
    let shared = Shared {
        queues,
        in_flight: AtomicUsize::new(in_flight),
        stop,
        mode,
        units_executed: AtomicU64::new(0),
        units_stolen: AtomicU64::new(0),
        units_split: AtomicU64::new(0),
    };

    let mut states: Vec<(T::Worker, Duration, Duration)> = if p == 1 {
        vec![worker_loop(task, &shared, 0)]
    } else {
        std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..p)
                .map(|id| scope.spawn(move || worker_loop(task, shared, id)))
                .collect();
            // Re-derive ids from spawn order: handles join in id order.
            handles
                .into_iter()
                .map(|h| h.join().expect("scheduler worker panicked"))
                .collect()
        })
    };

    let mut run = SchedRun {
        workers: Vec::with_capacity(p),
        units_executed: shared.units_executed.load(Ordering::Relaxed),
        units_stolen: shared.units_stolen.load(Ordering::Relaxed),
        units_split: shared.units_split.load(Ordering::Relaxed),
        worker_busy: Vec::with_capacity(p),
        worker_idle: Vec::with_capacity(p),
    };
    for (worker, busy, idle) in states.drain(..) {
        run.workers.push(worker);
        run.worker_busy.push(busy);
        run.worker_idle.push(idle);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    /// A task that sums unit payloads per worker and splits units above a
    /// threshold into halves.
    struct SumTask {
        split_above: u64,
        executed: TestCounter,
    }

    impl Task for SumTask {
        type Unit = u64;
        type Worker = u64;

        fn worker(&self, _id: usize) -> u64 {
            0
        }

        fn run_unit(&self, acc: &mut u64, unit: u64, ctx: &WorkerCtx<'_, u64>) {
            self.executed.fetch_add(1, Ordering::Relaxed);
            if unit > self.split_above {
                let half = unit / 2;
                ctx.split(vec![half, unit - half]);
                return;
            }
            *acc += unit;
        }
    }

    fn total(seed: &[u64]) -> u64 {
        seed.iter().sum()
    }

    #[test]
    fn all_units_run_exactly_once_across_worker_counts() {
        for p in [1usize, 2, 4, 8] {
            let seed: Vec<u64> = (1..=100).collect();
            let task = SumTask {
                split_above: u64::MAX,
                executed: TestCounter::new(0),
            };
            let stop = AtomicBool::new(false);
            let run = run_scheduler(&task, seed.clone(), p, DispatchMode::WorkStealing, &stop);
            assert_eq!(run.workers.iter().sum::<u64>(), total(&seed), "p={p}");
            assert_eq!(run.units_executed, 100);
            assert_eq!(run.units_split, 0);
            assert_eq!(run.worker_busy.len(), p);
        }
    }

    #[test]
    fn splits_preserve_the_total() {
        for mode in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
            let seed: Vec<u64> = vec![1000, 3, 7, 2000];
            let task = SumTask {
                split_above: 10,
                executed: TestCounter::new(0),
            };
            let stop = AtomicBool::new(false);
            let run = run_scheduler(&task, seed.clone(), 3, mode, &stop);
            assert_eq!(run.workers.iter().sum::<u64>(), total(&seed), "{mode:?}");
            assert!(run.units_split > 0, "{mode:?}");
            assert_eq!(
                run.units_executed,
                seed.len() as u64 + run.units_split,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn stop_flag_halts_the_run() {
        struct StopTask;
        impl Task for StopTask {
            type Unit = usize;
            type Worker = usize;
            fn worker(&self, _id: usize) -> usize {
                0
            }
            fn run_unit(&self, done: &mut usize, _u: usize, _ctx: &WorkerCtx<'_, usize>) {
                *done += 1;
            }
        }
        let stop = AtomicBool::new(true);
        let run = run_scheduler(
            &StopTask,
            (0..1000).collect(),
            4,
            DispatchMode::WorkStealing,
            &stop,
        );
        // Pre-raised stop: nothing (or at most a unit per worker mid-pop)
        // runs.
        assert!(run.units_executed <= 4);
        assert_eq!(run.workers.len(), 4);
    }

    #[test]
    fn skewed_seed_forces_steals() {
        // Worker 0's deque gets one enormous unit (simulated by splitting
        // repeatedly); the others drain fast and must steal to stay busy.
        struct SpinTask;
        impl Task for SpinTask {
            type Unit = u64;
            type Worker = u64;
            fn worker(&self, _id: usize) -> u64 {
                0
            }
            fn run_unit(&self, acc: &mut u64, unit: u64, _ctx: &WorkerCtx<'_, u64>) {
                // Heavy units spin; light units return instantly.
                let mut x = 0u64;
                for i in 0..unit * 50_000 {
                    x = x.wrapping_mul(31).wrapping_add(i);
                }
                std::hint::black_box(x);
                *acc += 1;
            }
        }
        // Round-robin over p=2: even indices (worker 0) heavy-first, odd
        // light. Worker 0 is stuck on unit 0 while its deque still holds
        // work — worker 1 finishes its own and steals.
        let mut seed = vec![0u64; 64];
        seed[0] = 200;
        let stop = AtomicBool::new(false);
        let run = run_scheduler(&SpinTask, seed, 2, DispatchMode::WorkStealing, &stop);
        assert_eq!(run.units_executed, 64);
        assert!(run.units_stolen > 0, "no steals on a skewed workload");
    }

    #[test]
    fn empty_seed_returns_immediately() {
        let task = SumTask {
            split_above: u64::MAX,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler(&task, Vec::new(), 8, DispatchMode::WorkStealing, &stop);
        assert_eq!(run.units_executed, 0);
        assert_eq!(run.workers.len(), 8);
    }

    #[test]
    fn coordinator_mode_uses_one_queue() {
        let seed: Vec<u64> = (1..=50).collect();
        let task = SumTask {
            split_above: u64::MAX,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler(&task, seed.clone(), 4, DispatchMode::Coordinator, &stop);
        assert_eq!(run.workers.iter().sum::<u64>(), total(&seed));
        assert_eq!(run.units_stolen, 0, "coordinator mode never steals");
    }
}
