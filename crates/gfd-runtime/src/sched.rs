//! The generic work-stealing scheduler.
//!
//! Dispatch topology (the work-stealing default):
//!
//! * Seed units are dealt round-robin across `p` per-worker lock-free
//!   [Chase–Lev deques](crate::deque) in priority order, so every deque
//!   is priority-ascending front to back.
//! * A worker pops its **own deque from the front** (highest priority
//!   first; the Chase–Lev *bottom* — a lock-free owner operation).
//!   Split units produced mid-run are pushed to the owner's **front**:
//!   a straggler's remainder inherits its parent's priority and stays
//!   on the worker whose caches already hold its prefix.
//! * An idle worker **steals the back half** of a victim's deque — the
//!   lowest-priority work, claimed one CAS-validated element at a time
//!   from the Chase–Lev *top* — so the victim keeps the units the
//!   priority order wanted it to run next.
//! * Quiescence is an in-flight counter: seeded and split units increment
//!   it, completed units decrement it; workers exit when it reaches zero
//!   (or the shared stop flag is raised). Because a split happens *while
//!   its parent unit is still counted*, the counter can only reach zero
//!   when every unit, split or not, has been fully executed.
//!
//! The former coordinator topology — one central queue handing batches to
//! whichever worker reports done, costing an idle channel round-trip per
//! batch — survives as [`DispatchMode::Coordinator`] for the head-to-head
//! benchmarks.
//!
//! # Fault tolerance (DESIGN.md §11)
//!
//! Every unit executes inside a `catch_unwind` envelope. A panicking
//! unit can therefore never wedge the run: the in-flight counter is
//! decremented on the unwind path too, the per-worker deques are
//! lock-free [Chase–Lev deques](crate::deque) (the coordinator's single
//! shared queue keeps a `parking_lot` mutex — no lock poisoning either
//! way), and the run terminates with a structured
//! [`RunOutcome::Aborted`] carrying the worker id, the unit description
//! and the panic payload — all worker threads joined. With
//! [`SchedOptions::unit_retries`] > 0 a panicked unit is requeued (from
//! a clone taken before execution, see [`Task::clone_unit`]) up to that
//! many times before the run aborts. Cooperative resource limits — a
//! wall-clock deadline and a max-units budget — are checked at unit
//! boundaries and degrade the run to [`RunOutcome::BudgetExceeded`]
//! rather than panicking.

use crate::atomics::StdAtomics;
use crate::cputime::BusyTimer;
use crate::deque::{Steal, WsDeque};
use crate::failpoint;
use crate::quiesce::Quiesce;
use gfd_trace::{EventKind, SpanStart, Trace, TraceBuf, TraceSpec};
use parking_lot::Mutex;
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How units travel from the queue(s) to the workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Per-worker deques with back-half stealing (the default).
    #[default]
    WorkStealing,
    /// One shared queue every worker pops from — the centralized-dispatch
    /// baseline the original coordinator/worker runtime implemented.
    Coordinator,
}

/// A schedulable workload.
///
/// The scheduler owns unit dispatch; the task owns unit semantics: what a
/// unit *is*, the per-worker state it runs against, and any side channels
/// between workers (e.g. the reasoning task's `ΔEq` broadcast mesh).
pub trait Task: Sync {
    /// One unit of work.
    type Unit: Send;
    /// Per-worker state, created on the worker thread and returned to the
    /// caller after quiescence.
    type Worker: Send;

    /// Create worker-local state for worker `id`.
    fn worker(&self, id: usize) -> Self::Worker;

    /// Execute one unit. Straggler splitting pushes the remainder units
    /// through [`WorkerCtx::split`]; early termination raises the stop
    /// flag the task closed over.
    fn run_unit(
        &self,
        worker: &mut Self::Worker,
        unit: Self::Unit,
        ctx: &WorkerCtx<'_, Self::Unit>,
    );

    /// Called when the worker found no runnable unit (own deque empty,
    /// steals failed) but the run is not yet quiescent — a chance to drain
    /// inboxes while another worker's straggler may still split.
    fn on_idle(&self, _worker: &mut Self::Worker, _ctx: &WorkerCtx<'_, Self::Unit>) {}

    /// A short human-readable label for `unit`, used in
    /// [`AbortInfo::unit`] when the unit panics. The default is the empty
    /// string (rendered as `"unit"`), so tasks that do not care pay no
    /// per-unit allocation.
    fn describe_unit(&self, _unit: &Self::Unit) -> String {
        String::new()
    }

    /// Clone `unit` for the retry path. Returns `None` (the default) when
    /// units are not retryable; then a panicking unit always aborts the
    /// run regardless of [`SchedOptions::unit_retries`]. Tasks opting in
    /// must tolerate a unit re-running against worker state the failed
    /// attempt may have partially mutated.
    fn clone_unit(&self, _unit: &Self::Unit) -> Option<Self::Unit> {
        None
    }
}

/// Cooperative limits and fault-handling knobs for one scheduler run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedOptions {
    /// Abort dispatch (degrading to [`RunOutcome::BudgetExceeded`]) once
    /// this instant passes. Checked at unit boundaries: a unit already
    /// running is allowed to finish, so overshoot is bounded by the
    /// longest single unit.
    pub deadline: Option<Instant>,
    /// Stop dispatching after this many units have executed.
    pub max_units: Option<u64>,
    /// Requeue a panicked unit (cloned before execution) up to this many
    /// times before aborting the run. Requires [`Task::clone_unit`].
    pub unit_retries: u32,
    /// Structured tracing (DESIGN.md §13): when enabled, every worker
    /// records scheduler events into a private bounded ring drained into
    /// [`SchedRun::trace`] at quiescence. Disabled (the default) the
    /// recording sites collapse to a branch — no clock reads, no writes.
    pub trace: TraceSpec,
}

/// Which cooperative limit ended a [`RunOutcome::BudgetExceeded`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The max-units budget was consumed.
    Units,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Deadline => write!(f, "deadline expired"),
            Exhaustion::Units => write!(f, "unit budget exhausted"),
        }
    }
}

/// Where and why a run aborted: the structured surface of a unit panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbortInfo {
    /// Worker that observed the panic.
    pub worker: usize,
    /// [`Task::describe_unit`] of the panicking unit (`"unit"` when the
    /// task provides no description; `"<dispatch>"` for a panic raised
    /// while acquiring a unit, `"<worker-init>"` for one in
    /// [`Task::worker`]).
    pub unit: String,
    /// The panic payload, when it was a string (the common case).
    pub payload: String,
}

impl std::fmt::Display for AbortInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let unit = if self.unit.is_empty() {
            "unit"
        } else {
            &self.unit
        };
        write!(
            f,
            "worker {} panicked in {}: {}",
            self.worker, unit, self.payload
        )
    }
}

/// How a scheduler run ended.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum RunOutcome {
    /// Quiescence: every seeded and split unit executed.
    #[default]
    Completed,
    /// The task raised the stop flag (early termination: first conflict,
    /// first witness, violation budget…).
    Stopped,
    /// A cooperative limit from [`SchedOptions`] tripped; the run stopped
    /// cleanly with work left undone.
    BudgetExceeded(Exhaustion),
    /// A unit panicked (with retries exhausted): the run was cancelled,
    /// all workers joined, partial worker states returned.
    Aborted(AbortInfo),
}

impl RunOutcome {
    /// Did the run reach quiescence (so per-worker results are complete)?
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Did the run end on a panic?
    pub fn is_aborted(&self) -> bool {
        matches!(self, RunOutcome::Aborted(_))
    }
}

/// A queued unit plus how many times it has been retried.
type Envelope<U> = (U, u32);

/// How a popped unit arrived when it came from a steal: the victim and
/// the number of units the steal claimed (used only for trace events).
#[derive(Clone, Copy, Debug)]
struct StolenFrom {
    victim: u32,
    claimed: u64,
}

/// The queue topology behind one run: lock-free per-worker Chase–Lev
/// deques under [`DispatchMode::WorkStealing`], one mutexed shared queue
/// under [`DispatchMode::Coordinator`].
enum Queues<U> {
    /// One [`WsDeque`] per worker; worker `i` owns `deques[i]`'s bottom
    /// end, every other worker may CAS its top.
    Stealing(Vec<WsDeque<Envelope<U>>>),
    /// The centralized-dispatch baseline.
    Central(Mutex<VecDeque<Envelope<U>>>),
}

struct Shared<'s, U> {
    queues: Queues<U>,
    /// Units seeded or split but not yet fully executed — the quiescence
    /// protocol, model-checked in `gfd-model` (DESIGN.md §14.4).
    quiesce: Quiesce,
    stop: &'s AtomicBool,
    opts: SchedOptions,
    units_executed: AtomicU64,
    units_stolen: AtomicU64,
    units_split: AtomicU64,
    units_panicked: AtomicU64,
    units_retried: AtomicU64,
    /// First scheduler-raised stop cause wins; task-raised stops leave
    /// this empty and resolve to [`RunOutcome::Stopped`] at the end.
    verdict: Mutex<Option<RunOutcome>>,
}

impl<U> Shared<'_, U> {
    /// Next unit for worker `id`: own bottom (lock-free, highest
    /// priority first), else steal a victim's back half (work stealing),
    /// or the single shared front (coordinator). A unit that arrived via
    /// a steal is reported with the claim count and victim id so the
    /// worker loop can trace it — the steal logic itself is identical
    /// with tracing on or off (the non-interference contract of
    /// DESIGN.md §13).
    fn pop(&self, id: usize) -> Option<(Envelope<U>, Option<StolenFrom>)> {
        failpoint::maybe_panic("sched/dispatch");
        match &self.queues {
            Queues::Central(q) => q.lock().pop_front().map(|u| (u, None)),
            Queues::Stealing(deques) => {
                if let Some(u) = deques[id].pop() {
                    return Some((u, None));
                }
                self.steal(id)
            }
        }
    }

    fn steal(&self, thief: usize) -> Option<(Envelope<U>, Option<StolenFrom>)> {
        failpoint::maybe_panic("sched/steal");
        let Queues::Stealing(deques) = &self.queues else {
            return None;
        };
        let p = deques.len();
        for k in 1..p {
            let victim = (thief + k) % p;
            let v = &deques[victim];
            // Steal-half policy on the lock-free deque: claim (up to)
            // the ceil-half of the victim's observed size, one
            // CAS-validated element at a time from the top — the
            // lowest-priority end, so the victim keeps the units the
            // priority order wanted it to run next. A lost CAS means
            // someone else made progress; retry until the budget is
            // met or the victim drains.
            let mut budget = v.len_hint().div_ceil(2);
            let mut loot: Vec<Envelope<U>> = Vec::new();
            while budget > 0 {
                match v.steal() {
                    Steal::Success(u) => {
                        loot.push(u);
                        budget -= 1;
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
            if loot.is_empty() {
                continue;
            }
            // Only elements actually claimed count as stolen — a lost
            // CAS is not a steal.
            let claimed = loot.len() as u64;
            self.units_stolen.fetch_add(claimed, Ordering::Relaxed);
            // `loot` is top-first, i.e. ascending priority: run the
            // best loot unit now and keep the rest in our own deque in
            // that order, so subsequent owner pops (bottom = last
            // pushed) also see best-first.
            let first = loot.pop();
            for u in loot {
                deques[thief].push(u);
            }
            return first.map(|u| {
                (
                    u,
                    Some(StolenFrom {
                        victim: victim as u32,
                        claimed,
                    }),
                )
            });
        }
        None
    }

    /// Record a scheduler-raised stop cause (first writer wins) and raise
    /// the stop flag so every worker exits its loop.
    fn cancel(&self, outcome: RunOutcome) {
        {
            let mut v = self.verdict.lock();
            if v.is_none() {
                *v = Some(outcome);
            }
        }
        Quiesce::<StdAtomics>::raise_stop(self.stop);
    }

    fn abort(&self, worker: usize, unit: String, payload: Box<dyn Any + Send>) {
        self.cancel(RunOutcome::Aborted(AbortInfo {
            worker,
            unit,
            payload: payload_str(payload),
        }));
    }
}

fn payload_str(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The scheduler handle a [`Task`] uses from inside `run_unit`/`on_idle`.
pub struct WorkerCtx<'s, U> {
    shared: &'s Shared<'s, U>,
    worker: usize,
    /// This worker's private event ring. `RefCell` because the context is
    /// shared by reference between the worker loop and the task's
    /// `run_unit`, but only ever touched from the owning worker's thread.
    trace: RefCell<TraceBuf>,
}

impl<U> WorkerCtx<'_, U> {
    /// The id of the worker this context belongs to.
    pub fn worker_id(&self) -> usize {
        self.worker
    }

    /// Is structured tracing recording on this run?
    pub fn trace_enabled(&self) -> bool {
        self.trace.borrow().enabled()
    }

    /// Open a span (reads the clock only when tracing is enabled).
    pub fn trace_start(&self) -> SpanStart {
        self.trace.borrow().start()
    }

    /// Record a span opened by [`WorkerCtx::trace_start`] into this
    /// worker's private ring. Tasks use this for their `RuleEval` (and
    /// kindred) spans; a start taken while disabled records nothing.
    pub fn trace_span(&self, kind: EventKind, id: u32, start: SpanStart, a: u64, b: u64) {
        self.trace.borrow_mut().span(kind, id, start, a, b);
    }

    /// Record an instant event into this worker's private ring.
    pub fn trace_instant(&self, kind: EventKind, id: u32, a: u64, b: u64) {
        self.trace.borrow_mut().instant(kind, id, a, b);
    }

    /// Enqueue split units carved off a straggler. They go to the front of
    /// this worker's own deque (the shared queue's front under
    /// [`DispatchMode::Coordinator`]), preserving the given order, so the
    /// remainder inherits the parent unit's priority.
    pub fn split(&self, units: Vec<U>) {
        if units.is_empty() {
            return;
        }
        self.trace_instant(EventKind::Split, 0, units.len() as u64, 0);
        self.shared
            .units_split
            .fetch_add(units.len() as u64, Ordering::Relaxed);
        // Count-first split publication (the Quiesce protocol invariant):
        // the in-flight counter rises before any unit becomes stealable.
        self.shared.quiesce.split(units.len(), || {
            match &self.shared.queues {
                Queues::Central(q) => {
                    let mut q = q.lock();
                    for u in units.into_iter().rev() {
                        q.push_front((u, 0));
                    }
                }
                Queues::Stealing(deques) => {
                    // Owner-end pushes in reverse order: the first split
                    // unit lands bottom-most, so this worker pops it
                    // next — the same front-of-deque priority the
                    // mutexed queues gave split remainders.
                    let dq = &deques[self.worker];
                    for u in units.into_iter().rev() {
                        dq.push((u, 0));
                    }
                }
            }
        });
    }
}

/// What a finished scheduler run hands back to the caller.
pub struct SchedRun<W> {
    /// Per-worker final states, in worker-id order. Complete on every
    /// outcome except [`RunOutcome::Aborted`], where the state of a
    /// worker whose thread died outside the per-unit envelope may be
    /// missing.
    pub workers: Vec<W>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Units executed (seeded + split; panicked attempts count).
    pub units_executed: u64,
    /// Units actually claimed from another worker's deque — each one a
    /// successful top CAS on the victim's Chase–Lev deque. Lost CAS
    /// races ([`Steal::Retry`]) are not counted.
    pub units_stolen: u64,
    /// Units created by splitting.
    pub units_split: u64,
    /// Unit executions that panicked (caught by the isolation envelope).
    pub units_panicked: u64,
    /// Panicked units that were requeued for another attempt.
    pub units_retried: u64,
    /// Busy (CPU) time per worker.
    pub worker_busy: Vec<Duration>,
    /// Idle (wall) time per worker.
    pub worker_idle: Vec<Duration>,
    /// The merged trace rings of every worker (empty unless
    /// [`SchedOptions::trace`] enabled recording).
    pub trace: Trace,
}

/// What a worker thread hands back at join: its final task state, busy
/// and idle time, and its trace ring — `None` when the worker itself
/// panicked outside a unit envelope.
type WorkerState<T> = Option<(<T as Task>::Worker, Duration, Duration, TraceBuf)>;

fn worker_loop<T: Task>(task: &T, shared: &Shared<'_, T::Unit>, id: usize) -> WorkerState<T> {
    let mut worker = match catch_unwind(AssertUnwindSafe(|| task.worker(id))) {
        Ok(w) => w,
        Err(payload) => {
            shared.abort(id, "<worker-init>".to_string(), payload);
            return None;
        }
    };
    let mut busy = Duration::ZERO;
    let mut idle = Duration::ZERO;
    let mut spins = 0u32;
    let ctx = WorkerCtx {
        shared,
        worker: id,
        trace: RefCell::new(TraceBuf::new(shared.opts.trace, id as u32)),
    };
    loop {
        if Quiesce::<StdAtomics>::stop_requested(shared.stop) {
            break;
        }
        if let Some(deadline) = shared.opts.deadline {
            if Instant::now() >= deadline {
                ctx.trace_instant(
                    EventKind::BudgetCut,
                    0,
                    shared.units_executed.load(Ordering::Relaxed),
                    0,
                );
                shared.cancel(RunOutcome::BudgetExceeded(Exhaustion::Deadline));
                break;
            }
        }
        if let Some(max) = shared.opts.max_units {
            if shared.units_executed.load(Ordering::Relaxed) >= max {
                ctx.trace_instant(
                    EventKind::BudgetCut,
                    0,
                    shared.units_executed.load(Ordering::Relaxed),
                    1,
                );
                shared.cancel(RunOutcome::BudgetExceeded(Exhaustion::Units));
                break;
            }
        }
        let popped = match catch_unwind(AssertUnwindSafe(|| shared.pop(id))) {
            Ok(p) => p,
            Err(payload) => {
                // A panic while acquiring a unit (e.g. an armed steal
                // failpoint) happens before any queue mutation for this
                // worker; the run aborts cleanly.
                shared.abort(id, "<dispatch>".to_string(), payload);
                break;
            }
        };
        if let Some(((unit, attempt), stolen)) = popped {
            spins = 0;
            // Trace the steal after the claim completed: recording is a
            // worker-local ring write and cannot perturb the steal count.
            if let Some(s) = stolen {
                ctx.trace_instant(EventKind::Steal, 0, s.claimed, s.victim as u64);
            }
            let retry = if attempt < shared.opts.unit_retries {
                task.clone_unit(&unit)
            } else {
                None
            };
            let label = task.describe_unit(&unit);
            let span = ctx.trace_start();
            let timer = BusyTimer::start();
            let result = catch_unwind(AssertUnwindSafe(|| {
                failpoint::maybe_panic("sched/unit");
                task.run_unit(&mut worker, unit, &ctx);
            }));
            busy += timer.elapsed();
            ctx.trace_span(EventKind::UnitExec, 0, span, attempt as u64, 0);
            shared.units_executed.fetch_add(1, Ordering::Relaxed);
            match result {
                Ok(()) => {
                    shared.quiesce.complete_one();
                }
                Err(payload) => {
                    shared.units_panicked.fetch_add(1, Ordering::Relaxed);
                    if let Some(clone) = retry {
                        // The unit stays in flight: requeue the clone at
                        // this worker's front (owner end) with its
                        // attempt count bumped.
                        shared.units_retried.fetch_add(1, Ordering::Relaxed);
                        ctx.trace_instant(EventKind::PanicRetry, 0, attempt as u64, 0);
                        match &shared.queues {
                            Queues::Central(q) => q.lock().push_front((clone, attempt + 1)),
                            Queues::Stealing(deques) => deques[id].push((clone, attempt + 1)),
                        }
                    } else {
                        shared.quiesce.complete_one();
                        shared.abort(id, label, payload);
                        break;
                    }
                }
            }
            continue;
        }
        if shared.quiesce.quiescent() {
            break;
        }
        // No runnable unit, but a straggler elsewhere may still split.
        // `on_idle` can do real work (e.g. drain a `ΔEq` inbox, cascading
        // pending rechecks), so its CPU time counts as busy; only the
        // yield/sleep wait is booked as idle.
        let timer = BusyTimer::start();
        let idled = catch_unwind(AssertUnwindSafe(|| task.on_idle(&mut worker, &ctx)));
        busy += timer.elapsed();
        if let Err(payload) = idled {
            shared.abort(id, "<on-idle>".to_string(), payload);
            break;
        }
        let idle_start = Instant::now();
        if spins < 64 {
            spins += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
        }
        idle += idle_start.elapsed();
    }
    Some((worker, busy, idle, ctx.trace.into_inner()))
}

/// Run `task` over `seed` units on `workers` threads until quiescence or
/// until `stop` is raised. Equivalent to [`run_scheduler_with`] with
/// default [`SchedOptions`] (no limits, no retries).
pub fn run_scheduler<T: Task>(
    task: &T,
    seed: Vec<T::Unit>,
    workers: usize,
    mode: DispatchMode,
    stop: &AtomicBool,
) -> SchedRun<T::Worker> {
    run_scheduler_with(task, seed, workers, mode, stop, SchedOptions::default())
}

/// Run `task` over `seed` units on `workers` threads until quiescence,
/// until `stop` is raised, or until a limit in `opts` trips.
///
/// Seed units are dealt round-robin across the per-worker deques in the
/// given order (all into one queue under [`DispatchMode::Coordinator`]),
/// so seeding in priority order keeps every deque priority-ascending.
///
/// With `workers == 1` the single worker runs inline on the calling
/// thread — the sequential algorithms are exactly this instantiation and
/// pay no thread-spawn cost.
///
/// Unit panics are isolated: see the module docs and [`RunOutcome`].
pub fn run_scheduler_with<T: Task>(
    task: &T,
    seed: Vec<T::Unit>,
    workers: usize,
    mode: DispatchMode,
    stop: &AtomicBool,
    opts: SchedOptions,
) -> SchedRun<T::Worker> {
    let p = workers.max(1);
    let in_flight = seed.len();
    let queues = match mode {
        DispatchMode::Coordinator => {
            let q: VecDeque<Envelope<T::Unit>> = seed.into_iter().map(|u| (u, 0)).collect();
            Queues::Central(Mutex::new(q))
        }
        DispatchMode::WorkStealing => {
            // Deal round-robin, then load each deque in *reverse* order:
            // the owner pops the bottom (last pushed), so pushing
            // lowest-priority first leaves the highest-priority unit
            // bottom-most — every deque pops priority-ascending, exactly
            // as the mutexed front-pop queues did. The deques are still
            // caller-owned here; workers take over ownership when the
            // threads spawn (the spawn is the happens-before edge).
            let deques: Vec<WsDeque<Envelope<T::Unit>>> = (0..p).map(|_| WsDeque::new()).collect();
            let mut dealt: Vec<Vec<Envelope<T::Unit>>> = (0..p).map(|_| Vec::new()).collect();
            for (i, unit) in seed.into_iter().enumerate() {
                dealt[i % p].push((unit, 0));
            }
            for (dq, units) in deques.iter().zip(dealt) {
                for u in units.into_iter().rev() {
                    dq.push(u);
                }
            }
            Queues::Stealing(deques)
        }
    };
    let shared = Shared {
        queues,
        quiesce: Quiesce::new(in_flight),
        stop,
        opts,
        units_executed: AtomicU64::new(0),
        units_stolen: AtomicU64::new(0),
        units_split: AtomicU64::new(0),
        units_panicked: AtomicU64::new(0),
        units_retried: AtomicU64::new(0),
        verdict: Mutex::new(None),
    };

    let mut states: Vec<WorkerState<T>> = if p == 1 {
        vec![worker_loop(task, &shared, 0)]
    } else {
        std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..p)
                .map(|id| scope.spawn(move || worker_loop(task, shared, id)))
                .collect();
            // Re-derive ids from spawn order: handles join in id order.
            handles
                .into_iter()
                .enumerate()
                .map(|(id, h)| match h.join() {
                    Ok(state) => state,
                    Err(payload) => {
                        // Should be unreachable — every panic source in
                        // the loop is wrapped — but a worker thread dying
                        // must still surface as a structured abort.
                        shared.abort(id, "<worker>".to_string(), payload);
                        None
                    }
                })
                .collect()
        })
    };

    let outcome = shared.verdict.lock().take().unwrap_or_else(|| {
        if stop.load(Ordering::SeqCst) {
            RunOutcome::Stopped
        } else {
            RunOutcome::Completed
        }
    });
    let mut run = SchedRun {
        workers: Vec::with_capacity(p),
        outcome,
        units_executed: shared.units_executed.load(Ordering::Relaxed),
        units_stolen: shared.units_stolen.load(Ordering::Relaxed),
        units_split: shared.units_split.load(Ordering::Relaxed),
        units_panicked: shared.units_panicked.load(Ordering::Relaxed),
        units_retried: shared.units_retried.load(Ordering::Relaxed),
        worker_busy: Vec::with_capacity(p),
        worker_idle: Vec::with_capacity(p),
        trace: Trace::default(),
    };
    for state in states.drain(..) {
        let Some((worker, busy, idle, tbuf)) = state else {
            continue;
        };
        run.workers.push(worker);
        run.worker_busy.push(busy);
        run.worker_idle.push(idle);
        // Drain each worker's private ring at quiescence — the only
        // moment trace data crosses a thread boundary.
        run.trace.absorb_buf(tbuf);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    /// A task that sums unit payloads per worker and splits units above a
    /// threshold into halves.
    struct SumTask {
        split_above: u64,
        executed: TestCounter,
    }

    impl Task for SumTask {
        type Unit = u64;
        type Worker = u64;

        fn worker(&self, _id: usize) -> u64 {
            0
        }

        fn run_unit(&self, acc: &mut u64, unit: u64, ctx: &WorkerCtx<'_, u64>) {
            self.executed.fetch_add(1, Ordering::Relaxed);
            if unit > self.split_above {
                let half = unit / 2;
                ctx.split(vec![half, unit - half]);
                return;
            }
            *acc += unit;
        }
    }

    fn total(seed: &[u64]) -> u64 {
        seed.iter().sum()
    }

    #[test]
    fn all_units_run_exactly_once_across_worker_counts() {
        for p in [1usize, 2, 4, 8] {
            let seed: Vec<u64> = (1..=100).collect();
            let task = SumTask {
                split_above: u64::MAX,
                executed: TestCounter::new(0),
            };
            let stop = AtomicBool::new(false);
            let run = run_scheduler(&task, seed.clone(), p, DispatchMode::WorkStealing, &stop);
            assert_eq!(run.workers.iter().sum::<u64>(), total(&seed), "p={p}");
            assert_eq!(run.units_executed, 100);
            assert_eq!(run.units_split, 0);
            assert_eq!(run.units_panicked, 0);
            assert_eq!(run.outcome, RunOutcome::Completed);
            assert_eq!(run.worker_busy.len(), p);
        }
    }

    #[test]
    fn splits_preserve_the_total() {
        for mode in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
            let seed: Vec<u64> = vec![1000, 3, 7, 2000];
            let task = SumTask {
                split_above: 10,
                executed: TestCounter::new(0),
            };
            let stop = AtomicBool::new(false);
            let run = run_scheduler(&task, seed.clone(), 3, mode, &stop);
            assert_eq!(run.workers.iter().sum::<u64>(), total(&seed), "{mode:?}");
            assert!(run.units_split > 0, "{mode:?}");
            assert_eq!(
                run.units_executed,
                seed.len() as u64 + run.units_split,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn stop_flag_halts_the_run() {
        struct StopTask;
        impl Task for StopTask {
            type Unit = usize;
            type Worker = usize;
            fn worker(&self, _id: usize) -> usize {
                0
            }
            fn run_unit(&self, done: &mut usize, _u: usize, _ctx: &WorkerCtx<'_, usize>) {
                *done += 1;
            }
        }
        let stop = AtomicBool::new(true);
        let run = run_scheduler(
            &StopTask,
            (0..1000).collect(),
            4,
            DispatchMode::WorkStealing,
            &stop,
        );
        // Pre-raised stop: nothing (or at most a unit per worker mid-pop)
        // runs.
        assert!(run.units_executed <= 4);
        assert_eq!(run.workers.len(), 4);
        assert_eq!(run.outcome, RunOutcome::Stopped);
    }

    #[test]
    fn skewed_seed_forces_steals() {
        // Worker 0's deque gets one enormous unit (simulated by splitting
        // repeatedly); the others drain fast and must steal to stay busy.
        struct SpinTask;
        impl Task for SpinTask {
            type Unit = u64;
            type Worker = u64;
            fn worker(&self, _id: usize) -> u64 {
                0
            }
            fn run_unit(&self, acc: &mut u64, unit: u64, _ctx: &WorkerCtx<'_, u64>) {
                // Heavy units spin; light units return instantly.
                let mut x = 0u64;
                for i in 0..unit * 50_000 {
                    x = x.wrapping_mul(31).wrapping_add(i);
                }
                std::hint::black_box(x);
                *acc += 1;
            }
        }
        // Round-robin over p=2: even indices (worker 0) heavy-first, odd
        // light. Worker 0 is stuck on unit 0 while its deque still holds
        // work — worker 1 finishes its own and steals.
        let mut seed = vec![0u64; 64];
        seed[0] = 200;
        let stop = AtomicBool::new(false);
        let run = run_scheduler(&SpinTask, seed, 2, DispatchMode::WorkStealing, &stop);
        assert_eq!(run.units_executed, 64);
        assert!(run.units_stolen > 0, "no steals on a skewed workload");
    }

    #[test]
    fn empty_seed_returns_immediately() {
        let task = SumTask {
            split_above: u64::MAX,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler(&task, Vec::new(), 8, DispatchMode::WorkStealing, &stop);
        assert_eq!(run.units_executed, 0);
        assert_eq!(run.workers.len(), 8);
        assert_eq!(run.outcome, RunOutcome::Completed);
    }

    #[test]
    fn coordinator_mode_uses_one_queue() {
        let seed: Vec<u64> = (1..=50).collect();
        let task = SumTask {
            split_above: u64::MAX,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler(&task, seed.clone(), 4, DispatchMode::Coordinator, &stop);
        assert_eq!(run.workers.iter().sum::<u64>(), total(&seed));
        assert_eq!(run.units_stolen, 0, "coordinator mode never steals");
    }

    /// A task whose units panic when the payload exceeds a threshold,
    /// used to pin panic isolation and the retry path.
    struct FaultyTask {
        panic_above: u64,
        /// When set, a unit only panics on its first attempt — the retry
        /// succeeds, modelling a transient fault.
        transient: bool,
        attempts: TestCounter,
    }

    impl Task for FaultyTask {
        type Unit = u64;
        type Worker = u64;

        fn worker(&self, _id: usize) -> u64 {
            0
        }

        fn run_unit(&self, acc: &mut u64, unit: u64, _ctx: &WorkerCtx<'_, u64>) {
            if unit > self.panic_above {
                let n = self.attempts.fetch_add(1, Ordering::SeqCst);
                if !self.transient || n == 0 {
                    panic!("injected unit failure (payload {unit})");
                }
            }
            *acc += unit;
        }

        fn describe_unit(&self, unit: &u64) -> String {
            format!("unit({unit})")
        }

        fn clone_unit(&self, unit: &u64) -> Option<u64> {
            Some(*unit)
        }
    }

    #[test]
    fn unit_panic_aborts_with_structured_outcome() {
        for p in [1usize, 2, 4] {
            let mut seed: Vec<u64> = vec![1; 40];
            seed[17] = 1000; // the poisoned unit
            let task = FaultyTask {
                panic_above: 100,
                transient: false,
                attempts: TestCounter::new(0),
            };
            let stop = AtomicBool::new(false);
            let run = run_scheduler(&task, seed, p, DispatchMode::WorkStealing, &stop);
            let RunOutcome::Aborted(info) = &run.outcome else {
                panic!("p={p}: expected Aborted, got {:?}", run.outcome);
            };
            assert_eq!(info.unit, "unit(1000)", "p={p}");
            assert!(info.payload.contains("injected unit failure"), "p={p}");
            assert!(info.worker < p, "p={p}");
            assert!(run.units_panicked >= 1, "p={p}");
            assert_eq!(run.units_retried, 0, "p={p}");
            assert!(stop.load(Ordering::SeqCst), "p={p}: stop flag raised");
        }
    }

    #[test]
    fn transient_panic_is_retried_and_the_run_completes() {
        let mut seed: Vec<u64> = vec![1; 20];
        seed[5] = 1000;
        let task = FaultyTask {
            panic_above: 100,
            transient: true,
            attempts: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &task,
            seed,
            2,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions {
                unit_retries: 1,
                ..Default::default()
            },
        );
        assert_eq!(run.outcome, RunOutcome::Completed);
        assert_eq!(run.units_panicked, 1);
        assert_eq!(run.units_retried, 1);
        // 19 ones + the retried 1000 all landed.
        assert_eq!(run.workers.iter().sum::<u64>(), 19 + 1000);
    }

    #[test]
    fn persistent_panic_exhausts_retries_then_aborts() {
        let seed: Vec<u64> = vec![1000];
        let task = FaultyTask {
            panic_above: 100,
            transient: false,
            attempts: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &task,
            seed,
            1,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions {
                unit_retries: 1,
                ..Default::default()
            },
        );
        assert!(run.outcome.is_aborted());
        assert_eq!(run.units_panicked, 2, "original + one retry");
        assert_eq!(run.units_retried, 1);
    }

    #[test]
    fn deadline_degrades_to_budget_exceeded() {
        struct SlowTask;
        impl Task for SlowTask {
            type Unit = u64;
            type Worker = u64;
            fn worker(&self, _id: usize) -> u64 {
                0
            }
            fn run_unit(&self, done: &mut u64, _u: u64, _ctx: &WorkerCtx<'_, u64>) {
                std::thread::sleep(Duration::from_millis(5));
                *done += 1;
            }
        }
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &SlowTask,
            (0..1000).collect(),
            2,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions {
                deadline: Some(Instant::now() + Duration::from_millis(20)),
                ..Default::default()
            },
        );
        assert_eq!(
            run.outcome,
            RunOutcome::BudgetExceeded(Exhaustion::Deadline)
        );
        assert!(run.units_executed < 1000, "deadline must cut the run short");
    }

    #[test]
    fn max_units_budget_stops_dispatch() {
        let task = SumTask {
            split_above: u64::MAX,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &task,
            (1..=100).collect(),
            1,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions {
                max_units: Some(10),
                ..Default::default()
            },
        );
        assert_eq!(run.outcome, RunOutcome::BudgetExceeded(Exhaustion::Units));
        assert_eq!(run.units_executed, 10);
    }

    #[test]
    fn tracing_records_scheduler_events_and_disabled_stays_empty() {
        let seed: Vec<u64> = vec![1000, 3, 7, 2000];
        let task = SumTask {
            split_above: 10,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &task,
            seed,
            2,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions {
                trace: TraceSpec::enabled(),
                ..Default::default()
            },
        );
        assert_eq!(run.outcome, RunOutcome::Completed);
        let execs = run
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::UnitExec)
            .count() as u64;
        assert_eq!(
            execs, run.units_executed,
            "every executed unit gets a UnitExec span"
        );
        let split_units: u64 = run
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Split)
            .map(|e| e.a)
            .sum();
        assert_eq!(
            split_units, run.units_split,
            "Split payloads sum to the counter"
        );
        let stolen_units: u64 = run
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Steal)
            .map(|e| e.a)
            .sum();
        assert_eq!(
            stolen_units, run.units_stolen,
            "Steal payloads sum to the counter"
        );

        // Disabled tracing (the default options) collects nothing.
        let task = SumTask {
            split_above: 10,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler(
            &task,
            vec![1000, 3, 7, 2000],
            2,
            DispatchMode::WorkStealing,
            &stop,
        );
        assert!(run.trace.is_empty());
    }

    #[test]
    fn tracing_records_the_retry_and_budget_cut_instants() {
        let mut seed: Vec<u64> = vec![1; 20];
        seed[5] = 1000;
        let task = FaultyTask {
            panic_above: 100,
            transient: true,
            attempts: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &task,
            seed,
            2,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions {
                unit_retries: 1,
                trace: TraceSpec::enabled(),
                ..Default::default()
            },
        );
        assert_eq!(run.outcome, RunOutcome::Completed);
        let retries = run
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::PanicRetry)
            .count() as u64;
        assert_eq!(retries, run.units_retried);

        let task = SumTask {
            split_above: u64::MAX,
            executed: TestCounter::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &task,
            (1..=100).collect(),
            1,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions {
                max_units: Some(10),
                trace: TraceSpec::enabled(),
                ..Default::default()
            },
        );
        assert_eq!(run.outcome, RunOutcome::BudgetExceeded(Exhaustion::Units));
        assert!(
            run.trace
                .events
                .iter()
                .any(|e| e.kind == EventKind::BudgetCut && e.b == 1),
            "the max-units cut must leave a BudgetCut instant"
        );
    }

    #[test]
    fn abort_info_displays_defaults() {
        let info = AbortInfo {
            worker: 3,
            unit: String::new(),
            payload: "boom".into(),
        };
        assert_eq!(info.to_string(), "worker 3 panicked in unit: boom");
    }
}
