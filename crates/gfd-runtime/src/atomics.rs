//! The virtual-atomics family the lock-free runtime core is generic
//! over (DESIGN.md §14).
//!
//! The Chase–Lev deque ([`crate::deque`]) and the quiescence protocol
//! ([`crate::quiesce`]) do not name `std::sync::atomic` types directly;
//! they are generic over an [`Atomics`] family. Production code
//! instantiates [`StdAtomics`], whose associated types *are* the std
//! atomics and whose hook methods are inlined constants — the
//! monomorphized code is bit-for-bit the hand-written original (the
//! `micro_structures` bench asserts this stays true). The `gfd-model`
//! crate provides a second family that routes every load, store, CAS,
//! fence and raw slot access through a controlled interleaving VM with
//! a happens-before race detector, turning the same source code into a
//! model-checkable program.
//!
//! Two hooks exist purely so the model build can *weaken* the
//! implementation on purpose and prove the checker catches the bug:
//! [`Atomics::weakened`] downgrades a named ordering site (e.g. the
//! deque push's release publish) or reorders a named protocol step. For
//! [`StdAtomics`] it is a `const`-foldable `false`, so production pays
//! nothing and cannot be weakened.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

/// Named weakening knobs for the model build (DESIGN.md §14.5).
///
/// Each variant names one ordering or protocol decision the correctness
/// argument leans on. The model checker runs every checked scenario once
/// with no site weakened (expecting zero findings) and once per
/// deliberately weakened site (expecting a counterexample schedule) —
/// proving both that the code is right and that the checker has teeth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Weaken {
    /// Downgrade the deque push's release store of `bottom` (the store
    /// that publishes the slot write to thieves) to `Relaxed`.
    DequePushPublish,
    /// Downgrade the deque grow's release store of the buffer pointer
    /// (the store that publishes the copied slots) to `Relaxed`.
    DequeBufPublish,
    /// Reorder the quiescence split protocol: push the split units
    /// *before* raising the in-flight counter, so the counter can hit
    /// zero while split work is still queued.
    QuiesceSplitPublish,
}

/// Integer atomics (`isize`/`usize` instantiations are used).
pub trait AtomicInt<V: Copy>: Send + Sync {
    /// A fresh atomic holding `v`.
    fn new(v: V) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> V;
    /// Atomic store.
    fn store(&self, v: V, order: Ordering);
    /// Compare-and-exchange; `Ok(previous)` on success.
    fn compare_exchange(
        &self,
        current: V,
        new: V,
        success: Ordering,
        failure: Ordering,
    ) -> Result<V, V>;
    /// Atomic add, returning the previous value.
    fn fetch_add(&self, v: V, order: Ordering) -> V;
    /// Atomic subtract, returning the previous value.
    fn fetch_sub(&self, v: V, order: Ordering) -> V;
    /// Non-atomic load through exclusive access (drop paths).
    fn unsync_load(&mut self) -> V;
}

/// Boolean flag atomics (the scheduler's stop flag).
pub trait AtomicFlag: Send + Sync {
    /// A fresh flag holding `v`.
    fn new(v: bool) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store.
    fn store(&self, v: bool, order: Ordering);
}

/// Pointer atomics (the deque's buffer pointer).
pub trait AtomicPtrCell<P>: Send + Sync {
    /// A fresh cell holding `p`.
    fn new(p: *mut P) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> *mut P;
    /// Atomic store.
    fn store(&self, p: *mut P, order: Ordering);
    /// Non-atomic load through exclusive access (drop paths).
    fn unsync_load(&mut self) -> *mut P;
}

/// A non-atomic data slot holding a possibly-uninitialized `V` — the
/// deque's buffer element.
///
/// Reads and writes are raw bit copies, exactly like
/// `UnsafeCell<MaybeUninit<V>>`; the model family additionally tracks a
/// shadow state per slot (initialized-ness, last-writer epoch, reader
/// epochs) and reports happens-before violations. The *speculative*
/// read is the Chase–Lev thief's pre-CAS read: it may legitimately race
/// with a push recycling the slot, and the racing copy is discarded
/// when the CAS fails. The split into `read_speculative` +
/// [`DataSlot::confirm`] lets the model defer the race verdict to the
/// CAS outcome: a lost CAS excuses the race (the value was never used),
/// a won CAS demands the read have been properly ordered.
pub trait DataSlot<V>: Sized {
    /// The deferred-verdict token a speculative read returns.
    type Guard;

    /// A fresh, uninitialized slot.
    fn vacant() -> Self;

    /// Bitwise read of an initialized slot.
    ///
    /// # Safety
    /// The slot must have been written, the caller must hold a claim on
    /// the element, and the returned bit copy must be the element's only
    /// live owner (or be `mem::forget`-ten).
    unsafe fn read(&self) -> V;

    /// Bitwise write.
    ///
    /// # Safety
    /// The caller must have exclusive write access to the slot; any
    /// previous content is overwritten without being dropped.
    unsafe fn write(&self, value: V);

    /// Bitwise read that may race with a writer recycling the slot. The
    /// value must only be assumed initialized after the claim that
    /// validates it succeeds — then the caller passes the guard to
    /// [`DataSlot::confirm`]; on a failed claim, to
    /// [`DataSlot::discard`].
    ///
    /// # Safety
    /// The caller must treat the returned bits as untrusted until the
    /// validating claim (the thief's `top` CAS) succeeds.
    unsafe fn read_speculative(&self) -> (MaybeUninit<V>, Self::Guard);

    /// The validating claim succeeded: the speculative read observed a
    /// stable, initialized slot. The model family reports a race or an
    /// uninitialized read here if the read was not properly ordered.
    fn confirm(guard: Self::Guard);

    /// The validating claim failed: the speculatively read bits were
    /// discarded unused, so whatever the read raced with is excused.
    fn discard(guard: Self::Guard);
}

/// An atomics family: the complete set of synchronization primitives
/// the lock-free runtime core uses.
pub trait Atomics: Sized + 'static {
    /// `isize` atomics (deque `bottom`/`top`).
    type Isize: AtomicInt<isize>;
    /// `usize` atomics (quiescence in-flight counter).
    type Usize: AtomicInt<usize>;
    /// Boolean flag (stop/cancellation).
    type Bool: AtomicFlag;
    /// Pointer cell (deque buffer pointer).
    type Ptr<P>: AtomicPtrCell<P>;
    /// Raw data slot (deque buffer element).
    type Slot<V>: DataSlot<V>;

    /// An atomic fence.
    fn fence(order: Ordering);

    /// Is the named site deliberately weakened? Always `false` for
    /// production families; the model family consults its run
    /// configuration. Call sites use this to downgrade an ordering or
    /// reorder a protocol step *only* under the model.
    #[inline(always)]
    fn weakened(_site: Weaken) -> bool {
        false
    }
}

/// The production family: `std::sync::atomic` everything, raw
/// `UnsafeCell` slots, no weakening. Monomorphizing the runtime core
/// over this family yields exactly the hand-written code.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdAtomics;

macro_rules! std_atomic_int {
    ($v:ty, $a:ty) => {
        impl AtomicInt<$v> for $a {
            #[inline(always)]
            fn new(v: $v) -> Self {
                <$a>::new(v)
            }
            #[inline(always)]
            fn load(&self, order: Ordering) -> $v {
                <$a>::load(self, order)
            }
            #[inline(always)]
            fn store(&self, v: $v, order: Ordering) {
                <$a>::store(self, v, order)
            }
            #[inline(always)]
            fn compare_exchange(
                &self,
                current: $v,
                new: $v,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$v, $v> {
                <$a>::compare_exchange(self, current, new, success, failure)
            }
            #[inline(always)]
            fn fetch_add(&self, v: $v, order: Ordering) -> $v {
                <$a>::fetch_add(self, v, order)
            }
            #[inline(always)]
            fn fetch_sub(&self, v: $v, order: Ordering) -> $v {
                <$a>::fetch_sub(self, v, order)
            }
            #[inline(always)]
            fn unsync_load(&mut self) -> $v {
                *<$a>::get_mut(self)
            }
        }
    };
}

std_atomic_int!(isize, std::sync::atomic::AtomicIsize);
std_atomic_int!(usize, std::sync::atomic::AtomicUsize);

impl AtomicFlag for std::sync::atomic::AtomicBool {
    #[inline(always)]
    fn new(v: bool) -> Self {
        std::sync::atomic::AtomicBool::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> bool {
        std::sync::atomic::AtomicBool::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: bool, order: Ordering) {
        std::sync::atomic::AtomicBool::store(self, v, order)
    }
}

impl<P> AtomicPtrCell<P> for std::sync::atomic::AtomicPtr<P> {
    #[inline(always)]
    fn new(p: *mut P) -> Self {
        std::sync::atomic::AtomicPtr::new(p)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> *mut P {
        std::sync::atomic::AtomicPtr::load(self, order)
    }
    #[inline(always)]
    fn store(&self, p: *mut P, order: Ordering) {
        std::sync::atomic::AtomicPtr::store(self, p, order)
    }
    #[inline(always)]
    fn unsync_load(&mut self) -> *mut P {
        *std::sync::atomic::AtomicPtr::get_mut(self)
    }
}

/// The production slot: a raw `UnsafeCell<MaybeUninit<V>>` with no
/// shadow state. The speculative-read guard is `()` and the
/// confirm/discard hooks vanish under inlining.
pub struct RawSlot<V>(UnsafeCell<MaybeUninit<V>>);

impl<V> DataSlot<V> for RawSlot<V> {
    type Guard = ();

    #[inline(always)]
    fn vacant() -> Self {
        RawSlot(UnsafeCell::new(MaybeUninit::uninit()))
    }

    #[inline(always)]
    unsafe fn read(&self) -> V {
        // SAFETY: the caller guarantees the slot is initialized and
        // claimed (trait contract).
        unsafe { (*self.0.get()).assume_init_read() }
    }

    #[inline(always)]
    unsafe fn write(&self, value: V) {
        // SAFETY: the caller guarantees exclusive write access (trait
        // contract); writing a `MaybeUninit` never drops old content.
        unsafe { (*self.0.get()).write(value) };
    }

    #[inline(always)]
    unsafe fn read_speculative(&self) -> (MaybeUninit<V>, ()) {
        // SAFETY: a bit copy into `MaybeUninit` is defined even if the
        // bytes are concurrently rewritten or uninitialized; the caller
        // only materializes `V` after the validating CAS (trait
        // contract).
        (unsafe { std::ptr::read(self.0.get()) }, ())
    }

    #[inline(always)]
    fn confirm(_guard: ()) {}

    #[inline(always)]
    fn discard(_guard: ()) {}
}

impl Atomics for StdAtomics {
    type Isize = std::sync::atomic::AtomicIsize;
    type Usize = std::sync::atomic::AtomicUsize;
    type Bool = std::sync::atomic::AtomicBool;
    type Ptr<P> = std::sync::atomic::AtomicPtr<P>;
    type Slot<V> = RawSlot<V>;

    #[inline(always)]
    fn fence(order: Ordering) {
        std::sync::atomic::fence(order)
    }
}
