//! Deterministic failpoint injection (DESIGN.md §11.3).
//!
//! A *failpoint* is a named site in the runtime where a fault can be
//! injected on demand: the scheduler's dispatch and steal paths, the
//! chase's serial apply phase, the delta-log parser, the incremental
//! detector's compaction step. Production code calls [`triggered`] (or
//! [`maybe_panic`]) at each site; with no failpoints armed this is a
//! single relaxed atomic load — effectively free — so the sites stay in
//! release builds and the fault-injection suite exercises the exact
//! binary users run.
//!
//! Arming is either programmatic ([`arm`], used by `tests/fault_injection.rs`)
//! or via the `GFD_FAILPOINTS` environment variable, read once on first
//! use:
//!
//! ```text
//! GFD_FAILPOINTS="sched/unit=3,io/deltalog=1"        # fire on the Nth hit
//! GFD_FAILPOINTS="sched/steal=~8:42"                  # seeded: each hit fires
//!                                                     # with prob 1/8 (LCG seed 42)
//! ```
//!
//! Each site decides what "firing" means: the scheduler panics (to prove
//! panic isolation), parsers return their structured error type, the
//! compactor defers work to the next batch. A failpoint never changes
//! what a run *computes* — only whether it completes, degrades, or
//! retries — which is exactly the property the fault-injection suite
//! pins.
//!
//! The registry is global, so tests that arm failpoints must serialize
//! (see the `serial` guard in `tests/fault_injection.rs`) and call
//! [`disarm_all`] when done.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// When an armed site fires.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Trigger {
    /// Fire exactly once, on the `n`-th hit (1-based).
    OnHit(u64),
    /// Fire on each hit with probability `1/denom`, driven by a seeded
    /// LCG — deterministic for a given seed, "random" across sites.
    Seeded {
        /// Inverse firing probability.
        denom: u64,
        /// Current LCG state.
        state: u64,
    },
}

struct Site {
    trigger: Trigger,
    hits: u64,
    fired: u64,
}

/// Fast-path gate: false ⇒ no site is armed and [`triggered`] returns
/// immediately.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let map = Mutex::new(HashMap::new());
        if let Ok(spec) = std::env::var("GFD_FAILPOINTS") {
            if let Err(e) = arm_into(&map, &spec) {
                // Env arming has no caller to return an error to; a bad
                // spec must not silently disable injection.
                panic!("invalid GFD_FAILPOINTS: {e}");
            }
        }
        map
    })
}

fn parse_entry(entry: &str) -> Result<(String, Trigger), String> {
    let (site, spec) = entry
        .split_once('=')
        .ok_or_else(|| format!("`{entry}`: expected SITE=SPEC"))?;
    let site = site.trim();
    let spec = spec.trim();
    if site.is_empty() {
        return Err(format!("`{entry}`: empty site name"));
    }
    let trigger = if let Some(rest) = spec.strip_prefix('~') {
        let (denom, seed) = rest
            .split_once(':')
            .ok_or_else(|| format!("`{entry}`: seeded spec is ~DENOM:SEED"))?;
        let denom: u64 = denom
            .parse()
            .map_err(|_| format!("`{entry}`: bad denominator `{denom}`"))?;
        if denom == 0 {
            return Err(format!("`{entry}`: denominator must be positive"));
        }
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("`{entry}`: bad seed `{seed}`"))?;
        Trigger::Seeded { denom, state: seed }
    } else {
        let n: u64 = spec
            .parse()
            .map_err(|_| format!("`{entry}`: bad hit count `{spec}`"))?;
        if n == 0 {
            return Err(format!("`{entry}`: hit count is 1-based"));
        }
        Trigger::OnHit(n)
    };
    Ok((site.to_string(), trigger))
}

fn arm_into(map: &Mutex<HashMap<String, Site>>, spec: &str) -> Result<(), String> {
    let mut guard = map.lock();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, trigger) = parse_entry(entry)?;
        guard.insert(
            site,
            Site {
                trigger,
                hits: 0,
                fired: 0,
            },
        );
    }
    if !guard.is_empty() {
        ARMED.store(true, Ordering::Release);
    }
    Ok(())
}

/// Arm failpoints from a spec string (same grammar as `GFD_FAILPOINTS`).
/// Entries add to — and override — whatever is already armed.
pub fn arm(spec: &str) -> Result<(), String> {
    arm_into(registry(), spec)
}

/// Disarm every failpoint and reset hit counters. Restores the zero-cost
/// fast path.
pub fn disarm_all() {
    let reg = registry();
    let mut guard = reg.lock();
    guard.clear();
    ARMED.store(false, Ordering::Release);
}

/// Number of times the named site has actually fired (for test
/// assertions); 0 when the site is not armed.
pub fn fired(site: &str) -> u64 {
    registry().lock().get(site).map_or(0, |s| s.fired)
}

/// Record a hit on `site` and report whether the armed trigger fires.
///
/// Always false when nothing is armed (one completed-`Once` check plus
/// one relaxed atomic load). The caller decides the failure semantics:
/// panic, structured error, or deferred work.
#[inline]
pub fn triggered(site: &str) -> bool {
    // Env arming must happen before the `ARMED` fast path is trusted:
    // the registry is initialized lazily, but a process that only ever
    // calls `triggered` (the production binary under `GFD_FAILPOINTS`)
    // would otherwise never reach the initializer that reads the env.
    static ENV_CHECKED: std::sync::Once = std::sync::Once::new();
    ENV_CHECKED.call_once(|| {
        if std::env::var_os("GFD_FAILPOINTS").is_some() {
            let _ = registry();
        }
    });
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    triggered_slow(site)
}

#[cold]
fn triggered_slow(site: &str) -> bool {
    let reg = registry();
    let mut guard = reg.lock();
    let Some(s) = guard.get_mut(site) else {
        return false;
    };
    s.hits += 1;
    let fire = match &mut s.trigger {
        Trigger::OnHit(n) => s.hits == *n,
        Trigger::Seeded { denom, state } => {
            // Numerical Recipes LCG: full-period, deterministic per seed.
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*state >> 33) % *denom == 0
        }
    };
    if fire {
        s.fired += 1;
    }
    fire
}

/// Panic with a recognizable payload when the armed trigger for `site`
/// fires. The scheduler sites use this inside their `catch_unwind`
/// envelope, so a firing failpoint surfaces as a structured
/// `RunOutcome::Aborted`, never a process abort.
#[inline]
pub fn maybe_panic(site: &str) {
    if triggered(site) {
        panic!("failpoint {site} fired");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; these tests must not interleave.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disarmed_sites_never_fire() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        for _ in 0..100 {
            assert!(!triggered("nothing/here"));
        }
    }

    #[test]
    fn fires_on_the_nth_hit_exactly_once() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("t/site=3").unwrap();
        assert!(!triggered("t/site"));
        assert!(!triggered("t/site"));
        assert!(triggered("t/site"));
        assert!(!triggered("t/site"));
        assert_eq!(fired("t/site"), 1);
        // Other sites are unaffected.
        assert!(!triggered("t/other"));
        disarm_all();
    }

    #[test]
    fn seeded_trigger_is_deterministic() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("t/seeded=~4:99").unwrap();
        let a: Vec<bool> = (0..64).map(|_| triggered("t/seeded")).collect();
        disarm_all();
        arm("t/seeded=~4:99").unwrap();
        let b: Vec<bool> = (0..64).map(|_| triggered("t/seeded")).collect();
        assert_eq!(a, b, "same seed ⇒ same firing sequence");
        assert!(a.iter().any(|&x| x), "1/4 over 64 hits should fire");
        assert!(!a.iter().all(|&x| x));
        disarm_all();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        for bad in ["nosep", "x=0", "x=abc", "=3", "x=~0:1", "x=~2", "x=~a:b"] {
            assert!(arm(bad).is_err(), "{bad}");
        }
        // A rejected spec arms nothing.
        assert!(!triggered("x"));
    }

    #[test]
    fn maybe_panic_panics_with_site_name() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("t/panic=1").unwrap();
        let r = std::panic::catch_unwind(|| maybe_panic("t/panic"));
        disarm_all();
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("t/panic"), "{msg}");
    }
}
