//! Per-thread CPU time, used for worker busy accounting.
//!
//! The paper ran on a 20-machine cluster; this reproduction runs workers
//! as threads, possibly on fewer cores than workers (CI containers often
//! expose a single core). Wall-clock per-worker "busy" time would then be
//! inflated by time-sharing, making scalability unobservable. Per-thread
//! *CPU* time is immune to this: `max` over workers approximates the
//! makespan the run would have on `p` dedicated processors — the quantity
//! Fig. 6(a)–(d) plot.

use std::time::Duration;

/// Cumulative on-CPU time of the calling thread.
///
/// Unix: `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` — precise and updated
/// continuously (unlike `/proc/.../schedstat`, which only refreshes on
/// scheduler ticks). Returns `None` where unavailable; callers then use
/// wall time.
#[cfg(unix)]
pub fn thread_cpu_time() -> Option<Duration> {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer; the clock id is a constant.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return None;
    }
    Some(Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32))
}

/// Non-Unix fallback: unavailable.
#[cfg(not(unix))]
pub fn thread_cpu_time() -> Option<Duration> {
    None
}

/// A stopwatch measuring thread CPU time, falling back to wall time.
pub struct BusyTimer {
    cpu_start: Option<Duration>,
    wall_start: std::time::Instant,
}

impl BusyTimer {
    /// Start timing on the current thread.
    pub fn start() -> Self {
        BusyTimer {
            cpu_start: thread_cpu_time(),
            wall_start: std::time::Instant::now(),
        }
    }

    /// Elapsed busy time: CPU time when measurable, else wall time.
    pub fn elapsed(&self) -> Duration {
        match (self.cpu_start, thread_cpu_time()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => self.wall_start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotone_under_work() {
        let timer = BusyTimer::start();
        // Spin a little to accrue CPU time.
        let mut acc = 0u64;
        for i in 0..3_000_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let busy = timer.elapsed();
        assert!(busy > Duration::ZERO);
    }

    #[test]
    fn sleeping_accrues_little_cpu_time() {
        // Only meaningful when schedstat is available.
        if thread_cpu_time().is_none() {
            return;
        }
        let timer = BusyTimer::start();
        std::thread::sleep(Duration::from_millis(50));
        let busy = timer.elapsed();
        assert!(
            busy < Duration::from_millis(40),
            "sleep counted as busy: {busy:?}"
        );
    }
}
