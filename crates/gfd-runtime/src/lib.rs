//! The work-stealing scheduler every GFD reasoning workload runs on.
//!
//! The paper's §V workload model — pivoted work units `(Q[z], ϕ)`, dynamic
//! assignment, TTL straggler splitting, early termination — is shared by
//! satisfiability checking, implication checking, and violation detection.
//! This crate provides the one runtime all three instantiate:
//!
//! * a generic [`Task`] trait: a workload describes how to create per-worker
//!   state and how to execute one unit; the scheduler owns dispatch;
//! * per-worker **lock-free Chase–Lev deques** with work stealing
//!   ([`DispatchMode::WorkStealing`], the default): a worker pops its own
//!   deque from the front without ever taking a lock, steals the back half
//!   of a victim's deque when idle (one top-CAS per claimed unit), and
//!   pushes split units to its own front so straggler remainders inherit
//!   their parent's priority and cache locality;
//! * a **coordinator** baseline ([`DispatchMode::Coordinator`]): one shared
//!   queue all workers pop from, the centralized-dispatch shape the
//!   original runtime used (kept for the head-to-head benches);
//! * quiescence detection via an in-flight unit counter, a shared stop flag
//!   for early termination, and per-worker busy (thread CPU time) and idle
//!   accounting;
//! * the unified [`RunMetrics`] every layer reports.
//!
//! The crate is deliberately workload-agnostic: it knows nothing about
//! graphs, GFDs, or `ΔEq` broadcast. Those live in the [`Task`]
//! implementations (`gfd_core::driver::ReasonTask`, `gfd_detect`'s
//! `DetectTask`, `gfd_ged`'s branch-and-bound `GedTask`, and
//! `gfd_chase`'s per-round premise scan). Branch-and-bound workloads use
//! the same two primitives every other task does: the shared stop flag
//! doubles as first-witness / first-counterexample cancellation, and
//! [`WorkerCtx::split`] hands open branches to idle thieves.

#![warn(missing_docs)]

pub mod atomics;
pub mod cputime;
pub mod deque;
pub mod failpoint;
pub mod metrics;
pub mod quiesce;
pub mod sched;

pub use metrics::RunMetrics;
pub use sched::{
    run_scheduler, run_scheduler_with, AbortInfo, DispatchMode, Exhaustion, RunOutcome,
    SchedOptions, SchedRun, Task, WorkerCtx,
};
// The tracing vocabulary tasks record with (`WorkerCtx::trace_span` et
// al.) and the spec/trace types the configs and metrics carry.
pub use gfd_trace::{EventKind, SpanStart, Trace, TraceBuf, TraceSpec, CONTROL_WORKER};
