//! A hand-rolled Chase–Lev work-stealing deque (DESIGN.md §12.3).
//!
//! One [`WsDeque`] per worker replaces the former `Mutex<VecDeque>`:
//! the owner pushes and pops at the **bottom** with plain loads and one
//! release store; thieves race a single compare-exchange on the **top**.
//! The scheduler hot path — a worker draining its own deque — therefore
//! runs without ever touching a lock, and a steal costs one CAS instead
//! of two mutex acquisitions (victim + thief).
//!
//! The implementation follows the C11 formulation of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP '13), with Rust's memory model standing in for C11's:
//!
//! * `bottom` is owner-private for writes; thieves only read it. The
//!   owner's `push` publishes the slot write with a **release** store of
//!   `bottom`, which a thief's **acquire** load synchronizes with — the
//!   thief never reads an unwritten slot.
//! * `top` only ever increases, and only via compare-exchange (thieves)
//!   or, in `pop`'s last-element race, by the owner winning that same
//!   CAS. A successful **SeqCst** CAS on `top` is the linearization
//!   point of a steal: it transfers ownership of exactly one element.
//! * The owner's `pop` decrements `bottom` and then issues a **SeqCst**
//!   fence before reading `top`; a thief issues the matching SeqCst
//!   ordering via its `top` CAS. This pairing makes it impossible for
//!   an owner-pop and a thief-steal to both claim the final element:
//!   at least one of them observes the other's write and backs off.
//! * Buffer growth is owner-only. The owner copies live elements into a
//!   buffer twice the size and publishes it with a **release** store of
//!   the buffer pointer; thieves re-acquire the pointer on every probe.
//!   Retired buffers are *not* freed until the deque is dropped — a
//!   thief may still be reading a slot of an old buffer — so memory
//!   reclamation needs no epoch scheme; the peak waste is bounded by
//!   2x the high-water mark (a geometric series of retired capacities).
//! * A thief reads the element *before* its CAS, so the read can race
//!   with nothing that matters: slots are only rewritten by `push`, and
//!   `push` only reuses a slot index after `top` has advanced past it —
//!   which fails the thief's CAS, discarding the (possibly stale) value
//!   without dropping it. The value is only *used* when the CAS
//!   succeeds, which proves the slot was stable over the read.
//!
//! Elements are stored as `MaybeUninit` bit copies; exactly one side
//! ever materializes (and eventually drops) each element, so the grow
//! path's duplicate bit copies are never double-dropped.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The victim's deque was observed empty.
    Empty,
    /// Lost a race (another thief, or the owner popping the last
    /// element); the caller may retry or move to the next victim.
    Retry,
    /// One element, taken from the top (the owner's lowest-priority
    /// end).
    Success(T),
}

/// A growable circular buffer. Slot `i` lives at index `i & mask`; the
/// live window is `[top, bottom)`, at most `cap` elements wide.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Buffer {
            slots,
            mask: cap - 1,
        })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    /// Bitwise-read slot `i`. Safety: the caller must hold a claim on
    /// the element (owner within `[top, bottom)`, or a thief whose
    /// subsequent `top` CAS validates the read).
    unsafe fn read(&self, i: isize) -> T {
        let slot = self.slots[(i as usize) & self.mask].get();
        (*slot).assume_init_read()
    }

    /// Bitwise-write slot `i`. Safety: owner-only, and `i` must be
    /// outside every thief-visible live window (`i == bottom`).
    unsafe fn write(&self, i: isize, value: T) {
        let slot = self.slots[(i as usize) & self.mask].get();
        (*slot).write(value);
    }
}

/// The Chase–Lev deque. Owner calls [`push`](WsDeque::push) /
/// [`pop`](WsDeque::pop); any thread may call [`steal`](WsDeque::steal).
///
/// The type does not *statically* enforce the single-owner protocol
/// (the scheduler indexes deques by worker id, so the discipline is
/// structural there); the owner-end methods are therefore `unsafe`-free
/// but documented owner-only, and the debug build asserts nothing about
/// cross-thread misuse beyond what the algorithm tolerates.
pub struct WsDeque<T> {
    /// Owner end. Written only by the owner; read by thieves.
    bottom: AtomicIsize,
    /// Thief end. Advanced by successful steals (and the owner's
    /// last-element CAS in `pop`); never decreases.
    top: AtomicIsize,
    buf: AtomicPtr<Buffer<T>>,
    /// Buffers retired by `grow`, freed on drop (see module docs). The
    /// boxes must not be flattened into the `Vec`: a racing thief may
    /// still read through a stale `buf` pointer, so a retired buffer
    /// has to keep its heap address until the deque itself drops.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer<T>>>>,
}

// SAFETY: the deque hands each element to exactly one thread (owner pop
// or CAS-validated steal); `T: Send` is all that transfer needs.
unsafe impl<T: Send> Send for WsDeque<T> {}
unsafe impl<T: Send> Sync for WsDeque<T> {}

impl<T> Default for WsDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WsDeque<T> {
    /// An empty deque with a small initial capacity.
    pub fn new() -> Self {
        WsDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buf: AtomicPtr::new(Box::into_raw(Buffer::new(64))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// A racy size estimate: exact when called by the owner with no
    /// concurrent steal, a lower bound otherwise. Used to size steal
    /// batches — a stale answer only makes a thief take a slightly
    /// wrong half, never break correctness.
    pub fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Owner-only: push `value` at the bottom.
    pub fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buf.load(Ordering::Relaxed);
        // SAFETY: `buf` is only replaced by the owner (us), so the
        // pointer is the current buffer and stays valid.
        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, value);
        }
        // Release: a thief that acquires the new `bottom` sees the slot
        // write above.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pop from the bottom (the most recently pushed / the
    /// highest-priority end under the scheduler's reverse-seeding).
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buf.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // SeqCst: order the `bottom` decrement before the `top` read
        // below, against every thief's SeqCst CAS. Without this a pop
        // and a steal could both claim the last element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: `[t, b]` is non-empty here, so slot `b` was written by
        // a prior push and no thief can claim it without first claiming
        // everything below index b (thieves take from the top).
        let value = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: race the thieves for it. Winning the CAS
            // claims the element; losing means a thief took it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if won {
                return Some(value);
            }
            // A thief owns it now; forget our bit copy without dropping.
            std::mem::forget(value);
            return None;
        }
        Some(value)
    }

    /// Steal one element from the top (the owner's lowest-priority
    /// end). Callable from any thread.
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // SeqCst: order the `top` read before the `bottom` read against
        // the owner-pop's fence (see `pop`).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Re-acquire the buffer pointer *after* reading `top`: a grow
        // publishes the new buffer before any push that could recycle
        // old slot indices, so the buffer we read covers index `t`.
        let buf = self.buf.load(Ordering::Acquire);
        // SAFETY: speculative bit copy; only *used* if the CAS below
        // succeeds, which proves no push recycled the slot and no other
        // claimant took index `t` (see module docs).
        let value = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Lost the race; the bit copy is stale — discard undropped.
            std::mem::forget(value);
            return Steal::Retry;
        }
        Steal::Success(value)
    }

    /// Owner-only, cold: replace the buffer with one twice the size,
    /// copying the live window `[t, b)`. Returns the new buffer.
    ///
    /// The old buffer is retired, not freed: a thief may hold its
    /// pointer mid-read. Duplicate bit copies left in the old buffer
    /// are never dropped (slots are `MaybeUninit`), so each element
    /// still has exactly one eventual owner.
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Buffer::new(((*old).cap() * 2).max(64));
        for i in t..b {
            new.write(i, (*old).read(i));
        }
        let new = Box::into_raw(new);
        // Release: thieves acquiring the pointer see the copied slots.
        self.buf.store(new, Ordering::Release);
        self.retired.lock().push(Box::from_raw(old));
        new
    }
}

impl<T> Drop for WsDeque<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the live window, then free buffers.
        let b = *self.bottom.get_mut();
        let t = *self.top.get_mut();
        let buf = *self.buf.get_mut();
        unsafe {
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
        }
        self.retired.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn owner_lifo_order() {
        let d = WsDeque::new();
        for i in 0..10 {
            d.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_takes_fifo_from_the_top() {
        let d = WsDeque::new();
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Success(0));
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = WsDeque::new();
        for i in 0..1000 {
            d.push(i);
        }
        assert_eq!(d.len_hint(), 1000);
        for i in (0..1000).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn drop_releases_undrained_elements() {
        // Arc counts prove each element is dropped exactly once.
        let marker = Arc::new(());
        let d = WsDeque::new();
        for _ in 0..100 {
            d.push(Arc::clone(&marker));
        }
        let _ = d.pop();
        let _ = d.steal();
        drop(d);
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn concurrent_steal_storm_loses_nothing() {
        // 1 owner pushing/popping, 7 thieves hammering steal: every
        // element is claimed exactly once and the claimed sum matches.
        const N: usize = 20_000;
        const THIEVES: usize = 7;
        let d = Arc::new(WsDeque::new());
        let taken = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Success(v) => {
                        taken.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }

        let mut owner_taken = 0usize;
        let mut owner_sum = 0usize;
        for i in 0..N {
            d.push(i + 1);
            // Interleave pops to exercise the last-element race.
            if i % 3 == 0 {
                if let Some(v) = d.pop() {
                    owner_taken += 1;
                    owner_sum += v;
                }
            }
        }
        while let Some(v) = d.pop() {
            owner_taken += 1;
            owner_sum += v;
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        // Late steals may still drain after the owner saw empty.
        while let Steal::Success(v) = d.steal() {
            owner_taken += 1;
            owner_sum += v;
        }
        assert_eq!(owner_taken + taken.load(Ordering::Relaxed), N);
        assert_eq!(owner_sum + sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    }

    #[test]
    fn concurrent_growth_under_steals() {
        // Push far past capacity while thieves steal, forcing grows
        // with live readers on retired buffers.
        const N: usize = 50_000;
        let d = Arc::new(WsDeque::new());
        let taken = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Success(_) => {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                }
            }));
        }
        for i in 0..N {
            d.push(i);
        }
        let mut owner = 0usize;
        while d.pop().is_some() {
            owner += 1;
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        while let Steal::Success(_) = d.steal() {
            owner += 1;
        }
        assert_eq!(owner + taken.load(Ordering::Relaxed), N);
    }
}
