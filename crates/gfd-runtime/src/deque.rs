//! A hand-rolled Chase–Lev work-stealing deque (DESIGN.md §12.3),
//! generic over the [`Atomics`] family (DESIGN.md §14) so the same
//! source is both the production structure and a model-checkable
//! program.
//!
//! One [`WsDeque`] per worker replaces the former `Mutex<VecDeque>`:
//! the owner pushes and pops at the **bottom** with plain loads and one
//! release store; thieves race a single compare-exchange on the **top**.
//! The scheduler hot path — a worker draining its own deque — therefore
//! runs without ever touching a lock, and a steal costs one CAS instead
//! of two mutex acquisitions (victim + thief).
//!
//! The implementation follows the C11 formulation of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP '13), with Rust's memory model standing in for C11's:
//!
//! * `bottom` is owner-private for writes; thieves only read it. The
//!   owner's `push` publishes the slot write with a **release** store of
//!   `bottom`, which a thief's **acquire** load synchronizes with — the
//!   thief never reads an unwritten slot.
//! * `top` only ever increases, and only via compare-exchange (thieves)
//!   or, in `pop`'s last-element race, by the owner winning that same
//!   CAS. A successful **SeqCst** CAS on `top` is the linearization
//!   point of a steal: it transfers ownership of exactly one element.
//! * The owner's `pop` decrements `bottom` and then issues a **SeqCst**
//!   fence before reading `top`; a thief issues the matching SeqCst
//!   ordering via its `top` CAS. This pairing makes it impossible for
//!   an owner-pop and a thief-steal to both claim the final element:
//!   at least one of them observes the other's write and backs off.
//! * Buffer growth is owner-only. The owner copies live elements into a
//!   buffer twice the size and publishes it with a **release** store of
//!   the buffer pointer; thieves re-acquire the pointer on every probe.
//!   Retired buffers are *not* freed until the deque is dropped — a
//!   thief may still be reading a slot of an old buffer — so memory
//!   reclamation needs no epoch scheme; the peak waste is bounded by
//!   2x the high-water mark (a geometric series of retired capacities).
//! * A thief reads the element *before* its CAS, so the read can race
//!   with nothing that matters: slots are only rewritten by `push`, and
//!   `push` only reuses a slot index after `top` has advanced past it —
//!   which fails the thief's CAS, discarding the (possibly stale) bits
//!   without dropping them. The bits are only materialized as a `T`
//!   when the CAS succeeds, which proves the slot was stable over the
//!   read. This split (speculative bit copy, CAS-validated
//!   materialization) is the [`DataSlot::read_speculative`] /
//!   [`DataSlot::confirm`] pair of the atomics family; the model family
//!   uses it to excuse exactly the races the CAS discards and flag
//!   every other unordered slot access.
//!
//! Elements are stored as `MaybeUninit` bit copies; exactly one side
//! ever materializes (and eventually drops) each element, so the grow
//! path's duplicate bit copies are never double-dropped.
//!
//! The prose above is no longer the only correctness argument: the
//! `gfd-model` crate replays `push`/`pop`/`steal`/grow-under-steal and
//! the last-element race through a bounded-exhaustive interleaving
//! explorer with a happens-before race detector, and CI fails if any
//! explored schedule loses an element, double-claims one, or performs
//! an unordered slot access (DESIGN.md §14).

use crate::atomics::{AtomicInt, AtomicPtrCell, Atomics, DataSlot, StdAtomics, Weaken};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The victim's deque was observed empty.
    Empty,
    /// Lost a race (another thief, or the owner popping the last
    /// element); the caller may retry or move to the next victim.
    Retry,
    /// One element, taken from the top (the owner's lowest-priority
    /// end).
    Success(T),
}

/// A growable circular buffer. Slot `i` lives at index `i & mask`; the
/// live window is `[top, bottom)`, at most `cap` elements wide.
struct Buffer<T, A: Atomics> {
    slots: Box<[A::Slot<T>]>,
    mask: usize,
}

impl<T, A: Atomics> Buffer<T, A> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap).map(|_| A::Slot::vacant()).collect();
        Box::new(Buffer {
            slots,
            mask: cap - 1,
        })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn slot(&self, i: isize) -> &A::Slot<T> {
        &self.slots[(i as usize) & self.mask]
    }

    /// Bitwise-read slot `i`.
    ///
    /// # Safety
    /// The caller must hold a claim on the element (owner within
    /// `[top, bottom)`); the returned copy becomes the element's only
    /// live owner unless forgotten.
    unsafe fn read(&self, i: isize) -> T {
        // SAFETY: forwarded caller contract — the slot is initialized
        // (a push wrote index `i` before `bottom` moved past it) and
        // claimed.
        unsafe { self.slot(i).read() }
    }

    /// Bitwise-write slot `i`.
    ///
    /// # Safety
    /// Owner-only, and `i` must be outside every thief-visible live
    /// window (`i == bottom`, or the buffer is not yet published).
    unsafe fn write(&self, i: isize, value: T) {
        // SAFETY: forwarded caller contract — exclusive write access to
        // an out-of-window slot; old bits are never dropped
        // (`MaybeUninit` semantics).
        unsafe { self.slot(i).write(value) };
    }
}

/// The Chase–Lev deque. Owner calls [`push`](WsDeque::push) /
/// [`pop`](WsDeque::pop); any thread may call [`steal`](WsDeque::steal).
///
/// The type does not *statically* enforce the single-owner protocol
/// (the scheduler indexes deques by worker id, so the discipline is
/// structural there); the owner-end methods are therefore `unsafe`-free
/// but documented owner-only, and the debug build asserts nothing about
/// cross-thread misuse beyond what the algorithm tolerates.
///
/// The `A` parameter selects the atomics family: [`StdAtomics`]
/// (the default — production, zero-cost) or `gfd-model`'s VM-backed
/// family (every synchronization op becomes a controlled, clock-tracked
/// schedule point).
pub struct WsDeque<T, A: Atomics = StdAtomics> {
    /// Owner end. Written only by the owner; read by thieves.
    bottom: A::Isize,
    /// Thief end. Advanced by successful steals (and the owner's
    /// last-element CAS in `pop`); never decreases.
    top: A::Isize,
    buf: A::Ptr<Buffer<T, A>>,
    /// Buffers retired by `grow`, freed on drop (see module docs). The
    /// boxes must not be flattened into the `Vec`: a racing thief may
    /// still read through a stale `buf` pointer, so a retired buffer
    /// has to keep its heap address until the deque itself drops.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer<T, A>>>>,
}

// SAFETY: the deque hands each element to exactly one thread (owner pop
// or CAS-validated steal); `T: Send` is all that transfer needs. The
// shared internals are the family's atomics (Sync by trait bound) and
// raw slots whose cross-thread access protocol is the algorithm itself.
unsafe impl<T: Send, A: Atomics> Send for WsDeque<T, A> {}
// SAFETY: as above — `&WsDeque` exposes only the owner/thief protocol.
unsafe impl<T: Send, A: Atomics> Sync for WsDeque<T, A> {}

impl<T, A: Atomics> Default for WsDeque<T, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, A: Atomics> WsDeque<T, A> {
    /// An empty deque with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// An empty deque whose first buffer holds `cap` elements (rounded
    /// up to a power of two). Model scenarios use tiny capacities so
    /// the grow-under-steal path is reachable within a few operations;
    /// production callers can pre-size for a known seed burst.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        WsDeque {
            bottom: A::Isize::new(0),
            top: A::Isize::new(0),
            buf: A::Ptr::new(Box::into_raw(Buffer::new(cap))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// A racy size estimate: exact when called by the owner with no
    /// concurrent steal, a lower bound otherwise. Used to size steal
    /// batches — a stale answer only makes a thief take a slightly
    /// wrong half, never break correctness.
    #[inline]
    pub fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Owner-only: push `value` at the bottom.
    #[inline]
    pub fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buf.load(Ordering::Relaxed);
        // SAFETY: `buf` is only replaced by the owner (us), so the
        // pointer is the current buffer and stays valid; the slot write
        // targets index `b == bottom`, which no thief-visible live
        // window contains until the release store below publishes it.
        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, value);
        }
        // Release: a thief that acquires the new `bottom` sees the slot
        // write above. (`Weaken::DequePushPublish` downgrades this to
        // Relaxed under the model — the checker must then flag the
        // thief's slot read as unordered.)
        let publish = if A::weakened(Weaken::DequePushPublish) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.bottom.store(b + 1, publish);
    }

    /// Owner-only: pop from the bottom (the most recently pushed / the
    /// highest-priority end under the scheduler's reverse-seeding).
    #[inline]
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buf.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // SeqCst: order the `bottom` decrement before the `top` read
        // below, against every thief's SeqCst CAS. Without this a pop
        // and a steal could both claim the last element.
        A::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: `[t, b]` is non-empty here, so slot `b` was written by
        // a prior push (by us, the owner — program order makes the read
        // well-ordered) and no thief can claim it without first claiming
        // everything below index b (thieves take from the top).
        let value = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: race the thieves for it. Winning the CAS
            // claims the element; losing means a thief took it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if won {
                return Some(value);
            }
            // A thief owns it now; forget our bit copy without dropping.
            std::mem::forget(value);
            return None;
        }
        Some(value)
    }

    /// Steal one element from the top (the owner's lowest-priority
    /// end). Callable from any thread.
    #[inline]
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // SeqCst: order the `top` read before the `bottom` read against
        // the owner-pop's fence (see `pop`).
        A::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Re-acquire the buffer pointer *after* reading `top`: a grow
        // publishes the new buffer before any push that could recycle
        // old slot indices, so the buffer we read covers index `t`.
        let buf = self.buf.load(Ordering::Acquire);
        // SAFETY: speculative bit copy; only materialized as a `T` if
        // the CAS below succeeds, which proves no push recycled the slot
        // and no other claimant took index `t` (see module docs).
        let (bits, guard) = unsafe { (*buf).slot(t).read_speculative() };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Lost the race; the bit copy is stale — discarded unused,
            // so the read it came from raced with nothing that matters.
            A::Slot::<T>::discard(guard);
            return Steal::Retry;
        }
        // Won: the read is retroactively known to have observed a
        // stable, initialized slot (the model family re-checks exactly
        // that here).
        A::Slot::<T>::confirm(guard);
        // SAFETY: the successful CAS transferred ownership of element
        // `t` to us, and proved the speculative copy read the committed
        // bits of an initialized slot.
        Steal::Success(unsafe { bits.assume_init() })
    }

    /// Owner-only, cold: replace the buffer with one twice the size,
    /// copying the live window `[t, b)`. Returns the new buffer.
    ///
    /// The old buffer is retired, not freed: a thief may hold its
    /// pointer mid-read. Duplicate bit copies left in the old buffer
    /// are never dropped (slots are `MaybeUninit`), so each element
    /// still has exactly one eventual owner.
    ///
    /// # Safety
    /// Caller must be the owner, `old` must be the current buffer, and
    /// `[t, b)` must be the live window.
    //
    // Cold and never inlined: keeps `push`'s inlinable body to the
    // four-instruction hot path (the zero-cost bench guard watches
    // this).
    #[cold]
    #[inline(never)]
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buffer<T, A>) -> *mut Buffer<T, A> {
        // SAFETY: `old` is the current buffer (caller contract) and the
        // owner (us) is the only writer; reads of `[t, b)` target slots
        // our own prior pushes initialized, and writes target the new,
        // not-yet-published buffer no other thread can reach.
        let new = unsafe {
            let new = Buffer::new(((*old).cap() * 2).max(64));
            for i in t..b {
                new.write(i, (*old).read(i));
            }
            new
        };
        let new = Box::into_raw(new);
        // Release: thieves acquiring the pointer see the copied slots.
        // (`Weaken::DequeBufPublish` downgrades this under the model.)
        let publish = if A::weakened(Weaken::DequeBufPublish) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.buf.store(new, publish);
        // SAFETY: `old` came from `Box::into_raw` in `with_capacity` or
        // a previous grow, and is reboxed exactly once — here, into the
        // retired list that outlives every racing thief read.
        self.retired.lock().push(unsafe { Box::from_raw(old) });
        new
    }
}

impl<T, A: Atomics> Drop for WsDeque<T, A> {
    fn drop(&mut self) {
        // Exclusive access: drop the live window, then free buffers.
        let b = self.bottom.unsync_load();
        let t = self.top.unsync_load();
        let buf = self.buf.unsync_load();
        // SAFETY: `&mut self` means no owner or thief is active; every
        // element in `[t, b)` is initialized and unclaimed, and `buf`
        // is the one live `Box::into_raw` allocation, reboxed once.
        unsafe {
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
        }
        self.retired.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    type StdDeque<T> = WsDeque<T, StdAtomics>;

    #[test]
    fn owner_lifo_order() {
        let d = StdDeque::new();
        for i in 0..10 {
            d.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_takes_fifo_from_the_top() {
        let d = StdDeque::new();
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Success(0));
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = StdDeque::new();
        for i in 0..1000 {
            d.push(i);
        }
        assert_eq!(d.len_hint(), 1000);
        for i in (0..1000).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn tiny_capacity_grows_from_two() {
        let d: StdDeque<usize> = WsDeque::with_capacity(2);
        for i in 0..9 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Success(0));
        for i in (1..9).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn drop_releases_undrained_elements() {
        // Arc counts prove each element is dropped exactly once.
        let marker = Arc::new(());
        let d = StdDeque::new();
        for _ in 0..100 {
            d.push(Arc::clone(&marker));
        }
        let _ = d.pop();
        let _ = d.steal();
        drop(d);
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    // Miri runs the same concurrency tests at a fraction of the
    // iteration count: the interpreter is ~3 orders of magnitude slower
    // and its scheduler preempts aggressively, so small counts still
    // exercise every racy path (push/pop/steal/grow) while keeping the
    // CI job in seconds.
    #[cfg(miri)]
    const STORM_UNITS: usize = 300;
    #[cfg(not(miri))]
    const STORM_UNITS: usize = 20_000;
    #[cfg(miri)]
    const STORM_THIEVES: usize = 2;
    #[cfg(not(miri))]
    const STORM_THIEVES: usize = 7;

    #[test]
    fn concurrent_steal_storm_loses_nothing() {
        // 1 owner pushing/popping, thieves hammering steal: every
        // element is claimed exactly once and the claimed sum matches.
        const N: usize = STORM_UNITS;
        let d = Arc::new(StdDeque::new());
        let taken = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for _ in 0..STORM_THIEVES {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Success(v) => {
                        taken.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }

        let mut owner_taken = 0usize;
        let mut owner_sum = 0usize;
        for i in 0..N {
            d.push(i + 1);
            // Interleave pops to exercise the last-element race.
            if i % 3 == 0 {
                if let Some(v) = d.pop() {
                    owner_taken += 1;
                    owner_sum += v;
                }
            }
        }
        while let Some(v) = d.pop() {
            owner_taken += 1;
            owner_sum += v;
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        // Late steals may still drain after the owner saw empty.
        while let Steal::Success(v) = d.steal() {
            owner_taken += 1;
            owner_sum += v;
        }
        assert_eq!(owner_taken + taken.load(Ordering::Relaxed), N);
        assert_eq!(owner_sum + sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    }

    #[test]
    fn concurrent_growth_under_steals() {
        // Push far past capacity while thieves steal, forcing grows
        // with live readers on retired buffers.
        #[cfg(miri)]
        const N: usize = 400;
        #[cfg(not(miri))]
        const N: usize = 50_000;
        let d = Arc::new(StdDeque::with_capacity(if cfg!(miri) { 2 } else { 64 }));
        let taken = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Success(_) => {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                }
            }));
        }
        for i in 0..N {
            d.push(i);
        }
        let mut owner = 0usize;
        while d.pop().is_some() {
            owner += 1;
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        while let Steal::Success(_) = d.steal() {
            owner += 1;
        }
        assert_eq!(owner + taken.load(Ordering::Relaxed), N);
    }
}
