//! Graph patterns `Q[x̄]` with wildcard labels.

use crate::graph::Graph;
use crate::ids::{LabelId, NodeId, VarId};

/// A directed pattern edge `src --label--> dst` between pattern variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PatternEdge {
    /// Source variable.
    pub src: VarId,
    /// Edge label (possibly the wildcard).
    pub label: LabelId,
    /// Destination variable.
    pub dst: VarId,
}

/// A graph pattern: a small directed graph whose nodes are the variables
/// `x̄` of a GFD. Node and edge labels may be the wildcard `_`.
#[derive(Clone, Debug, Default)]
pub struct Pattern {
    labels: Vec<LabelId>,
    names: Vec<String>,
    edges: Vec<PatternEdge>,
    out: Vec<Vec<(LabelId, VarId)>>,
    inn: Vec<Vec<(LabelId, VarId)>>,
}

impl Pattern {
    /// An empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a pattern node (variable) with a label and a display name.
    pub fn add_node(&mut self, label: LabelId, name: impl Into<String>) -> VarId {
        let id = VarId::new(self.labels.len());
        self.labels.push(label);
        self.names.push(name.into());
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Add a pattern node with an auto-generated name `x{i}`.
    pub fn add_anon_node(&mut self, label: LabelId) -> VarId {
        let name = format!("x{}", self.labels.len());
        self.add_node(label, name)
    }

    /// Add a directed pattern edge.
    pub fn add_edge(&mut self, src: VarId, label: LabelId, dst: VarId) {
        assert!(src.index() < self.labels.len(), "add_edge: bad src");
        assert!(dst.index() < self.labels.len(), "add_edge: bad dst");
        let e = PatternEdge { src, label, dst };
        if self.edges.contains(&e) {
            return;
        }
        self.edges.push(e);
        self.out[src.index()].push((label, dst));
        self.inn[dst.index()].push((label, src));
    }

    /// The label of variable `v` (possibly wildcard).
    #[inline]
    pub fn label(&self, v: VarId) -> LabelId {
        self.labels[v.index()]
    }

    /// The display name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Find a variable by display name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.names.iter().position(|n| n == name).map(VarId::new)
    }

    /// Number of pattern nodes (the paper's parameter `k`).
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of pattern edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Pattern size `|Q|` = nodes + edges.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// All pattern edges.
    pub fn edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// Out-neighbours of `v` as `(edge label, target)` pairs.
    #[inline]
    pub fn out_edges(&self, v: VarId) -> &[(LabelId, VarId)] {
        &self.out[v.index()]
    }

    /// In-neighbours of `v` as `(edge label, source)` pairs.
    #[inline]
    pub fn in_edges(&self, v: VarId) -> &[(LabelId, VarId)] {
        &self.inn[v.index()]
    }

    /// Iterate all variables.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + use<> {
        (0..self.labels.len()).map(VarId::new)
    }

    /// Undirected degree of `v`.
    pub fn degree(&self, v: VarId) -> usize {
        self.out[v.index()].len() + self.inn[v.index()].len()
    }

    /// Undirected connected components: `(component id per var, count)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.node_count();
        let mut comp = vec![u32::MAX; n];
        let mut count = 0u32;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = count;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &(_, u) in self.out[v].iter().chain(self.inn[v].iter()) {
                    if comp[u.index()] == u32::MAX {
                        comp[u.index()] = count;
                        stack.push(u.index());
                    }
                }
            }
            count += 1;
        }
        (comp, count as usize)
    }

    /// True iff the pattern is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return false;
        }
        self.components().1 == 1
    }

    /// Undirected BFS distances from `start`; unreachable vars get
    /// `u32::MAX`.
    pub fn distances_from(&self, start: VarId) -> Vec<u32> {
        let n = self.node_count();
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for &(_, u) in self.out[v.index()].iter().chain(self.inn[v.index()].iter()) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = d + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// The radius `dQ` of the pattern at `v`: the longest shortest
    /// (undirected) path from `v` to any variable reachable from it. Matches
    /// pivoted at a node `z` of a graph live entirely within the
    /// `dQ`-neighborhood of `z` (the data-locality property of §V-B).
    pub fn radius_at(&self, v: VarId) -> u32 {
        self.distances_from(v)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Labels of all nodes, in variable order.
    pub fn node_labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// The distinct concrete (non-wildcard) node and edge labels used by the
    /// pattern. A graph component lacking any of these cannot host a match
    /// (cheap pre-filter for work-unit generation).
    pub fn concrete_labels(&self) -> (Vec<LabelId>, Vec<LabelId>) {
        let mut nodes: Vec<LabelId> = self
            .labels
            .iter()
            .copied()
            .filter(|l| !l.is_wildcard())
            .collect();
        nodes.sort();
        nodes.dedup();
        let mut edges: Vec<LabelId> = self
            .edges
            .iter()
            .map(|e| e.label)
            .filter(|l| !l.is_wildcard())
            .collect();
        edges.sort();
        edges.dedup();
        (nodes, edges)
    }

    /// Materialize the pattern as a [`Graph`] (labels kept verbatim,
    /// including wildcards). Variable `i` becomes node `i`.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::with_capacity(self.node_count());
        for v in self.vars() {
            g.add_node(self.label(v));
        }
        for e in &self.edges {
            g.add_edge(
                NodeId::new(e.src.index()),
                e.label,
                NodeId::new(e.dst.index()),
            );
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Vocab;

    /// The paper's Q1: place --locateIn--> place --partOf--> back (a cycle).
    fn q1(v: &mut Vocab) -> Pattern {
        let place = v.label("place");
        let mut q = Pattern::new();
        let x = q.add_node(place, "x");
        let y = q.add_node(place, "y");
        q.add_edge(x, v.label("locateIn"), y);
        q.add_edge(y, v.label("partOf"), x);
        q
    }

    #[test]
    fn build_and_query() {
        let mut v = Vocab::new();
        let q = q1(&mut v);
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.edge_count(), 2);
        assert_eq!(q.size(), 4);
        assert!(q.is_connected());
        assert_eq!(q.var_name(VarId::new(0)), "x");
        assert_eq!(q.var_by_name("y"), Some(VarId::new(1)));
        assert_eq!(q.var_by_name("z"), None);
        assert_eq!(q.degree(VarId::new(0)), 2);
    }

    #[test]
    fn radius_of_cycle_and_path() {
        let mut v = Vocab::new();
        let q = q1(&mut v);
        assert_eq!(q.radius_at(VarId::new(0)), 1);

        // Path x -> y -> z: radius at x is 2, at y is 1.
        let mut p = Pattern::new();
        let l = v.label("t");
        let e = v.label("e");
        let x = p.add_node(l, "x");
        let y = p.add_node(l, "y");
        let z = p.add_node(l, "z");
        p.add_edge(x, e, y);
        p.add_edge(y, e, z);
        assert_eq!(p.radius_at(x), 2);
        assert_eq!(p.radius_at(y), 1);
        assert_eq!(p.radius_at(z), 2);
    }

    #[test]
    fn disconnected_components() {
        let mut v = Vocab::new();
        let l = v.label("t");
        let mut p = Pattern::new();
        let a = p.add_node(l, "a");
        let b = p.add_node(l, "b");
        p.add_node(l, "c");
        p.add_edge(a, v.label("e"), b);
        let (comp, count) = p.components();
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
        assert!(!p.is_connected());
        // Radius only covers the reachable part.
        assert_eq!(p.radius_at(a), 1);
        let d = p.distances_from(a);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn concrete_labels_skip_wildcards() {
        let mut v = Vocab::new();
        let mut p = Pattern::new();
        let t = v.label("t");
        let x = p.add_node(LabelId::WILDCARD, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, LabelId::WILDCARD, y);
        p.add_edge(y, v.label("e"), x);
        let (nodes, edges) = p.concrete_labels();
        assert_eq!(nodes, vec![t]);
        assert_eq!(edges, vec![v.label("e")]);
    }

    #[test]
    fn to_graph_preserves_structure() {
        let mut v = Vocab::new();
        let q = q1(&mut v);
        let g = q.to_graph();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId::new(0), v.label("locateIn"), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), v.label("partOf"), NodeId::new(0)));
    }

    #[test]
    fn duplicate_pattern_edge_ignored() {
        let mut v = Vocab::new();
        let mut q = q1(&mut v);
        let x = VarId::new(0);
        let y = VarId::new(1);
        q.add_edge(x, v.label("locateIn"), y);
        assert_eq!(q.edge_count(), 2);
    }

    #[test]
    fn anon_names_are_positional() {
        let mut v = Vocab::new();
        let mut q = Pattern::new();
        let a = q.add_anon_node(v.label("t"));
        let b = q.add_anon_node(v.label("t"));
        assert_eq!(q.var_name(a), "x0");
        assert_eq!(q.var_name(b), "x1");
    }
}
