//! Directed, labelled property graphs `G = (V, E, L, F_A)`.

use crate::ids::{AttrId, LabelId, NodeId};
use crate::value::{Value, ValueId, ValueTable};
use rustc_hash::FxHashMap;

/// A labelled edge endpoint stored in adjacency lists: `(edge label, other
/// endpoint)`.
pub type Adj = (LabelId, NodeId);

/// A directed graph with labelled nodes and edges and per-node attribute
/// tuples, as defined in §II of the paper.
///
/// Nodes are dense `NodeId`s; adjacency is stored both ways so matching can
/// traverse pattern edges in either direction. Attributes are interned
/// [`ValueId`]s, stored twice: as small sorted rows per node (the
/// authoritative store, cheap to enumerate and clone) and as a columnar
/// mirror indexed `[attr][node]` so the literal-evaluation hot path reads
/// one value with two indexed loads instead of a per-node binary search.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    labels: Vec<LabelId>,
    out: Vec<Vec<Adj>>,
    inn: Vec<Vec<Adj>>,
    attrs: Vec<Vec<(AttrId, ValueId)>>,
    /// Columnar mirror of `attrs`: `cols[attr][node]`, `ValueId::NONE`
    /// where the attribute is absent. Maintained by `set_attr_id`; the
    /// distinct-attribute count is small in every workload, so the
    /// mirror costs one dense `u32` column per attribute.
    cols: Vec<Vec<ValueId>>,
    edge_count: usize,
    /// Bumped on every topology mutation (node or edge insertion, not
    /// attribute updates). Frozen views record the version they were built
    /// at and fail fast on a mismatch (DESIGN.md §1).
    topology_version: u64,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Graph {
            labels: Vec::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inn: Vec::with_capacity(nodes),
            attrs: Vec::with_capacity(nodes),
            cols: Vec::new(),
            edge_count: 0,
            topology_version: 0,
        }
    }

    /// The current topology version: bumped on every node or edge
    /// insertion (attribute updates do not count — enforcement mutates
    /// attributes only). A frozen [`crate::CsrTopology`] records the
    /// version it was built at; comparing the two detects stale views.
    #[inline]
    pub fn topology_version(&self) -> u64 {
        self.topology_version
    }

    /// Add a node with the given label, returning its id.
    pub fn add_node(&mut self, label: LabelId) -> NodeId {
        let id = NodeId::new(self.labels.len());
        self.labels.push(label);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.attrs.push(Vec::new());
        self.topology_version += 1;
        id
    }

    /// Add a directed edge `src --label--> dst`. Parallel edges with
    /// distinct labels are allowed; an identical `(src, label, dst)` triple
    /// is stored once.
    pub fn add_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) {
        assert!(src.index() < self.labels.len(), "add_edge: bad src");
        assert!(dst.index() < self.labels.len(), "add_edge: bad dst");
        if self.out[src.index()].contains(&(label, dst)) {
            return;
        }
        self.out[src.index()].push((label, dst));
        self.inn[dst.index()].push((label, src));
        self.edge_count += 1;
        self.topology_version += 1;
    }

    /// Remove the directed edge `src --label--> dst`, returning whether
    /// it existed. Bumps the topology version on success (frozen views
    /// must be re-frozen or routed through a delta overlay).
    pub fn remove_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        let out = &mut self.out[src.index()];
        let Some(pos) = out.iter().position(|&e| e == (label, dst)) else {
            return false;
        };
        out.remove(pos);
        let inn = &mut self.inn[dst.index()];
        let pos = inn
            .iter()
            .position(|&e| e == (label, src))
            .expect("in/out adjacency out of sync");
        inn.remove(pos);
        self.edge_count -= 1;
        self.topology_version += 1;
        true
    }

    /// Set (or overwrite) attribute `attr` of `node` to `value`,
    /// interning it. Boundary convenience — hot paths that already hold
    /// an id use [`Graph::set_attr_id`].
    pub fn set_attr(&mut self, node: NodeId, attr: AttrId, value: impl Into<Value>) {
        self.set_attr_id(node, attr, ValueTable::intern(&value.into()));
    }

    /// Set (or overwrite) attribute `attr` of `node` to an interned id.
    pub fn set_attr_id(&mut self, node: NodeId, attr: AttrId, value: ValueId) {
        debug_assert!(value.is_some(), "NONE is not a storable value");
        let attrs = &mut self.attrs[node.index()];
        match attrs.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => attrs[i].1 = value,
            Err(i) => attrs.insert(i, (attr, value)),
        }
        let ai = attr.index();
        if self.cols.len() <= ai {
            self.cols.resize_with(ai + 1, Vec::new);
        }
        let col = &mut self.cols[ai];
        if col.len() <= node.index() {
            col.resize(node.index() + 1, ValueId::NONE);
        }
        col[node.index()] = value;
    }

    /// The interned value of attribute `attr` at `node`, if present.
    /// One column load — the literal-evaluation hot path.
    #[inline]
    pub fn attr(&self, node: NodeId, attr: AttrId) -> Option<ValueId> {
        let v = *self.cols.get(attr.index())?.get(node.index())?;
        if v.is_none() {
            None
        } else {
            Some(v)
        }
    }

    /// The resolved value of attribute `attr` at `node`, if present.
    /// Boundary helper for rendering and serialization.
    pub fn attr_value(&self, node: NodeId, attr: AttrId) -> Option<Value> {
        self.attr(node, attr).map(ValueId::resolve)
    }

    /// All attributes of `node`, sorted by attribute id.
    pub fn attrs(&self, node: NodeId) -> &[(AttrId, ValueId)] {
        &self.attrs[node.index()]
    }

    /// The label of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> LabelId {
        self.labels[node.index()]
    }

    /// Out-edges of `node` as `(edge label, target)` pairs.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[Adj] {
        &self.out[node.index()]
    }

    /// In-edges of `node` as `(edge label, source)` pairs.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[Adj] {
        &self.inn[node.index()]
    }

    /// True iff the edge `src --label--> dst` exists.
    pub fn has_edge(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        // Scan the smaller endpoint list.
        let o = &self.out[src.index()];
        let i = &self.inn[dst.index()];
        if o.len() <= i.len() {
            o.contains(&(label, dst))
        } else {
            i.contains(&(label, src))
        }
    }

    /// True iff an edge `src --l--> dst` exists whose label is matched by
    /// the (possibly wildcard) pattern label `label`.
    pub fn has_edge_pattern(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        if !label.is_wildcard() {
            return self.has_edge(src, label, dst);
        }
        let o = &self.out[src.index()];
        let i = &self.inn[dst.index()];
        if o.len() <= i.len() {
            o.iter().any(|&(_, d)| d == dst)
        } else {
            i.iter().any(|&(_, s)| s == src)
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total number of attribute entries across all nodes.
    pub fn attr_count(&self) -> usize {
        self.attrs.iter().map(Vec::len).sum()
    }

    /// The size `|G|` = nodes + edges + attribute entries, the measure used
    /// for the paper's Σ-bounded populations.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count() + self.attr_count()
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + use<> {
        (0..self.labels.len()).map(NodeId::new)
    }

    /// Iterate all edges as `(src, label, dst)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, LabelId, NodeId)> + '_ {
        self.out.iter().enumerate().flat_map(|(src, adj)| {
            adj.iter()
                .map(move |&(label, dst)| (NodeId::new(src), label, dst))
        })
    }

    /// Undirected connected components: returns `(component id per node,
    /// component count)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.node_count();
        let mut comp = vec![u32::MAX; n];
        let mut count = 0u32;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = count;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &(_, u) in self.out[v].iter().chain(self.inn[v].iter()) {
                    if comp[u.index()] == u32::MAX {
                        comp[u.index()] = count;
                        stack.push(u.index());
                    }
                }
            }
            count += 1;
        }
        (comp, count as usize)
    }

    /// Copy another graph into this one, returning the node-id offset that
    /// was applied to the copied nodes. Used to build canonical graphs as
    /// disjoint unions of patterns.
    pub fn append_disjoint(&mut self, other: &Graph) -> usize {
        let offset = self.node_count();
        for v in other.nodes() {
            self.add_node(other.label(v));
        }
        for (src, label, dst) in other.edges() {
            self.add_edge(
                NodeId::new(src.index() + offset),
                label,
                NodeId::new(dst.index() + offset),
            );
        }
        for v in other.nodes() {
            for (attr, value) in other.attrs(v) {
                self.set_attr_id(NodeId::new(v.index() + offset), *attr, *value);
            }
        }
        offset
    }
}

/// An index from node label to the nodes carrying it, plus the full node
/// list for wildcard lookups and the frozen [`crate::CsrTopology`] the matching
/// hot path probes.
///
/// Building the index freezes the graph's topology: the CSR view rides
/// along so that every layer holding a `LabelIndex` (matcher, canonical
/// graphs, detection, workers) gets `O(log d)` edge probes and per-label
/// adjacency sub-slices without any signature change. Like the label
/// buckets, the CSR goes stale if edges are added after `build`.
#[derive(Clone, Debug, Default)]
pub struct LabelIndex {
    by_label: FxHashMap<LabelId, Vec<NodeId>>,
    all: Vec<NodeId>,
    csr: crate::csr::CsrTopology,
}

impl LabelIndex {
    /// Build the index for `graph`, freezing its topology.
    pub fn build(graph: &Graph) -> Self {
        let mut by_label: FxHashMap<LabelId, Vec<NodeId>> = FxHashMap::default();
        let mut all = Vec::with_capacity(graph.node_count());
        for v in graph.nodes() {
            by_label.entry(graph.label(v)).or_default().push(v);
            all.push(v);
        }
        LabelIndex {
            by_label,
            all,
            csr: graph.freeze(),
        }
    }

    /// The frozen CSR topology built alongside the label buckets.
    #[inline]
    pub fn csr(&self) -> &crate::csr::CsrTopology {
        &self.csr
    }

    /// Debug-assert that `graph`'s topology has not changed since this
    /// index (and its CSR view) was built. See
    /// [`crate::CsrTopology::assert_fresh`].
    #[inline]
    pub fn assert_fresh(&self, graph: &Graph) {
        self.csr.assert_fresh(graph);
    }

    /// Candidate nodes for a pattern node labelled `label`: every node when
    /// `label` is the wildcard, otherwise the nodes with exactly that label.
    pub fn candidates(&self, label: LabelId) -> &[NodeId] {
        if label.is_wildcard() {
            &self.all
        } else {
            self.by_label.get(&label).map_or(&[], Vec::as_slice)
        }
    }

    /// How many nodes carry `label` (all nodes for the wildcard). Used for
    /// pivot selectivity.
    pub fn frequency(&self, label: LabelId) -> usize {
        self.candidates(label).len()
    }

    /// Total number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.all.len()
    }

    /// Deconstruct into the label buckets, node list and frozen CSR —
    /// used by [`crate::DeltaIndex`] to reuse this index's freeze.
    pub(crate) fn into_parts(
        self,
    ) -> (
        FxHashMap<LabelId, Vec<NodeId>>,
        Vec<NodeId>,
        crate::csr::CsrTopology,
    ) {
        (self.by_label, self.all, self.csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Vocab;

    fn tiny() -> (Graph, Vocab) {
        let mut v = Vocab::new();
        let place = v.label("place");
        let person = v.label("person");
        let lives = v.label("livesIn");
        let mut g = Graph::new();
        let a = g.add_node(person);
        let b = g.add_node(place);
        let c = g.add_node(person);
        g.add_edge(a, lives, b);
        g.add_edge(c, lives, b);
        g.set_attr(a, v.attr("name"), Value::str("ann"));
        (g, v)
    }

    #[test]
    fn build_and_query() {
        let (g, mut v) = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.attr_count(), 1);
        assert_eq!(g.size(), 6);
        let lives = v.label("livesIn");
        assert!(g.has_edge(NodeId::new(0), lives, NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(1), lives, NodeId::new(0)));
        assert_eq!(g.out_edges(NodeId::new(0)).len(), 1);
        assert_eq!(g.in_edges(NodeId::new(1)).len(), 2);
        let name = v.attr("name");
        assert_eq!(g.attr(NodeId::new(0), name), Some(ValueId::of("ann")));
        assert_eq!(g.attr_value(NodeId::new(0), name), Some(Value::str("ann")));
        assert_eq!(g.attr(NodeId::new(1), name), None);
    }

    #[test]
    fn set_attr_overwrites() {
        let (mut g, mut v) = tiny();
        let name = v.attr("name");
        g.set_attr(NodeId::new(0), name, Value::str("bob"));
        assert_eq!(g.attr(NodeId::new(0), name), Some(ValueId::of("bob")));
        assert_eq!(g.attr_count(), 1);
    }

    #[test]
    fn attrs_stay_sorted() {
        let (mut g, mut v) = tiny();
        let z = v.attr("zzz");
        let a = v.attr("aaa");
        g.set_attr(NodeId::new(2), z, Value::int(1));
        g.set_attr(NodeId::new(2), a, Value::int(2));
        let ids: Vec<AttrId> = g.attrs(NodeId::new(2)).iter().map(|(a, _)| *a).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let (mut g, mut v) = tiny();
        let lives = v.label("livesIn");
        g.add_edge(NodeId::new(0), lives, NodeId::new(1));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parallel_edges_with_distinct_labels() {
        let (mut g, mut v) = tiny();
        let other = v.label("worksIn");
        g.add_edge(NodeId::new(0), other, NodeId::new(1));
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(0), other, NodeId::new(1)));
    }

    #[test]
    fn edges_iterator_lists_all() {
        let (g, _) = tiny();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn components_of_disjoint_graph() {
        let (mut g, mut v) = tiny();
        let l = v.label("island");
        g.add_node(l);
        g.add_node(l);
        let (comp, count) = g.components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[3], comp[0]);
        assert_ne!(comp[3], comp[4]);
    }

    #[test]
    fn append_disjoint_offsets_everything() {
        let (g1, _) = tiny();
        let mut g = Graph::new();
        let off0 = g.append_disjoint(&g1);
        let off1 = g.append_disjoint(&g1);
        assert_eq!(off0, 0);
        assert_eq!(off1, 3);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.attr_count(), 2);
        let (_, count) = g.components();
        assert_eq!(count, 2);
    }

    #[test]
    fn label_index_candidates() {
        let (g, mut v) = tiny();
        let idx = LabelIndex::build(&g);
        let person = v.label("person");
        let place = v.label("place");
        assert_eq!(idx.candidates(person).len(), 2);
        assert_eq!(idx.candidates(place).len(), 1);
        assert_eq!(idx.candidates(LabelId::WILDCARD).len(), 3);
        assert_eq!(idx.candidates(v.label("nothing")).len(), 0);
        assert_eq!(idx.frequency(person), 2);
        assert_eq!(idx.node_count(), 3);
    }
}
