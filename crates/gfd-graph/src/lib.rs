//! Property-graph substrate for GFD reasoning.
//!
//! This crate provides the data model of §II of *"Parallel Reasoning of
//! Graph Functional Dependencies"* (ICDE 2018):
//!
//! * directed graphs with labelled nodes/edges and attribute tuples
//!   ([`Graph`], [`Value`]);
//! * the frozen CSR topology with label-sorted adjacency the matching
//!   hot path probes ([`CsrTopology`], built by [`Graph::freeze`] and
//!   carried by every [`LabelIndex`] — see DESIGN.md §1);
//! * the shared topology-view abstraction ([`TopologyView`],
//!   [`MatchIndex`]) and the delta-CSR overlay for streaming updates
//!   ([`DeltaCsr`], [`DeltaIndex`], [`DeltaBatch`] — see DESIGN.md §8);
//! * graph patterns with wildcard labels ([`Pattern`]);
//! * interned vocabularies mapping names to dense ids ([`Vocab`]);
//! * neighborhood (`dQ`-ball) extraction used by pivoted matching
//!   ([`neighborhood`]);
//! * small utilities: node bitsets, label indexes, DOT export.
//!
//! Everything downstream (`gfd-match`, `gfd-core`, `gfd-parallel`) works
//! purely on the integer ids defined here.

#![warn(missing_docs)]

pub mod csr;
pub mod delta;
pub mod dot;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod neighborhood;
pub mod nodeset;
pub mod pattern;
mod proptests;
pub mod value;
pub mod view;

pub use csr::CsrTopology;
pub use delta::{AppliedBatch, DeltaBatch, DeltaCsr, DeltaIndex, DeltaOp};
pub use graph::{Adj, Graph, LabelIndex};
pub use ids::{AttrId, GfdId, LabelId, NodeId, VarId};
pub use interner::{Interner, Vocab};
pub use nodeset::NodeSet;
pub use pattern::{Pattern, PatternEdge};
pub use value::{Value, ValueId, ValueTable};
pub use view::{Dir, MatchIndex, TopologyView};
