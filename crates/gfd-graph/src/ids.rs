//! Dense integer identifiers used across the workspace.
//!
//! All hot-path data structures key on these `u32` newtypes instead of
//! strings; the mapping back to human-readable names lives in
//! [`crate::interner::Vocab`].

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a `usize` index (panics on overflow).
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }

            /// The identifier as a `usize`, for indexing into dense vectors.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }
    };
}

id_type!(
    /// A node of a data graph (or of a canonical graph).
    NodeId,
    "n"
);
id_type!(
    /// A node label or edge label, interned in a [`crate::interner::Vocab`].
    LabelId,
    "l"
);
id_type!(
    /// An attribute name, interned in a [`crate::interner::Vocab`].
    AttrId,
    "a"
);
id_type!(
    /// A pattern variable: the position of a node inside a graph pattern.
    VarId,
    "x"
);
id_type!(
    /// The position of a GFD inside a set Σ.
    GfdId,
    "g"
);

impl LabelId {
    /// The reserved wildcard label `_`.
    ///
    /// [`crate::interner::Vocab::new`] interns `"_"` first so that this id is
    /// stable across every vocabulary. A *pattern* node or edge labelled
    /// `WILDCARD` matches any label; a canonical-graph node labelled
    /// `WILDCARD` is only matched by a wildcard pattern node (the paper's
    /// §IV-B convention).
    pub const WILDCARD: LabelId = LabelId(0);

    /// Does this label match `other` under pattern-matching semantics,
    /// with `self` playing the pattern role?
    #[inline]
    pub fn pattern_matches(self, other: LabelId) -> bool {
        self == LabelId::WILDCARD || self == other
    }

    /// True iff this is the wildcard label.
    #[inline]
    pub fn is_wildcard(self) -> bool {
        self == LabelId::WILDCARD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_usize() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId::from(42usize));
        assert_eq!(format!("{n}"), "n42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(VarId::new(1) < VarId::new(2));
        assert!(AttrId::new(0) < AttrId::new(100));
    }

    #[test]
    fn wildcard_matching_semantics() {
        let w = LabelId::WILDCARD;
        let a = LabelId(7);
        let b = LabelId(8);
        assert!(w.pattern_matches(a));
        assert!(w.pattern_matches(w));
        assert!(a.pattern_matches(a));
        assert!(!a.pattern_matches(b));
        // A concrete pattern label does not match a wildcard-labelled
        // canonical node.
        assert!(!a.pattern_matches(w));
        assert!(w.is_wildcard());
        assert!(!a.is_wildcard());
    }
}
