//! Bounded-radius neighborhoods (`dQ`-balls) in data graphs.
//!
//! The locality property exploited by work units (§V-B of the paper): if a
//! match `h` of a connected pattern `Q` pivots `x` at node `z`, then every
//! node of `h(x̄)` lies within `dQ` (undirected) hops of `z`, where `dQ` is
//! the pattern radius at `x`. Pivoted matching therefore restricts its
//! search to the ball extracted here.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::nodeset::NodeSet;
use std::collections::VecDeque;

/// All nodes within `radius` undirected hops of `center` (inclusive of
/// `center`).
pub fn ball(graph: &Graph, center: NodeId, radius: u32) -> NodeSet {
    let mut set = NodeSet::with_capacity(graph.node_count());
    let mut queue = VecDeque::new();
    set.insert(center);
    queue.push_back((center, 0u32));
    while let Some((v, d)) = queue.pop_front() {
        if d == radius {
            continue;
        }
        for &(_, u) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
            if set.insert(u) {
                queue.push_back((u, d + 1));
            }
        }
    }
    set
}

/// Undirected BFS distances from `start`, capped at `max` (nodes farther
/// than `max`, or unreachable, get `u32::MAX`).
pub fn distances_within(graph: &Graph, start: NodeId, max: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d == max {
            continue;
        }
        for &(_, u) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// True iff `b` lies within `radius` undirected hops of `a`. Early-exits as
/// soon as `b` is reached.
pub fn within_hops(graph: &Graph, a: NodeId, b: NodeId, radius: u32) -> bool {
    if a == b {
        return true;
    }
    let mut seen = NodeSet::with_capacity(graph.node_count());
    let mut queue = VecDeque::new();
    seen.insert(a);
    queue.push_back((a, 0u32));
    while let Some((v, d)) = queue.pop_front() {
        if d == radius {
            continue;
        }
        for &(_, u) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
            if u == b {
                return true;
            }
            if seen.insert(u) {
                queue.push_back((u, d + 1));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Vocab;

    /// A path graph 0 - 1 - 2 - 3 - 4 (directed left to right).
    fn path(n: usize) -> Graph {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(t)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], e, w[1]);
        }
        g
    }

    #[test]
    fn ball_respects_radius_and_direction_blindness() {
        let g = path(5);
        let b = ball(&g, NodeId::new(2), 1);
        let got: Vec<usize> = b.iter().map(|n| n.index()).collect();
        assert_eq!(got, vec![1, 2, 3]);
        let b2 = ball(&g, NodeId::new(0), 2);
        assert_eq!(b2.len(), 3);
        let all = ball(&g, NodeId::new(2), 10);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn ball_radius_zero_is_center_only() {
        let g = path(3);
        let b = ball(&g, NodeId::new(1), 0);
        assert_eq!(b.len(), 1);
        assert!(b.contains(NodeId::new(1)));
    }

    #[test]
    fn distances_capped() {
        let g = path(5);
        let d = distances_within(&g, NodeId::new(0), 2);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn within_hops_bidirectional() {
        let g = path(5);
        assert!(within_hops(&g, NodeId::new(4), NodeId::new(2), 2));
        assert!(!within_hops(&g, NodeId::new(4), NodeId::new(0), 3));
        assert!(within_hops(&g, NodeId::new(3), NodeId::new(3), 0));
    }
}
