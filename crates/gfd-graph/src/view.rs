//! The shared topology-view abstraction the matching hot path runs on.
//!
//! PR 1 froze graph topology into [`CsrTopology`]; streaming workloads
//! (DESIGN.md §8) add [`crate::DeltaCsr`], which layers per-node delta
//! adjacency over an immutable CSR base. The matcher must not care which
//! of the two it probes, so the three questions it asks — edge probes,
//! per-`(node, label)` adjacency size, and sorted adjacency iteration —
//! live behind [`TopologyView`]. [`MatchIndex`] bundles a view with the
//! label→candidates map the component-root frames draw from
//! ([`crate::LabelIndex`] for the frozen path, [`crate::DeltaIndex`] for
//! the overlay path).
//!
//! Iteration is callback-based (`try_for_matching`) rather than
//! slice-based because an overlay cannot hand out one contiguous slice:
//! the delta view emits the sorted merge of base sub-slice (minus
//! tombstones) and delta additions. On the pure CSR the callback walks
//! the same sub-slice the old code borrowed directly.

use crate::csr::CsrTopology;
use crate::graph::{Adj, Graph, LabelIndex};
use crate::ids::{LabelId, NodeId};
use std::ops::ControlFlow;

/// Which adjacency direction a probe traverses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Out-edges of the probed node.
    Out,
    /// In-edges of the probed node.
    In,
}

/// A queryable graph topology: the contract between the matcher and a
/// concrete representation (frozen CSR, or CSR + delta overlay).
///
/// All adjacency entries are `(edge label, other endpoint)` pairs and
/// every iteration order is ascending by `(label, node)` — within a
/// concrete label the endpoint ids strictly increase, which is what makes
/// sorted-merge intersection and adjacent dedup valid downstream.
pub trait TopologyView: Sync {
    /// Number of nodes visible in this view.
    fn node_count(&self) -> usize;

    /// Number of directed edges visible in this view.
    fn edge_count(&self) -> usize;

    /// True iff the edge `src --label--> dst` exists.
    fn has_edge(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool;

    /// True iff an edge `src --l--> dst` exists whose label is matched by
    /// the (possibly wildcard) pattern label `label`.
    fn has_edge_pattern(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool;

    /// Exact number of adjacency entries at `v` in direction `dir` whose
    /// label is matched by `label` (all entries for the wildcard). Used
    /// to pick the smallest anchor slice before iterating it.
    fn matching_len(&self, v: NodeId, dir: Dir, label: LabelId) -> usize;

    /// Visit the label-matching adjacency entries of `v` in ascending
    /// `(label, node)` order, stopping early when `f` breaks.
    fn try_for_matching(
        &self,
        v: NodeId,
        dir: Dir,
        label: LabelId,
        f: &mut dyn FnMut(Adj) -> ControlFlow<()>,
    ) -> ControlFlow<()>;

    /// Visit every label-matching adjacency entry of `v` in ascending
    /// `(label, node)` order.
    fn for_each_matching(&self, v: NodeId, dir: Dir, label: LabelId, mut f: impl FnMut(Adj))
    where
        Self: Sized,
    {
        let _ = self.try_for_matching(v, dir, label, &mut |a| {
            f(a);
            ControlFlow::Continue(())
        });
    }

    /// Stream every label-matching adjacency endpoint of `v` into
    /// `set`. Semantically `for_each_matching` + insert, but overridable
    /// with a monomorphic loop: the bitset anchor fold pays one dynamic
    /// call per streamed edge through `try_for_matching`, which is the
    /// dominant cost of folding a fat hub adjacency (DESIGN.md §15).
    fn collect_matching_into(
        &self,
        v: NodeId,
        dir: Dir,
        label: LabelId,
        set: &mut crate::NodeSet,
    ) {
        let _ = self.try_for_matching(v, dir, label, &mut |(_, n)| {
            set.insert(n);
            ControlFlow::Continue(())
        });
    }

    /// True iff some label-matching adjacency entry of `v` satisfies
    /// `pred` (early exit on the first hit).
    fn any_matching(
        &self,
        v: NodeId,
        dir: Dir,
        label: LabelId,
        mut pred: impl FnMut(Adj) -> bool,
    ) -> bool
    where
        Self: Sized,
    {
        self.try_for_matching(v, dir, label, &mut |a| {
            if pred(a) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .is_break()
    }
}

impl TopologyView for CsrTopology {
    #[inline]
    fn node_count(&self) -> usize {
        CsrTopology::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        CsrTopology::edge_count(self)
    }

    #[inline]
    fn has_edge(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        CsrTopology::has_edge(self, src, label, dst)
    }

    #[inline]
    fn has_edge_pattern(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        CsrTopology::has_edge_pattern(self, src, label, dst)
    }

    #[inline]
    fn matching_len(&self, v: NodeId, dir: Dir, label: LabelId) -> usize {
        match dir {
            Dir::Out => self.out_matching(v, label).len(),
            Dir::In => self.in_matching(v, label).len(),
        }
    }

    fn try_for_matching(
        &self,
        v: NodeId,
        dir: Dir,
        label: LabelId,
        f: &mut dyn FnMut(Adj) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let slice = match dir {
            Dir::Out => self.out_matching(v, label),
            Dir::In => self.in_matching(v, label),
        };
        for &a in slice {
            f(a)?;
        }
        ControlFlow::Continue(())
    }

    fn collect_matching_into(
        &self,
        v: NodeId,
        dir: Dir,
        label: LabelId,
        set: &mut crate::NodeSet,
    ) {
        let slice = match dir {
            Dir::Out => self.out_matching(v, label),
            Dir::In => self.in_matching(v, label),
        };
        for &(_, n) in slice {
            set.insert(n);
        }
    }
}

/// A topology view paired with the label→candidate-nodes map the matcher
/// needs for component roots and pivot enumeration.
///
/// Implemented by [`LabelIndex`] (frozen CSR) and [`crate::DeltaIndex`]
/// (CSR + delta overlay); `gfd_match::HomSearch` and `dual_simulation`
/// are generic over it, so the same search code serves the static and
/// the streaming pipeline.
pub trait MatchIndex: Sync {
    /// The topology representation this index carries.
    type View: TopologyView;

    /// The topology view to probe.
    fn view(&self) -> &Self::View;

    /// Candidate nodes for a pattern node labelled `label` (every node
    /// for the wildcard).
    fn candidates(&self, label: LabelId) -> &[NodeId];

    /// How many nodes carry `label` (all nodes for the wildcard).
    fn frequency(&self, label: LabelId) -> usize {
        self.candidates(label).len()
    }

    /// How many edges carry `edge_label` *and* end at a node labelled
    /// `dst_label` — the fan bound of an anchored `FromAnchor` expansion.
    /// Must reflect the *current* view: an overlay implementation reports
    /// delta-adjusted counts, not the frozen-base ones, so match plans
    /// built mid-stream order variables by live selectivity.
    fn out_pair_frequency(&self, edge_label: LabelId, dst_label: LabelId) -> usize;

    /// How many edges carry `edge_label` and start at a node labelled
    /// `src_label` — the `ToAnchor` counterpart of
    /// [`MatchIndex::out_pair_frequency`].
    fn in_pair_frequency(&self, edge_label: LabelId, src_label: LabelId) -> usize;

    /// Total number of indexed nodes.
    fn node_count(&self) -> usize;

    /// Debug-assert the view still reflects `graph`'s topology (see
    /// [`CsrTopology::assert_fresh`]).
    fn assert_fresh(&self, graph: &Graph);
}

impl MatchIndex for LabelIndex {
    type View = CsrTopology;

    #[inline]
    fn view(&self) -> &CsrTopology {
        self.csr()
    }

    #[inline]
    fn candidates(&self, label: LabelId) -> &[NodeId] {
        LabelIndex::candidates(self, label)
    }

    #[inline]
    fn out_pair_frequency(&self, edge_label: LabelId, dst_label: LabelId) -> usize {
        self.csr().out_pair_frequency(edge_label, dst_label)
    }

    #[inline]
    fn in_pair_frequency(&self, edge_label: LabelId, src_label: LabelId) -> usize {
        self.csr().in_pair_frequency(edge_label, src_label)
    }

    #[inline]
    fn node_count(&self) -> usize {
        LabelIndex::node_count(self)
    }

    #[inline]
    fn assert_fresh(&self, graph: &Graph) {
        LabelIndex::assert_fresh(self, graph);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Vocab;

    fn sample() -> (Graph, Vocab) {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e1 = v.label("e1");
        let e2 = v.label("e2");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(t);
        g.add_edge(a, e1, b);
        g.add_edge(a, e2, b);
        g.add_edge(a, e1, c);
        g.add_edge(c, e2, a);
        (g, v)
    }

    #[test]
    fn csr_view_matches_inherent_api() {
        let (g, mut v) = sample();
        let csr = g.freeze();
        let e1 = v.label("e1");
        let a = NodeId::new(0);
        assert_eq!(TopologyView::node_count(&csr), g.node_count());
        assert_eq!(TopologyView::edge_count(&csr), g.edge_count());
        assert_eq!(csr.matching_len(a, Dir::Out, e1), 2);
        assert_eq!(
            csr.matching_len(a, Dir::Out, LabelId::WILDCARD),
            csr.out(a).len()
        );
        let mut seen = Vec::new();
        csr.for_each_matching(a, Dir::Out, e1, |adj| seen.push(adj));
        assert_eq!(seen, csr.out_with_label(a, e1));
        assert!(csr.any_matching(a, Dir::Out, e1, |(_, n)| n == NodeId::new(2)));
        assert!(!csr.any_matching(a, Dir::In, e1, |_| true));
    }

    #[test]
    fn label_index_implements_match_index() {
        let (g, mut v) = sample();
        let idx = LabelIndex::build(&g);
        let t = v.label("t");
        assert_eq!(MatchIndex::candidates(&idx, t).len(), 3);
        assert_eq!(MatchIndex::frequency(&idx, t), 3);
        assert_eq!(MatchIndex::node_count(&idx), 3);
        assert!(MatchIndex::view(&idx).has_edge(NodeId::new(0), v.label("e1"), NodeId::new(1)));
        MatchIndex::assert_fresh(&idx, &g);
    }
}
