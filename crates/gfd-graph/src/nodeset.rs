//! A compact bitset over node ids, used for neighborhood restriction during
//! pivoted matching.

use crate::ids::NodeId;

/// Fixed-capacity bitset over `NodeId`s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// An empty set able to hold nodes `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Insert a node; returns `true` if it was not already present.
    /// Inlined and branchless on the in-capacity path: the bitset anchor
    /// fold calls this once per streamed adjacency edge.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let word = &mut self.words[w];
        let fresh = *word & mask == 0;
        *word |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Remove a node; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        let mask = 1u64 << b;
        match self.words.get_mut(w) {
            Some(word) if *word & mask != 0 => {
                *word &= !mask;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Membership test. Nodes beyond the capacity are absent.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no node is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(NodeId::new(wi * 64 + b))
            })
        })
    }

    /// Remove all members, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Remove the listed nodes without zeroing the whole word array —
    /// the cheap way to reset a large scratch set that only ever held
    /// these members.
    pub fn clear_sparse(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        for n in nodes {
            let (w, b) = (n.index() / 64, n.index() % 64);
            if let Some(word) = self.words.get_mut(w) {
                *word &= !(1u64 << b);
            }
        }
        self.len = 0;
    }

    /// Intersect in place: `self ∩= other`, one `AND` per 64 nodes.
    /// Returns the new cardinality.
    pub fn intersect_with(&mut self, other: &NodeSet) -> usize {
        let n = self.words.len().min(other.words.len());
        let mut len = 0usize;
        for i in 0..n {
            let w = self.words[i] & other.words[i];
            self.words[i] = w;
            len += w.count_ones() as usize;
        }
        for w in &mut self.words[n..] {
            *w = 0;
        }
        self.len = len;
        len
    }

    /// Intersect in place while draining `other`: `self ∩= other` and
    /// every word of `other` is zeroed in the same pass. Fuses the
    /// scratch reset into the merge, so a large reused scratch set
    /// needs neither a full [`NodeSet::clear`] nor a
    /// [`NodeSet::clear_sparse`] replay of its members afterwards.
    /// Returns the new cardinality of `self`.
    pub fn intersect_with_drain(&mut self, other: &mut NodeSet) -> usize {
        let n = self.words.len().min(other.words.len());
        let mut len = 0usize;
        for i in 0..n {
            let w = self.words[i] & other.words[i];
            other.words[i] = 0;
            self.words[i] = w;
            len += w.count_ones() as usize;
        }
        for w in &mut self.words[n..] {
            *w = 0;
        }
        for w in &mut other.words[n..] {
            *w = 0;
        }
        other.len = 0;
        self.len = len;
        len
    }

    /// Subtract in place: `self ∖= other`, one `AND NOT` per 64 nodes.
    /// Returns the new cardinality.
    pub fn difference_with(&mut self, other: &NodeSet) -> usize {
        let n = self.words.len().min(other.words.len());
        let mut len = 0usize;
        for i in 0..n {
            let w = self.words[i] & !other.words[i];
            self.words[i] = w;
            len += w.count_ones() as usize;
        }
        for w in &self.words[n..] {
            len += w.count_ones() as usize;
        }
        self.len = len;
        len
    }

    /// Ensure the word array spans nodes `0..capacity` (for scratch
    /// sets sized once to the graph and reused across frames).
    pub fn reserve_nodes(&mut self, capacity: usize) {
        let need = capacity.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::default();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_clears_single_bits() {
        let mut s = NodeSet::with_capacity(128);
        s.insert(NodeId::new(3));
        s.insert(NodeId::new(100));
        assert!(s.remove(NodeId::new(3)));
        assert!(!s.remove(NodeId::new(3)));
        assert!(!s.remove(NodeId::new(4000)));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(NodeId::new(3)));
        assert!(s.contains(NodeId::new(100)));
    }

    #[test]
    fn insert_contains_len() {
        let mut s = NodeSet::with_capacity(10);
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(3)));
        assert!(!s.insert(NodeId::new(3)));
        assert!(s.insert(NodeId::new(64)));
        assert!(s.contains(NodeId::new(3)));
        assert!(s.contains(NodeId::new(64)));
        assert!(!s.contains(NodeId::new(4)));
        assert!(!s.contains(NodeId::new(1000)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn grows_beyond_capacity() {
        let mut s = NodeSet::with_capacity(1);
        assert!(s.insert(NodeId::new(500)));
        assert!(s.contains(NodeId::new(500)));
    }

    #[test]
    fn iter_is_sorted() {
        let s: NodeSet = [5usize, 1, 130, 64].into_iter().map(NodeId::new).collect();
        let got: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(got, vec![1, 5, 64, 130]);
    }

    #[test]
    fn word_ops_intersect_and_subtract() {
        let a: NodeSet = [1usize, 5, 64, 130, 200]
            .into_iter()
            .map(NodeId::new)
            .collect();
        let b: NodeSet = [5usize, 64, 300].into_iter().map(NodeId::new).collect();
        let mut i = a.clone();
        assert_eq!(i.intersect_with(&b), 2);
        assert_eq!(
            i.iter().map(|n| n.index()).collect::<Vec<_>>(),
            vec![5, 64]
        );
        let mut d = a.clone();
        assert_eq!(d.difference_with(&b), 3);
        assert_eq!(
            d.iter().map(|n| n.index()).collect::<Vec<_>>(),
            vec![1, 130, 200]
        );
        // Shorter `other` word array: the tail survives difference,
        // dies under intersection.
        let small: NodeSet = [1usize].into_iter().map(NodeId::new).collect();
        let mut d2 = a.clone();
        assert_eq!(d2.difference_with(&small), 4);
        assert!(d2.contains(NodeId::new(200)));
        let mut i2 = a.clone();
        assert_eq!(i2.intersect_with(&small), 1);
        assert!(!i2.contains(NodeId::new(200)));
    }

    #[test]
    fn intersect_with_drain_merges_and_resets_other() {
        let mut cand: NodeSet = [1usize, 5, 64, 130, 200]
            .into_iter()
            .map(NodeId::new)
            .collect();
        let mut adj: NodeSet = [5usize, 64, 300].into_iter().map(NodeId::new).collect();
        adj.reserve_nodes(1024);
        assert_eq!(cand.intersect_with_drain(&mut adj), 2);
        assert_eq!(
            cand.iter().map(|n| n.index()).collect::<Vec<_>>(),
            vec![5, 64]
        );
        assert!(adj.is_empty());
        assert!(!adj.contains(NodeId::new(300)));
        // The drained scratch is reusable immediately.
        adj.insert(NodeId::new(64));
        assert_eq!(cand.intersect_with_drain(&mut adj), 1);
        assert!(cand.contains(NodeId::new(64)));
        assert!(adj.is_empty());
    }

    #[test]
    fn clear_sparse_resets_only_listed_bits() {
        let mut s = NodeSet::with_capacity(256);
        s.reserve_nodes(1024);
        s.insert(NodeId::new(3));
        s.insert(NodeId::new(700));
        s.clear_sparse([NodeId::new(3), NodeId::new(700)]);
        assert!(s.is_empty());
        assert!(!s.contains(NodeId::new(3)));
        assert!(!s.contains(NodeId::new(700)));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = NodeSet::with_capacity(128);
        s.insert(NodeId::new(100));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId::new(100)));
    }
}
