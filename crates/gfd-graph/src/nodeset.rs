//! A compact bitset over node ids, used for neighborhood restriction during
//! pivoted matching.

use crate::ids::NodeId;

/// Fixed-capacity bitset over `NodeId`s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// An empty set able to hold nodes `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Insert a node; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Membership test. Nodes beyond the capacity are absent.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no node is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(NodeId::new(wi * 64 + b))
            })
        })
    }

    /// Remove all members, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::default();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = NodeSet::with_capacity(10);
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(3)));
        assert!(!s.insert(NodeId::new(3)));
        assert!(s.insert(NodeId::new(64)));
        assert!(s.contains(NodeId::new(3)));
        assert!(s.contains(NodeId::new(64)));
        assert!(!s.contains(NodeId::new(4)));
        assert!(!s.contains(NodeId::new(1000)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn grows_beyond_capacity() {
        let mut s = NodeSet::with_capacity(1);
        assert!(s.insert(NodeId::new(500)));
        assert!(s.contains(NodeId::new(500)));
    }

    #[test]
    fn iter_is_sorted() {
        let s: NodeSet = [5usize, 1, 130, 64].into_iter().map(NodeId::new).collect();
        let got: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(got, vec![1, 5, 64, 130]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = NodeSet::with_capacity(128);
        s.insert(NodeId::new(100));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId::new(100)));
    }
}
