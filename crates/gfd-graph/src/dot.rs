//! Graphviz DOT export for graphs and patterns (debugging / documentation).

use crate::graph::Graph;
use crate::interner::Vocab;
use crate::pattern::Pattern;
use std::fmt::Write as _;

/// Render a data graph in DOT format.
pub fn graph_to_dot(graph: &Graph, vocab: &Vocab, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {} {{", sanitize(name));
    for v in graph.nodes() {
        let mut label = format!("{}: {}", v, vocab.label_name(graph.label(v)));
        for (attr, value) in graph.attrs(v) {
            let _ = write!(label, "\\n{}={}", vocab.attr_name(*attr), value);
        }
        let _ = writeln!(s, "  {} [label=\"{}\"];", v.index(), escape(&label));
    }
    for (src, label, dst) in graph.edges() {
        let _ = writeln!(
            s,
            "  {} -> {} [label=\"{}\"];",
            src.index(),
            dst.index(),
            escape(vocab.label_name(label))
        );
    }
    s.push_str("}\n");
    s
}

/// Render a pattern in DOT format (wildcards shown as `_`).
pub fn pattern_to_dot(pattern: &Pattern, vocab: &Vocab, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {} {{", sanitize(name));
    for v in pattern.vars() {
        let _ = writeln!(
            s,
            "  {} [label=\"{}: {}\" shape=box];",
            v.index(),
            escape(pattern.var_name(v)),
            escape(vocab.label_name(pattern.label(v)))
        );
    }
    for e in pattern.edges() {
        let _ = writeln!(
            s,
            "  {} -> {} [label=\"{}\"];",
            e.src.index(),
            e.dst.index(),
            escape(vocab.label_name(e.label))
        );
    }
    s.push_str("}\n");
    s
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "G".to_string()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn graph_dot_contains_nodes_edges_attrs() {
        let mut v = Vocab::new();
        let mut g = Graph::new();
        let a = g.add_node(v.label("person"));
        let b = g.add_node(v.label("place"));
        g.add_edge(a, v.label("livesIn"), b);
        g.set_attr(a, v.attr("name"), Value::str("ann"));
        let dot = graph_to_dot(&g, &v, "demo graph");
        assert!(dot.starts_with("digraph demo_graph {"));
        assert!(dot.contains("person"));
        assert!(dot.contains("livesIn"));
        assert!(dot.contains("name=ann"));
        assert!(dot.contains("0 -> 1"));
    }

    #[test]
    fn pattern_dot_shows_wildcard() {
        use crate::ids::LabelId;
        let mut v = Vocab::new();
        let mut p = Pattern::new();
        let x = p.add_node(LabelId::WILDCARD, "x");
        let y = p.add_node(v.label("speed"), "y");
        p.add_edge(x, v.label("topSpeed"), y);
        let dot = pattern_to_dot(&p, &v, "q2");
        assert!(dot.contains("x: _"));
        assert!(dot.contains("topSpeed"));
    }

    #[test]
    fn escaping_quotes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(sanitize(""), "G");
    }
}
