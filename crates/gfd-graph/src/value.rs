//! Attribute values carried by graph nodes.

use std::fmt;
use std::sync::Arc;

/// A constant attribute value.
///
/// GFD literals compare values for equality only, so the variants just need
/// `Eq + Hash`; `Ord` is provided to keep reports and model extraction
/// deterministic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer, e.g. `x.age = 42`.
    Int(i64),
    /// Boolean, e.g. `x.verified = true`.
    Bool(bool),
    /// Interned string; cheap to clone.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the string contents if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short type tag used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_eq!(Value::int(3), Value::from(3i64));
        assert_ne!(Value::Int(0), Value::Bool(false));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(format!("{:?}", Value::str("hi")), "\"hi\"");
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::int(9).as_int(), Some(9));
        assert_eq!(Value::int(9).as_str(), None);
        assert_eq!(Value::Bool(true).type_name(), "bool");
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::int(1),
                Value::int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }
}
