//! Attribute values carried by graph nodes, and the global interning
//! table that maps every value to a dense [`ValueId`] so the matching
//! hot path compares raw `u32`s instead of `Arc<str>` contents.

use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// A constant attribute value.
///
/// GFD literals compare values for equality only, so the variants just need
/// `Eq + Hash`; `Ord` is provided to keep reports and model extraction
/// deterministic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer, e.g. `x.age = 42`.
    Int(i64),
    /// Boolean, e.g. `x.verified = true`.
    Bool(bool),
    /// Interned string; cheap to clone.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the string contents if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short type tag used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

// ---------------------------------------------------------------------------
// Interned value ids
// ---------------------------------------------------------------------------

/// Tag stored in the top two bits of a [`ValueId`].
const TAG_SHIFT: u32 = 30;
/// Payload mask: low 30 bits.
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
/// Inline small integer (payload is the value biased by [`INT_BIAS`]).
const TAG_INT: u32 = 0;
/// Boolean (payload 0 = false, 1 = true).
const TAG_BOOL: u32 = 1;
/// Interned string (payload indexes the global string table).
const TAG_STR: u32 = 2;
/// Out-of-range integer (payload indexes the global big-int table).
const TAG_BIG: u32 = 3;
/// Bias for inline integers: payload = value + BIAS, so payload order
/// equals numeric order for the whole inline range.
const INT_BIAS: i64 = 1 << 29;

/// A dedup-interned attribute value, packed into a `u32`.
///
/// Layout: the top two bits are a type tag, the low 30 bits a payload.
/// Small integers in `[-2^29, 2^29)` and booleans are encoded inline
/// (no table access at all); strings and out-of-range integers index
/// append-only global tables (see [`ValueTable`]). Interning dedups, so
/// **id equality is value equality** and `==`/`Hash` are raw `u32` ops —
/// this is the whole point: every hot-path literal check becomes one
/// integer compare.
///
/// `Ord` is *semantic*: it resolves through the table when needed so
/// that sorting ids yields exactly the order the boundary [`Value`]
/// type defines (ints numerically, then bools, then strings
/// lexicographically). Keeps reports, model extraction and violation
/// fingerprints byte-identical to the pre-interning pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueId(u32);

impl ValueId {
    /// Sentinel for "no value" in columnar attribute storage. Never a
    /// valid interned value (the big-int table refuses its payload).
    pub const NONE: ValueId = ValueId(u32::MAX);

    /// Intern `v` and return its id. The main constructor in tests and
    /// boundary code: `ValueId::of("ann")`, `ValueId::of(42i64)`.
    pub fn of(v: impl Into<Value>) -> ValueId {
        ValueTable::intern(&v.into())
    }

    /// Is this the missing-value sentinel?
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// Is this a real interned value (not [`ValueId::NONE`])?
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != u32::MAX
    }

    /// The raw packed representation (tag + payload).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    #[inline]
    fn tag(self) -> u32 {
        self.0 >> TAG_SHIFT
    }

    #[inline]
    fn payload(self) -> u32 {
        self.0 & PAYLOAD_MASK
    }

    /// Resolve back to an owned [`Value`]. Boundary-only: rendering,
    /// serialization, model extraction. Panics on [`ValueId::NONE`].
    pub fn resolve(self) -> Value {
        assert!(!self.is_none(), "cannot resolve ValueId::NONE");
        match self.tag() {
            TAG_INT => Value::Int(i64::from(self.payload()) - INT_BIAS),
            TAG_BOOL => Value::Bool(self.payload() != 0),
            TAG_STR => Value::Str(ValueTable::resolve_str(self.payload())),
            _ => Value::Int(ValueTable::resolve_big(self.payload())),
        }
    }

    /// The integer, if this id encodes one (inline or big-table).
    pub fn as_int(self) -> Option<i64> {
        match self.tag() {
            TAG_INT => Some(i64::from(self.payload()) - INT_BIAS),
            TAG_BIG if !self.is_none() => Some(ValueTable::resolve_big(self.payload())),
            _ => None,
        }
    }

    /// The string contents, if this id encodes a string.
    pub fn as_str(self) -> Option<Arc<str>> {
        match self.tag() {
            TAG_STR => Some(ValueTable::resolve_str(self.payload())),
            _ => None,
        }
    }

    /// A short type tag used in error messages.
    pub fn type_name(self) -> &'static str {
        match self.tag() {
            TAG_INT | TAG_BIG => "int",
            TAG_BOOL => "bool",
            _ => "str",
        }
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "<none>")
        } else {
            write!(f, "{:?}", self.resolve())
        }
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "<none>")
        } else {
            write!(f, "{}", self.resolve())
        }
    }
}

impl PartialOrd for ValueId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ValueId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        // Inline ints order by payload (the bias is monotone).
        if self.tag() == TAG_INT && other.tag() == TAG_INT {
            return self.0.cmp(&other.0);
        }
        self.resolve().cmp(&other.resolve())
    }
}

/// The global value-interning table.
///
/// Process-wide and append-only: once a value has an id, that id never
/// changes, so chase workers can clone equivalence-relation snapshots
/// freely and ids stay consistent across threads. All interning happens
/// at parse/ingest/rule-construction time — the matching hot path only
/// compares ids and never takes the lock.
pub struct ValueTable;

#[derive(Default)]
struct ValueTableInner {
    strs: Vec<Arc<str>>,
    str_ids: FxHashMap<Arc<str>, u32>,
    bigs: Vec<i64>,
    big_ids: FxHashMap<i64, u32>,
}

fn table() -> &'static RwLock<ValueTableInner> {
    static TABLE: OnceLock<RwLock<ValueTableInner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(ValueTableInner::default()))
}

impl ValueTable {
    /// Intern a value.
    pub fn intern(v: &Value) -> ValueId {
        match v {
            Value::Int(i) => Self::intern_int(*i),
            Value::Bool(b) => Self::intern_bool(*b),
            Value::Str(s) => Self::intern_str(s),
        }
    }

    /// Intern an integer. Small ints encode inline without touching the
    /// table; out-of-range ints go to the big-int side table.
    pub fn intern_int(i: i64) -> ValueId {
        if (-INT_BIAS..INT_BIAS).contains(&i) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            return ValueId((i + INT_BIAS) as u32);
        }
        {
            let t = table().read().expect("value table poisoned");
            if let Some(&idx) = t.big_ids.get(&i) {
                return ValueId((TAG_BIG << TAG_SHIFT) | idx);
            }
        }
        let mut t = table().write().expect("value table poisoned");
        if let Some(&idx) = t.big_ids.get(&i) {
            return ValueId((TAG_BIG << TAG_SHIFT) | idx);
        }
        let idx = u32::try_from(t.bigs.len()).expect("big-int table overflow");
        assert!(idx < PAYLOAD_MASK, "big-int table overflow");
        t.bigs.push(i);
        t.big_ids.insert(i, idx);
        ValueId((TAG_BIG << TAG_SHIFT) | idx)
    }

    /// Intern a boolean (inline, no table access).
    #[inline]
    pub fn intern_bool(b: bool) -> ValueId {
        ValueId((TAG_BOOL << TAG_SHIFT) | u32::from(b))
    }

    /// Intern a string. Repeated occurrences share one table entry (and
    /// one `Arc<str>` allocation) — this is the ingest-dedup fix.
    pub fn intern_str(s: &str) -> ValueId {
        {
            let t = table().read().expect("value table poisoned");
            if let Some(&idx) = t.str_ids.get(s) {
                return ValueId((TAG_STR << TAG_SHIFT) | idx);
            }
        }
        let mut t = table().write().expect("value table poisoned");
        if let Some(&idx) = t.str_ids.get(s) {
            return ValueId((TAG_STR << TAG_SHIFT) | idx);
        }
        let idx = u32::try_from(t.strs.len()).expect("string table overflow");
        assert!(idx < PAYLOAD_MASK, "string table overflow");
        let arc: Arc<str> = Arc::from(s);
        t.strs.push(arc.clone());
        t.str_ids.insert(arc, idx);
        ValueId((TAG_STR << TAG_SHIFT) | idx)
    }

    /// Intern a string that is already an `Arc<str>`, reusing the
    /// allocation if it becomes the table entry.
    pub fn intern_arc(s: &Arc<str>) -> ValueId {
        {
            let t = table().read().expect("value table poisoned");
            if let Some(&idx) = t.str_ids.get(&**s) {
                return ValueId((TAG_STR << TAG_SHIFT) | idx);
            }
        }
        let mut t = table().write().expect("value table poisoned");
        if let Some(&idx) = t.str_ids.get(&**s) {
            return ValueId((TAG_STR << TAG_SHIFT) | idx);
        }
        let idx = u32::try_from(t.strs.len()).expect("string table overflow");
        assert!(idx < PAYLOAD_MASK, "string table overflow");
        t.strs.push(s.clone());
        t.str_ids.insert(s.clone(), idx);
        ValueId((TAG_STR << TAG_SHIFT) | idx)
    }

    /// Look up a string without interning it.
    pub fn lookup_str(s: &str) -> Option<ValueId> {
        let t = table().read().expect("value table poisoned");
        t.str_ids
            .get(s)
            .map(|&idx| ValueId((TAG_STR << TAG_SHIFT) | idx))
    }

    /// Number of distinct strings interned so far (regression hook for
    /// the ingest-dedup tests).
    pub fn str_count() -> usize {
        table().read().expect("value table poisoned").strs.len()
    }

    fn resolve_str(idx: u32) -> Arc<str> {
        table().read().expect("value table poisoned").strs[idx as usize].clone()
    }

    fn resolve_big(idx: u32) -> i64 {
        table().read().expect("value table poisoned").bigs[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_eq!(Value::int(3), Value::from(3i64));
        assert_ne!(Value::Int(0), Value::Bool(false));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(format!("{:?}", Value::str("hi")), "\"hi\"");
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::int(9).as_int(), Some(9));
        assert_eq!(Value::int(9).as_str(), None);
        assert_eq!(Value::Bool(true).type_name(), "bool");
    }

    #[test]
    fn value_ids_dedup_and_roundtrip() {
        let a = ValueId::of("vt-roundtrip-α");
        let b = ValueId::of("vt-roundtrip-α");
        assert_eq!(a, b);
        assert_eq!(a.resolve(), Value::str("vt-roundtrip-α"));
        assert_ne!(a, ValueId::of("vt-roundtrip-β"));
        assert_eq!(ValueId::of(42i64).resolve(), Value::int(42));
        assert_eq!(ValueId::of(true).resolve(), Value::Bool(true));
        assert_eq!(ValueId::of(""), ValueId::of(String::new()));
    }

    #[test]
    fn small_ints_and_bools_are_inline() {
        // Inline encodings never touch the table: distinct values,
        // distinct ids, same id for same value, payload order = value
        // order.
        assert_eq!(ValueId::of(0i64).as_int(), Some(0));
        assert_eq!(ValueId::of(-7i64).as_int(), Some(-7));
        assert!(ValueId::of(-1i64) < ValueId::of(0i64));
        assert!(ValueId::of(0i64) < ValueId::of(1i64));
        assert_ne!(ValueId::of(0i64), ValueId::of(false));
        // Out-of-range ints round-trip through the big table.
        let big = i64::MAX - 3;
        assert_eq!(ValueId::of(big).as_int(), Some(big));
        assert_eq!(ValueId::of(big), ValueId::of(big));
    }

    #[test]
    fn id_ordering_matches_value_ordering() {
        let mut vals = vec![
            Value::str("vt-ord-b"),
            Value::int(2),
            Value::int(i64::MIN),
            Value::Bool(false),
            Value::str("vt-ord-a"),
            Value::int(-1),
            Value::Bool(true),
            Value::str(""),
        ];
        let mut ids: Vec<ValueId> = vals.iter().map(ValueTable::intern).collect();
        vals.sort();
        ids.sort();
        let resolved: Vec<Value> = ids.iter().map(|id| id.resolve()).collect();
        assert_eq!(resolved, vals);
    }

    #[test]
    fn id_debug_display_match_value() {
        for v in [
            Value::str("hi"),
            Value::int(-4),
            Value::Bool(true),
            Value::int(1 << 40),
        ] {
            let id = ValueTable::intern(&v);
            assert_eq!(format!("{id:?}"), format!("{v:?}"));
            assert_eq!(format!("{id}"), format!("{v}"));
        }
        assert_eq!(format!("{:?}", ValueId::NONE), "<none>");
    }

    #[test]
    fn none_is_never_a_valid_value() {
        assert!(ValueId::NONE.is_none());
        assert!(!ValueId::of(0i64).is_none());
        assert_eq!(ValueId::NONE.as_int(), None);
        assert_eq!(ValueId::NONE.as_str(), None);
    }

    #[test]
    fn interning_is_idempotent_under_contention() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| ValueId::of(format!("vt-contend-{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<ValueId>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in &results[1..] {
            assert_eq!(*w, results[0]);
        }
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::int(1),
                Value::int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }
}
