//! Frozen CSR (compressed sparse row) topology with label-sorted
//! adjacency — the query-optimized graph representation the matching hot
//! path runs on.
//!
//! [`Graph`] stays the mutable *builder* representation
//! (`Vec<Vec<(LabelId, NodeId)>>` adjacency, cheap to append to);
//! [`CsrTopology`] is built once per finished graph ([`Graph::freeze`],
//! or implicitly by [`crate::LabelIndex::build`]) and never mutated.
//! Out- and in-adjacency live in flat `(offsets, Box<[Adj]>)` arrays and
//! each node's neighbor slice is sorted by `(edge label, node id)`, which
//! buys three things (complexity table in DESIGN.md §2):
//!
//! * **edge probes** (`has_edge`, concrete-label `has_edge_pattern`)
//!   become binary searches: `O(log d)` instead of the builder's `O(d)`
//!   scan;
//! * **anchored expansion** fetches the per-`(node, label)` sub-slice in
//!   `O(log d)` via `partition_point` and iterates exactly the `k`
//!   label-matching neighbors, instead of filtering the full list;
//! * within a label sub-slice node ids are **strictly increasing**, so
//!   multi-anchor intersection and candidate dedup are sorted merges
//!   instead of `Vec::contains` scans.
//!
//! The builder also tallies per-label and per-`(edge label, endpoint
//! label)` frequencies, which the match planner uses as real selectivity
//! statistics instead of node-label counts alone.

use crate::graph::{Adj, Graph};
use crate::ids::{LabelId, NodeId};
use rustc_hash::FxHashMap;

/// The frozen, query-optimized topology of a [`Graph`].
///
/// Construction is `O(|V| + |E| log d)`; the structure holds no
/// attribute data and stays valid as long as the source graph's
/// *topology* is unchanged (attribute updates are fine — enforcement
/// mutates attributes, never edges).
#[derive(Clone, Debug, Default)]
pub struct CsrTopology {
    /// `out_adj[out_offsets[v] .. out_offsets[v + 1]]` are `v`'s
    /// out-edges sorted by `(label, target)`.
    out_offsets: Box<[u32]>,
    out_adj: Box<[Adj]>,
    /// Same layout for in-edges, `(label, source)`-sorted.
    in_offsets: Box<[u32]>,
    in_adj: Box<[Adj]>,
    /// Directed edge count per edge label, sorted by label.
    label_counts: Box<[(LabelId, u32)]>,
    /// Edge count per `(edge label, target label)`.
    out_pairs: FxHashMap<(LabelId, LabelId), u32>,
    /// Edge count per `(edge label, source label)`.
    in_pairs: FxHashMap<(LabelId, LabelId), u32>,
    edge_count: usize,
    /// The source graph's [`Graph::topology_version`] at freeze time.
    /// [`CsrTopology::assert_fresh`] compares it against the live graph to
    /// fail fast on post-freeze topology mutation.
    frozen_version: u64,
}

/// The `(label, ·)`-sub-slice of one node's sorted adjacency. Shared
/// with the delta overlay, which keeps its per-node add/tombstone
/// vectors in the same `(label, node)` order.
#[inline]
pub(crate) fn label_slice(adj: &[Adj], label: LabelId) -> &[Adj] {
    let lo = adj.partition_point(|&(l, _)| l < label);
    let hi = lo + adj[lo..].partition_point(|&(l, _)| l == label);
    &adj[lo..hi]
}

impl CsrTopology {
    /// Freeze `graph`'s topology. Equivalent to [`Graph::freeze`].
    pub fn build(graph: &Graph) -> Self {
        let n = graph.node_count();
        assert!(
            graph.edge_count() <= u32::MAX as usize,
            "CSR offsets are u32: graph has too many edges"
        );

        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_adj = Vec::with_capacity(graph.edge_count());
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_adj = Vec::with_capacity(graph.edge_count());
        let mut label_counts: FxHashMap<LabelId, u32> = FxHashMap::default();
        let mut out_pairs: FxHashMap<(LabelId, LabelId), u32> = FxHashMap::default();
        let mut in_pairs: FxHashMap<(LabelId, LabelId), u32> = FxHashMap::default();

        out_offsets.push(0u32);
        in_offsets.push(0u32);
        for v in graph.nodes() {
            let start = out_adj.len();
            out_adj.extend_from_slice(graph.out_edges(v));
            out_adj[start..].sort_unstable();
            out_offsets.push(out_adj.len() as u32);

            let start = in_adj.len();
            in_adj.extend_from_slice(graph.in_edges(v));
            in_adj[start..].sort_unstable();
            in_offsets.push(in_adj.len() as u32);
        }
        for (src, label, dst) in graph.edges() {
            *label_counts.entry(label).or_insert(0) += 1;
            *out_pairs.entry((label, graph.label(dst))).or_insert(0) += 1;
            *in_pairs.entry((label, graph.label(src))).or_insert(0) += 1;
        }
        let mut label_counts: Vec<(LabelId, u32)> = label_counts.into_iter().collect();
        label_counts.sort_unstable();

        CsrTopology {
            out_offsets: out_offsets.into_boxed_slice(),
            out_adj: out_adj.into_boxed_slice(),
            in_offsets: in_offsets.into_boxed_slice(),
            in_adj: in_adj.into_boxed_slice(),
            label_counts: label_counts.into_boxed_slice(),
            out_pairs,
            in_pairs,
            edge_count: graph.edge_count(),
            frozen_version: graph.topology_version(),
        }
    }

    /// The source graph's topology version this view was frozen at.
    #[inline]
    pub fn frozen_version(&self) -> u64 {
        self.frozen_version
    }

    /// Debug-assert that `graph`'s topology has not changed since this
    /// view was frozen. DESIGN.md §1 documents the staleness hazard —
    /// edges added after `freeze()`/`LabelIndex::build` are invisible to
    /// probes; this turns the silent wrong answer into an immediate panic
    /// on the matching entry points (debug builds only).
    #[inline]
    pub fn assert_fresh(&self, graph: &Graph) {
        debug_assert_eq!(
            self.frozen_version,
            graph.topology_version(),
            "stale frozen topology: the graph was mutated after freeze() / \
             LabelIndex::build (frozen at version {}, graph now at {}); \
             re-freeze before matching",
            self.frozen_version,
            graph.topology_version(),
        );
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len().saturating_sub(1)
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-edges of `v` as `(label, target)`, sorted by `(label, target)`.
    #[inline]
    pub fn out(&self, v: NodeId) -> &[Adj] {
        let i = v.index();
        &self.out_adj[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-edges of `v` as `(label, source)`, sorted by `(label, source)`.
    #[inline]
    pub fn inn(&self, v: NodeId) -> &[Adj] {
        let i = v.index();
        &self.in_adj[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// The out-edges of `v` labelled exactly `label`: a sub-slice with
    /// strictly increasing target ids, located in `O(log d)`.
    #[inline]
    pub fn out_with_label(&self, v: NodeId, label: LabelId) -> &[Adj] {
        label_slice(self.out(v), label)
    }

    /// The in-edges of `v` labelled exactly `label`.
    #[inline]
    pub fn in_with_label(&self, v: NodeId, label: LabelId) -> &[Adj] {
        label_slice(self.inn(v), label)
    }

    /// Out-edges of `v` matched by the (possibly wildcard) pattern label:
    /// the full slice for the wildcard, the label sub-slice otherwise.
    #[inline]
    pub fn out_matching(&self, v: NodeId, label: LabelId) -> &[Adj] {
        if label.is_wildcard() {
            self.out(v)
        } else {
            self.out_with_label(v, label)
        }
    }

    /// In-edges of `v` matched by the (possibly wildcard) pattern label.
    #[inline]
    pub fn in_matching(&self, v: NodeId, label: LabelId) -> &[Adj] {
        if label.is_wildcard() {
            self.inn(v)
        } else {
            self.in_with_label(v, label)
        }
    }

    /// True iff the edge `src --label--> dst` exists: a binary search of
    /// the smaller endpoint slice.
    pub fn has_edge(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        let o = self.out(src);
        let i = self.inn(dst);
        if o.len() <= i.len() {
            o.binary_search(&(label, dst)).is_ok()
        } else {
            i.binary_search(&(label, src)).is_ok()
        }
    }

    /// True iff an edge `src --l--> dst` exists whose label is matched by
    /// the (possibly wildcard) pattern label `label`.
    pub fn has_edge_pattern(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        if !label.is_wildcard() {
            return self.has_edge(src, label, dst);
        }
        // Wildcard: any label connects them; scan the smaller slice.
        let o = self.out(src);
        let i = self.inn(dst);
        if o.len() <= i.len() {
            o.iter().any(|&(_, d)| d == dst)
        } else {
            i.iter().any(|&(_, s)| s == src)
        }
    }

    /// How many directed edges carry `label` (all edges for the
    /// wildcard). `O(log |labels|)`.
    pub fn edge_label_frequency(&self, label: LabelId) -> usize {
        if label.is_wildcard() {
            return self.edge_count;
        }
        match self.label_counts.binary_search_by_key(&label, |&(l, _)| l) {
            Ok(i) => self.label_counts[i].1 as usize,
            Err(_) => 0,
        }
    }

    /// How many edges carry `edge_label` *and* end at a node labelled
    /// `dst_label` — the real frequency of the label pair an anchored
    /// `FromAnchor` expansion traverses. Wildcards fall back to the
    /// single-label counts.
    pub fn out_pair_frequency(&self, edge_label: LabelId, dst_label: LabelId) -> usize {
        if edge_label.is_wildcard() || dst_label.is_wildcard() {
            return self.edge_label_frequency(edge_label);
        }
        self.out_pairs
            .get(&(edge_label, dst_label))
            .map_or(0, |&c| c as usize)
    }

    /// How many edges carry `edge_label` and start at a node labelled
    /// `src_label` — the `ToAnchor` counterpart of
    /// [`CsrTopology::out_pair_frequency`].
    pub fn in_pair_frequency(&self, edge_label: LabelId, src_label: LabelId) -> usize {
        if edge_label.is_wildcard() || src_label.is_wildcard() {
            return self.edge_label_frequency(edge_label);
        }
        self.in_pairs
            .get(&(edge_label, src_label))
            .map_or(0, |&c| c as usize)
    }
}

impl Graph {
    /// Freeze the current topology into a [`CsrTopology`].
    ///
    /// Call once construction is finished; edges added afterwards are
    /// invisible to the frozen view (attribute updates are fine).
    pub fn freeze(&self) -> CsrTopology {
        CsrTopology::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Vocab;

    /// Graph with parallel edges under distinct labels, a self-loop and a
    /// high-degree hub.
    fn build_sample() -> (Graph, Vocab) {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e1 = v.label("e1");
        let e2 = v.label("e2");
        let mut g = Graph::new();
        let hub = g.add_node(t);
        g.add_edge(hub, e1, hub); // self-loop
        for i in 0..20 {
            let leaf = g.add_node(t);
            g.add_edge(hub, e1, leaf);
            if i % 2 == 0 {
                g.add_edge(hub, e2, leaf); // parallel edge, distinct label
            }
            if i % 3 == 0 {
                g.add_edge(leaf, e2, hub);
            }
        }
        (g, v)
    }

    #[test]
    fn csr_agrees_with_vec_scan_on_every_probe() {
        let (g, _) = build_sample();
        let csr = g.freeze();
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for src in g.nodes() {
            for dst in g.nodes() {
                for l in 0..4u32 {
                    let l = LabelId(l);
                    assert_eq!(
                        csr.has_edge(src, l, dst),
                        g.has_edge(src, l, dst),
                        "has_edge({src}, {l}, {dst})"
                    );
                    assert_eq!(
                        csr.has_edge_pattern(src, l, dst),
                        g.has_edge_pattern(src, l, dst),
                        "has_edge_pattern({src}, {l}, {dst})"
                    );
                }
            }
        }
    }

    #[test]
    fn slices_are_label_sorted_and_complete() {
        let (g, _) = build_sample();
        let csr = g.freeze();
        for v in g.nodes() {
            let out = csr.out(v);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            let mut expected: Vec<Adj> = g.out_edges(v).to_vec();
            expected.sort_unstable();
            assert_eq!(out, &expected[..]);

            let inn = csr.inn(v);
            assert!(inn.windows(2).all(|w| w[0] < w[1]));
            let mut expected: Vec<Adj> = g.in_edges(v).to_vec();
            expected.sort_unstable();
            assert_eq!(inn, &expected[..]);
        }
    }

    #[test]
    fn label_subslices_partition_the_adjacency() {
        let (g, mut v) = build_sample();
        let csr = g.freeze();
        let e1 = v.label("e1");
        let e2 = v.label("e2");
        let hub = NodeId::new(0);
        let s1 = csr.out_with_label(hub, e1);
        let s2 = csr.out_with_label(hub, e2);
        assert_eq!(s1.len() + s2.len(), csr.out(hub).len());
        assert!(s1.iter().all(|&(l, _)| l == e1));
        assert!(s2.iter().all(|&(l, _)| l == e2));
        // Node ids strictly increase inside a label sub-slice.
        assert!(s1.windows(2).all(|w| w[0].1 < w[1].1));
        assert!(s2.windows(2).all(|w| w[0].1 < w[1].1));
        // Absent label: empty slice, not a panic.
        assert!(csr.out_with_label(hub, v.label("nope")).is_empty());
    }

    #[test]
    fn matching_slices_respect_wildcards() {
        let (g, mut v) = build_sample();
        let csr = g.freeze();
        let hub = NodeId::new(0);
        assert_eq!(csr.out_matching(hub, LabelId::WILDCARD), csr.out(hub));
        assert_eq!(
            csr.out_matching(hub, v.label("e1")),
            csr.out_with_label(hub, v.label("e1"))
        );
        assert_eq!(csr.in_matching(hub, LabelId::WILDCARD), csr.inn(hub));
    }

    #[test]
    fn frequency_stats_count_real_edges() {
        let (g, mut v) = build_sample();
        let csr = g.freeze();
        let t = v.label("t");
        let e1 = v.label("e1");
        let e2 = v.label("e2");
        let e1_count = g.edges().filter(|&(_, l, _)| l == e1).count();
        let e2_count = g.edges().filter(|&(_, l, _)| l == e2).count();
        assert_eq!(csr.edge_label_frequency(e1), e1_count);
        assert_eq!(csr.edge_label_frequency(e2), e2_count);
        assert_eq!(csr.edge_label_frequency(LabelId::WILDCARD), g.edge_count());
        assert_eq!(csr.edge_label_frequency(v.label("never")), 0);
        // All endpoints are labelled `t`, so pair counts match label counts.
        assert_eq!(csr.out_pair_frequency(e1, t), e1_count);
        assert_eq!(csr.in_pair_frequency(e2, t), e2_count);
        assert_eq!(csr.out_pair_frequency(e1, v.label("u")), 0);
        // Wildcard on either side falls back to the label count.
        assert_eq!(csr.out_pair_frequency(LabelId::WILDCARD, t), g.edge_count());
        assert_eq!(csr.out_pair_frequency(e1, LabelId::WILDCARD), e1_count);
    }

    #[test]
    fn freeze_records_the_topology_version() {
        let (mut g, mut v) = build_sample();
        let csr = g.freeze();
        assert_eq!(csr.frozen_version(), g.topology_version());
        csr.assert_fresh(&g); // must not panic
                              // Attribute updates do not invalidate the frozen view.
        g.set_attr(NodeId::new(0), crate::AttrId::new(0), crate::Value::int(1));
        csr.assert_fresh(&g);
        // Edge insertion does.
        let t = v.label("t");
        let e9 = v.label("e9");
        let n = g.add_node(t);
        g.add_edge(NodeId::new(0), e9, n);
        assert_ne!(csr.frozen_version(), g.topology_version());
        // Re-freezing catches up.
        let csr2 = g.freeze();
        csr2.assert_fresh(&g);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale frozen topology")]
    fn stale_frozen_view_fails_fast_in_debug() {
        let (mut g, mut v) = build_sample();
        let csr = g.freeze();
        let e = v.label("late-edge");
        g.add_edge(NodeId::new(0), e, NodeId::new(1));
        csr.assert_fresh(&g);
    }

    #[test]
    fn empty_and_isolated_graphs_freeze() {
        let g = Graph::new();
        let csr = g.freeze();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);

        let mut v = Vocab::new();
        let mut g = Graph::new();
        let a = g.add_node(v.label("t"));
        let csr = g.freeze();
        assert!(csr.out(a).is_empty());
        assert!(csr.inn(a).is_empty());
        assert!(!csr.has_edge(a, v.label("e"), a));
    }
}
