//! Property tests pinning the frozen CSR topology to the builder
//! (`Vec`-scan) adjacency it is derived from: every probe the matching
//! hot path performs must return identical results on both
//! representations, for arbitrary graphs including parallel edges with
//! distinct labels and wildcard-labelled canonical nodes/edges.

#![cfg(test)]

use crate::graph::{Adj, Graph};
use crate::ids::{LabelId, NodeId};
use proptest::prelude::*;

/// Random graphs over up to 10 nodes, node labels 0..4 (0 is the
/// wildcard, as in canonical graphs), edge labels 0..4, with enough edge
/// density to produce parallel edges under distinct labels and
/// self-loops.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..10).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..4, n);
        let edges = proptest::collection::vec(((0..n), 0u32..4, (0..n)), 0..(3 * n));
        (labels, edges).prop_map(move |(labels, edges)| {
            let mut g = Graph::new();
            for l in labels {
                g.add_node(LabelId(l));
            }
            for (s, l, d) in edges {
                g.add_edge(NodeId::new(s), LabelId(l), NodeId::new(d));
            }
            g
        })
    })
}

/// The Vec-scan reference for an anchored expansion candidate list: the
/// label-matching neighbors of `v`, deduplicated, ascending.
fn vec_scan_candidates(adjacency: &[Adj], label: LabelId) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = adjacency
        .iter()
        .filter(|(l, _)| label.pattern_matches(*l))
        .map(|&(_, n)| n)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `has_edge` / `has_edge_pattern` agree with the builder scans for
    /// every (src, label, dst) triple, wildcard included.
    #[test]
    fn csr_edge_probes_match_vec_scan(g in arb_graph()) {
        let csr = g.freeze();
        for src in g.nodes() {
            for dst in g.nodes() {
                for l in 0u32..5 {
                    let l = LabelId(l);
                    prop_assert_eq!(csr.has_edge(src, l, dst), g.has_edge(src, l, dst));
                    prop_assert_eq!(
                        csr.has_edge_pattern(src, l, dst),
                        g.has_edge_pattern(src, l, dst)
                    );
                }
            }
        }
    }

    /// Per-node neighbor slices hold exactly the builder adjacency,
    /// sorted by (label, node) with strictly increasing node ids inside
    /// each label sub-slice.
    #[test]
    fn csr_neighbor_slices_match_vec_scan(g in arb_graph()) {
        let csr = g.freeze();
        for v in g.nodes() {
            let mut expected = g.out_edges(v).to_vec();
            expected.sort_unstable();
            prop_assert_eq!(csr.out(v), &expected[..]);
            prop_assert!(csr.out(v).windows(2).all(|w| w[0] < w[1]));

            let mut expected = g.in_edges(v).to_vec();
            expected.sort_unstable();
            prop_assert_eq!(csr.inn(v), &expected[..]);

            for l in 0u32..5 {
                let l = LabelId(l);
                let sub = csr.out_with_label(v, l);
                prop_assert!(sub.iter().all(|&(sl, _)| sl == l));
                prop_assert_eq!(
                    sub.len(),
                    g.out_edges(v).iter().filter(|&&(sl, _)| sl == l).count()
                );
                prop_assert!(sub.windows(2).all(|w| w[0].1 < w[1].1));
            }
        }
    }

    /// Anchored-expansion candidate lists from the label sub-slices are
    /// identical to the Vec-scan filter over the whole adjacency — the
    /// property `HomSearch::make_frame` relies on.
    #[test]
    fn csr_candidate_slices_match_vec_scan(g in arb_graph()) {
        let csr = g.freeze();
        for v in g.nodes() {
            for l in 0u32..5 {
                let l = LabelId(l);
                let mut from_csr: Vec<NodeId> =
                    csr.out_matching(v, l).iter().map(|&(_, n)| n).collect();
                from_csr.sort_unstable();
                from_csr.dedup();
                prop_assert_eq!(from_csr, vec_scan_candidates(g.out_edges(v), l));

                let mut from_csr: Vec<NodeId> =
                    csr.in_matching(v, l).iter().map(|&(_, n)| n).collect();
                from_csr.sort_unstable();
                from_csr.dedup();
                prop_assert_eq!(from_csr, vec_scan_candidates(g.in_edges(v), l));
            }
        }
    }

    /// Frequency statistics count exactly the edges the builder holds.
    #[test]
    fn csr_frequency_stats_match_edge_counts(g in arb_graph()) {
        let csr = g.freeze();
        for l in 1u32..5 {
            let l = LabelId(l);
            prop_assert_eq!(
                csr.edge_label_frequency(l),
                g.edges().filter(|&(_, el, _)| el == l).count()
            );
            for nl in 1u32..5 {
                let nl = LabelId(nl);
                prop_assert_eq!(
                    csr.out_pair_frequency(l, nl),
                    g.edges()
                        .filter(|&(_, el, d)| el == l && g.label(d) == nl)
                        .count()
                );
                prop_assert_eq!(
                    csr.in_pair_frequency(l, nl),
                    g.edges()
                        .filter(|&(s, el, _)| el == l && g.label(s) == nl)
                        .count()
                );
            }
        }
        prop_assert_eq!(csr.edge_label_frequency(LabelId::WILDCARD), g.edge_count());
    }
}

/// Random delta streams over the graph: sequences of node inserts, edge
/// inserts (duplicates included) and edge deletes (absent edges
/// included), exercising tombstones, resurrections and delta nodes.
fn arb_delta_ops() -> impl Strategy<Value = Vec<(u8, usize, u32, usize)>> {
    proptest::collection::vec((0u8..3, 0usize..12, 0u32..4, 0usize..12), 0..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// After an arbitrary update stream, every probe of the delta overlay
    /// equals the same probe on a fresh freeze of the mutated builder —
    /// the invariant the incremental detection engine stands on.
    #[test]
    fn delta_overlay_agrees_with_refreeze(g in arb_graph(), ops in arb_delta_ops()) {
        use crate::view::{Dir, TopologyView};
        let mut g = g;
        let mut view = crate::delta::DeltaCsr::new(g.freeze());
        for (kind, s, l, d) in ops {
            match kind {
                0 => {
                    let id = g.add_node(LabelId(l));
                    prop_assert_eq!(view.add_node(), id);
                }
                _ => {
                    let n = g.node_count();
                    let (src, dst) = (NodeId::new(s % n), NodeId::new(d % n));
                    let label = LabelId(l);
                    if kind == 1 {
                        let inserted = view.insert_edge(src, label, dst);
                        prop_assert_eq!(inserted, !g.has_edge(src, label, dst));
                        g.add_edge(src, label, dst);
                    } else {
                        let removed = view.remove_edge(src, label, dst);
                        prop_assert_eq!(removed, g.remove_edge(src, label, dst));
                    }
                }
            }
        }
        let csr = g.freeze();
        prop_assert_eq!(TopologyView::node_count(&view), g.node_count());
        prop_assert_eq!(TopologyView::edge_count(&view), g.edge_count());
        for v in g.nodes() {
            for dir in [Dir::Out, Dir::In] {
                for l in 0u32..5 {
                    let l = LabelId(l);
                    prop_assert_eq!(
                        view.matching_len(v, dir, l),
                        csr.matching_len(v, dir, l)
                    );
                    let mut got = Vec::new();
                    view.for_each_matching(v, dir, l, |a| got.push(a));
                    let mut want = Vec::new();
                    csr.for_each_matching(v, dir, l, |a| want.push(a));
                    prop_assert_eq!(got, want);
                }
            }
            for u in g.nodes() {
                for l in 0u32..5 {
                    let l = LabelId(l);
                    prop_assert_eq!(view.has_edge(v, l, u), csr.has_edge(v, l, u));
                    prop_assert_eq!(
                        view.has_edge_pattern(v, l, u),
                        csr.has_edge_pattern(v, l, u)
                    );
                }
            }
        }
    }

    /// `Graph::remove_edge` inverts `add_edge` and keeps both adjacency
    /// directions and the edge count consistent.
    #[test]
    fn remove_edge_inverts_add_edge(g in arb_graph()) {
        let mut g = g;
        let edges: Vec<_> = g.edges().collect();
        for &(s, l, d) in &edges {
            prop_assert!(g.remove_edge(s, l, d));
            prop_assert!(!g.has_edge(s, l, d));
            prop_assert!(!g.remove_edge(s, l, d), "double delete must fail");
        }
        prop_assert_eq!(g.edge_count(), 0);
        for v in g.nodes() {
            prop_assert!(g.out_edges(v).is_empty());
            prop_assert!(g.in_edges(v).is_empty());
        }
    }
}

/// Regression: duplicate parallel edges with distinct labels must appear
/// once per label in the CSR and produce one candidate under a wildcard
/// probe (the sorted-merge dedup case), while identical re-added triples
/// stay deduplicated by the builder.
#[test]
fn parallel_edges_with_distinct_labels_regression() {
    let mut g = Graph::new();
    let t = LabelId(1);
    let a = g.add_node(t);
    let b = g.add_node(t);
    let e1 = LabelId(2);
    let e2 = LabelId(3);
    g.add_edge(a, e1, b);
    g.add_edge(a, e2, b);
    g.add_edge(a, e1, b); // identical triple: builder ignores it
    let csr = g.freeze();

    assert_eq!(csr.edge_count(), 2);
    assert_eq!(csr.out(a), &[(e1, b), (e2, b)]);
    assert_eq!(csr.out_with_label(a, e1), &[(e1, b)]);
    assert_eq!(csr.out_with_label(a, e2), &[(e2, b)]);
    assert!(csr.has_edge(a, e1, b));
    assert!(csr.has_edge(a, e2, b));
    assert!(!csr.has_edge(b, e1, a));
    // Wildcard probe sees b twice across label groups; dedup must reduce
    // the candidate list to one entry.
    let mut cands: Vec<NodeId> = csr
        .out_matching(a, LabelId::WILDCARD)
        .iter()
        .map(|&(_, n)| n)
        .collect();
    cands.sort_unstable();
    cands.dedup();
    assert_eq!(cands, vec![b]);
    assert!(csr.has_edge_pattern(a, LabelId::WILDCARD, b));
}
