//! String interning for labels and attribute names.

use crate::ids::{AttrId, LabelId};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// A bidirectional string ↔ `u32` map.
#[derive(Clone, Default, Debug)]
pub struct Interner {
    to_id: FxHashMap<Arc<str>, u32>,
    to_str: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its id; repeated calls return the same id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.to_id.get(s) {
            return id;
        }
        let id = self.to_str.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.to_str.push(arc.clone());
        self.to_id.insert(arc, id);
        id
    }

    /// Look up an already-interned string.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.to_id.get(s).copied()
    }

    /// Resolve an id back to its string. Panics on a foreign id.
    pub fn resolve(&self, id: u32) -> &str {
        &self.to_str[id as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.to_str.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.to_str.is_empty()
    }

    /// Iterate `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.to_str
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }
}

/// The shared vocabulary of a reasoning session: node/edge labels and
/// attribute names.
///
/// Graphs, patterns and GFDs store only ids; a `Vocab` is needed to print
/// them or to parse text input. The wildcard label `"_"` is interned first so
/// that [`LabelId::WILDCARD`] is valid in every vocabulary.
#[derive(Clone, Debug)]
pub struct Vocab {
    labels: Interner,
    attrs: Interner,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// A fresh vocabulary with the wildcard label pre-interned.
    pub fn new() -> Self {
        let mut labels = Interner::new();
        let wildcard = labels.intern("_");
        debug_assert_eq!(wildcard, LabelId::WILDCARD.0);
        Vocab {
            labels,
            attrs: Interner::new(),
        }
    }

    /// Intern a node/edge label.
    pub fn label(&mut self, name: &str) -> LabelId {
        LabelId(self.labels.intern(name))
    }

    /// Intern an attribute name.
    pub fn attr(&mut self, name: &str) -> AttrId {
        AttrId(self.attrs.intern(name))
    }

    /// Look up a label without interning.
    pub fn find_label(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name).map(LabelId)
    }

    /// Look up an attribute without interning.
    pub fn find_attr(&self, name: &str) -> Option<AttrId> {
        self.attrs.get(name).map(AttrId)
    }

    /// Resolve a label id to its name.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.resolve(id.0)
    }

    /// Resolve an attribute id to its name.
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attrs.resolve(id.0)
    }

    /// Number of distinct labels (including the wildcard).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct attribute names.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Iterate all labels in id order (starts with `"_"`).
    pub fn labels(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.labels.iter().map(|(i, s)| (LabelId(i), s))
    }

    /// Iterate all attribute names in id order.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.attrs.iter().map(|(i, s)| (AttrId(i), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("person");
        let b = i.intern("place");
        let a2 = i.intern("person");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "person");
        assert_eq!(i.resolve(b), "place");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let id = i.intern("x");
        assert_eq!(i.get("x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn vocab_reserves_wildcard() {
        let mut v = Vocab::new();
        assert_eq!(v.find_label("_"), Some(LabelId::WILDCARD));
        assert_eq!(v.label("_"), LabelId::WILDCARD);
        assert_eq!(v.label_name(LabelId::WILDCARD), "_");
        let person = v.label("person");
        assert!(!person.is_wildcard());
        assert_eq!(v.label_name(person), "person");
    }

    #[test]
    fn vocab_attrs_are_separate_namespace() {
        let mut v = Vocab::new();
        let l = v.label("name");
        let a = v.attr("name");
        // Same spelling, independent id spaces.
        assert_eq!(v.label_name(l), v.attr_name(a));
        assert_eq!(v.attr_count(), 1);
        assert_eq!(v.label_count(), 2); // "_" + "name"
    }

    #[test]
    fn iteration_in_id_order() {
        let mut v = Vocab::new();
        v.label("a");
        v.label("b");
        let names: Vec<&str> = v.labels().map(|(_, s)| s).collect();
        assert_eq!(names, vec!["_", "a", "b"]);
    }
}
