//! Delta-CSR overlay for streaming topology updates (DESIGN.md §8).
//!
//! The freeze lifecycle of §1 (build → freeze → match) assumes a static
//! graph: any post-freeze topology change invalidates the CSR and forces
//! a full re-freeze. Streaming workloads apply small [`DeltaBatch`]es —
//! edge/node insertions, edge deletions, attribute writes — continuously,
//! so this module layers a mutable *overlay* over the immutable base:
//!
//! * [`DeltaCsr`] — per-node **sorted delta adjacency** (additions) and
//!   **tombstones** (deletions of base edges) on top of a frozen
//!   [`CsrTopology`]. Probes check base and delta with two binary
//!   searches (`O(log d + log δ)`); iteration is the sorted merge of the
//!   base label sub-slice (skipping tombstones) with the delta sub-slice,
//!   so every [`TopologyView`] ordering guarantee is preserved.
//! * [`DeltaIndex`] — a [`DeltaCsr`] plus the label→candidates map kept
//!   in sync as delta nodes arrive; the overlay-path counterpart of
//!   [`LabelIndex`], and a [`MatchIndex`] the matcher runs on unchanged.
//! * [`DeltaBatch`] / [`DeltaOp`] — the update model. A batch applies to
//!   the builder [`Graph`] (which stays the source of truth) and to the
//!   overlay in lockstep; [`DeltaIndex::apply`] does both and reports the
//!   **dirty nodes** incremental detection re-reasons around.
//!
//! When the overlay grows past a threshold fraction of the base edge
//! count ([`DeltaIndex::delta_fraction`]), probes have lost enough
//! locality that the owner should **compact**: re-freeze base + delta
//! into a fresh CSR ([`DeltaIndex::build`] on the up-to-date graph) and
//! start an empty overlay.

use crate::csr::{label_slice, CsrTopology};
use crate::graph::{Adj, Graph, LabelIndex};
use crate::ids::{AttrId, LabelId, NodeId};
use crate::value::{Value, ValueId, ValueTable};
use crate::view::{Dir, MatchIndex, TopologyView};
use rustc_hash::FxHashMap;
use std::ops::ControlFlow;

/// Per-node sorted overlay adjacency, keyed by node id. Sparse: only
/// nodes the delta touched have entries.
type OverlayAdj = FxHashMap<u32, Vec<Adj>>;

/// One topology or attribute update in a [`DeltaBatch`].
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp {
    /// Append a node with the given label; it receives the next dense id.
    AddNode {
        /// Label of the new node.
        label: LabelId,
    },
    /// Insert the directed edge `src --label--> dst` (a no-op if it
    /// already exists, mirroring [`Graph::add_edge`]).
    AddEdge {
        /// Source node.
        src: NodeId,
        /// Edge label.
        label: LabelId,
        /// Destination node.
        dst: NodeId,
    },
    /// Delete the directed edge `src --label--> dst` (a no-op if absent).
    DelEdge {
        /// Source node.
        src: NodeId,
        /// Edge label.
        label: LabelId,
        /// Destination node.
        dst: NodeId,
    },
    /// Set (or overwrite) attribute `attr` of `node` to `value`.
    SetAttr {
        /// Target node.
        node: NodeId,
        /// Attribute id.
        attr: AttrId,
        /// New value (interned).
        value: ValueId,
    },
}

/// An ordered batch of updates, applied atomically between detection
/// passes. Ops referring to nodes created earlier in the same batch use
/// the absolute ids those nodes will receive (`graph.node_count()` at
/// application time, counting prior `AddNode` ops).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaBatch {
    /// The updates, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Append a node insertion.
    pub fn add_node(&mut self, label: LabelId) {
        self.ops.push(DeltaOp::AddNode { label });
    }

    /// Append an edge insertion.
    pub fn add_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) {
        self.ops.push(DeltaOp::AddEdge { src, label, dst });
    }

    /// Append an edge deletion.
    pub fn del_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) {
        self.ops.push(DeltaOp::DelEdge { src, label, dst });
    }

    /// Append an attribute write.
    pub fn set_attr(&mut self, node: NodeId, attr: AttrId, value: impl Into<Value>) {
        self.set_attr_id(node, attr, ValueTable::intern(&value.into()));
    }

    /// Set (or overwrite) attribute `attr` of `node` to an interned id.
    pub fn set_attr_id(&mut self, node: NodeId, attr: AttrId, value: ValueId) {
        self.ops.push(DeltaOp::SetAttr { node, attr, value });
    }

    /// Apply this batch to a builder graph alone (the from-scratch
    /// reference path: mutate, then re-freeze and re-detect). Returns the
    /// dirty nodes — the nodes whose incident topology or attributes
    /// actually changed, plus every created node.
    pub fn apply_to_graph(&self, graph: &mut Graph) -> Vec<NodeId> {
        let mut dirty = Vec::new();
        for op in &self.ops {
            match op {
                DeltaOp::AddNode { label } => {
                    dirty.push(graph.add_node(*label));
                }
                DeltaOp::AddEdge { src, label, dst } => {
                    if !graph.has_edge(*src, *label, *dst) {
                        graph.add_edge(*src, *label, *dst);
                        dirty.push(*src);
                        dirty.push(*dst);
                    }
                }
                DeltaOp::DelEdge { src, label, dst } => {
                    if graph.remove_edge(*src, *label, *dst) {
                        dirty.push(*src);
                        dirty.push(*dst);
                    }
                }
                DeltaOp::SetAttr { node, attr, value } => {
                    graph.set_attr_id(*node, *attr, *value);
                    dirty.push(*node);
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }
}

/// Insert `entry` into a `(label, node)`-sorted vector if absent.
/// Returns false when it was already present.
fn sorted_insert(vec: &mut Vec<Adj>, entry: Adj) -> bool {
    match vec.binary_search(&entry) {
        Ok(_) => false,
        Err(i) => {
            vec.insert(i, entry);
            true
        }
    }
}

/// Remove `entry` from a sorted vector. Returns false when absent.
fn sorted_remove(vec: &mut Vec<Adj>, entry: Adj) -> bool {
    match vec.binary_search(&entry) {
        Ok(i) => {
            vec.remove(i);
            true
        }
        Err(_) => false,
    }
}

fn contains_sorted(map: &OverlayAdj, node: NodeId, entry: Adj) -> bool {
    map.get(&(node.index() as u32))
        .is_some_and(|v| v.binary_search(&entry).is_ok())
}

/// The label-matching sub-slice of a sorted delta vector.
fn map_slice(map: &OverlayAdj, node: NodeId, label: LabelId) -> &[Adj] {
    let Some(vec) = map.get(&(node.index() as u32)) else {
        return &[];
    };
    if label.is_wildcard() {
        vec
    } else {
        label_slice(vec, label)
    }
}

/// A frozen [`CsrTopology`] base plus a sorted per-node delta overlay:
/// the topology view of a graph that has received updates since its last
/// freeze, without paying a full re-freeze per batch.
///
/// Invariants: `adds` and the base are disjoint (re-inserting a
/// tombstoned base edge clears the tombstone instead of duplicating the
/// edge); tombstones (`dels`) always name live base edges.
#[derive(Clone, Debug, Default)]
pub struct DeltaCsr {
    base: CsrTopology,
    /// Nodes in the base CSR; ids at or above this are delta nodes with
    /// no base adjacency.
    base_nodes: usize,
    add_out: OverlayAdj,
    add_in: OverlayAdj,
    del_out: OverlayAdj,
    del_in: OverlayAdj,
    node_count: usize,
    edge_count: usize,
    added_edges: usize,
    deleted_edges: usize,
}

impl DeltaCsr {
    /// Start an empty overlay over a frozen base.
    pub fn new(base: CsrTopology) -> Self {
        let base_nodes = base.node_count();
        let edge_count = base.edge_count();
        DeltaCsr {
            base,
            base_nodes,
            add_out: OverlayAdj::default(),
            add_in: OverlayAdj::default(),
            del_out: OverlayAdj::default(),
            del_in: OverlayAdj::default(),
            node_count: base_nodes,
            edge_count,
            added_edges: 0,
            deleted_edges: 0,
        }
    }

    /// The frozen base this overlay layers over.
    pub fn base(&self) -> &CsrTopology {
        &self.base
    }

    /// Total overlay size: added edges + tombstones + appended nodes.
    /// The compaction trigger compares this against the base edge count.
    pub fn delta_size(&self) -> usize {
        self.added_edges + self.deleted_edges + (self.node_count - self.base_nodes)
    }

    /// Append a delta node (no base adjacency), returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.node_count);
        self.node_count += 1;
        id
    }

    /// Is the edge visible in the base, i.e. present and not tombstoned?
    fn in_base(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        src.index() < self.base_nodes
            && dst.index() < self.base_nodes
            && self.base.has_edge(src, label, dst)
            && !contains_sorted(&self.del_out, src, (label, dst))
    }

    /// Insert `src --label--> dst`. Returns false when the edge already
    /// exists (mirrors [`Graph::add_edge`] dedup semantics).
    pub fn insert_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        assert!(src.index() < self.node_count, "insert_edge: bad src");
        assert!(dst.index() < self.node_count, "insert_edge: bad dst");
        // Re-inserting a tombstoned base edge resurrects it.
        if contains_sorted(&self.del_out, src, (label, dst)) {
            sorted_remove(
                self.del_out.get_mut(&(src.index() as u32)).unwrap(),
                (label, dst),
            );
            sorted_remove(
                self.del_in.get_mut(&(dst.index() as u32)).unwrap(),
                (label, src),
            );
            self.deleted_edges -= 1;
            self.edge_count += 1;
            return true;
        }
        if self.in_base(src, label, dst) || contains_sorted(&self.add_out, src, (label, dst)) {
            return false;
        }
        sorted_insert(
            self.add_out.entry(src.index() as u32).or_default(),
            (label, dst),
        );
        sorted_insert(
            self.add_in.entry(dst.index() as u32).or_default(),
            (label, src),
        );
        self.added_edges += 1;
        self.edge_count += 1;
        true
    }

    /// Delete `src --label--> dst`. Returns false when the edge does not
    /// exist in this view.
    pub fn remove_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        if src.index() >= self.node_count || dst.index() >= self.node_count {
            return false;
        }
        // A delta addition is simply retracted.
        if contains_sorted(&self.add_out, src, (label, dst)) {
            sorted_remove(
                self.add_out.get_mut(&(src.index() as u32)).unwrap(),
                (label, dst),
            );
            sorted_remove(
                self.add_in.get_mut(&(dst.index() as u32)).unwrap(),
                (label, src),
            );
            self.added_edges -= 1;
            self.edge_count -= 1;
            return true;
        }
        // A live base edge gets a tombstone.
        if self.in_base(src, label, dst) {
            sorted_insert(
                self.del_out.entry(src.index() as u32).or_default(),
                (label, dst),
            );
            sorted_insert(
                self.del_in.entry(dst.index() as u32).or_default(),
                (label, src),
            );
            self.deleted_edges += 1;
            self.edge_count -= 1;
            return true;
        }
        false
    }

    /// The base adjacency sub-slice of `v` matched by `label` (empty for
    /// delta nodes).
    fn base_matching(&self, v: NodeId, dir: Dir, label: LabelId) -> &[Adj] {
        if v.index() >= self.base_nodes {
            return &[];
        }
        match dir {
            Dir::Out => self.base.out_matching(v, label),
            Dir::In => self.base.in_matching(v, label),
        }
    }

    fn overlay_maps(&self, dir: Dir) -> (&OverlayAdj, &OverlayAdj) {
        match dir {
            Dir::Out => (&self.add_out, &self.del_out),
            Dir::In => (&self.add_in, &self.del_in),
        }
    }
}

impl TopologyView for DeltaCsr {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn has_edge(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        if src.index() >= self.node_count || dst.index() >= self.node_count {
            return false;
        }
        self.in_base(src, label, dst) || contains_sorted(&self.add_out, src, (label, dst))
    }

    fn has_edge_pattern(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        if !label.is_wildcard() {
            return self.has_edge(src, label, dst);
        }
        if src.index() >= self.node_count || dst.index() >= self.node_count {
            return false;
        }
        self.any_matching(src, Dir::Out, LabelId::WILDCARD, |(_, d)| d == dst)
    }

    fn matching_len(&self, v: NodeId, dir: Dir, label: LabelId) -> usize {
        let (adds, dels) = self.overlay_maps(dir);
        self.base_matching(v, dir, label).len() + map_slice(adds, v, label).len()
            - map_slice(dels, v, label).len()
    }

    fn try_for_matching(
        &self,
        v: NodeId,
        dir: Dir,
        label: LabelId,
        f: &mut dyn FnMut(Adj) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let base = self.base_matching(v, dir, label);
        let (adds, dels) = self.overlay_maps(dir);
        let adds = map_slice(adds, v, label);
        let dels = map_slice(dels, v, label);
        // Sorted three-way walk: base ∪ adds (disjoint), minus tombstones
        // (a subset of base). Emission order stays (label, node)-ascending.
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < base.len() || j < adds.len() {
            let take_base = j >= adds.len() || (i < base.len() && base[i] < adds[j]);
            if take_base {
                let e = base[i];
                i += 1;
                while k < dels.len() && dels[k] < e {
                    k += 1;
                }
                if k < dels.len() && dels[k] == e {
                    k += 1;
                    continue;
                }
                f(e)?;
            } else {
                let e = adds[j];
                j += 1;
                f(e)?;
            }
        }
        ControlFlow::Continue(())
    }
}

/// The nodes a batch application touched, in the shape incremental
/// detection consumes.
#[derive(Clone, Debug, Default)]
pub struct AppliedBatch {
    /// Nodes whose incident topology or attributes changed — endpoints
    /// of inserted/deleted edges, attribute-write targets, and every
    /// created node — sorted and deduplicated.
    pub dirty: Vec<NodeId>,
    /// Ids of the nodes this batch created, in creation order.
    pub new_nodes: Vec<NodeId>,
}

/// The overlay-path counterpart of [`LabelIndex`]: a [`DeltaCsr`] plus
/// label candidate lists kept in sync as delta nodes arrive, versioned
/// against the builder graph so stale views still fail fast.
#[derive(Clone, Debug, Default)]
pub struct DeltaIndex {
    by_label: FxHashMap<LabelId, Vec<NodeId>>,
    all: Vec<NodeId>,
    delta: DeltaCsr,
    /// Net overlay change to each `(edge label, dst label)` pair count —
    /// keeps [`MatchIndex::out_pair_frequency`] honest between freezes.
    pair_out: FxHashMap<(LabelId, LabelId), i64>,
    /// Net overlay change to each `(edge label, src label)` pair count.
    pair_in: FxHashMap<(LabelId, LabelId), i64>,
    /// Net overlay change per edge label (the wildcard-endpoint fallback).
    edge_label_delta: FxHashMap<LabelId, i64>,
    /// [`Graph::topology_version`] this view currently reflects.
    version: u64,
}

impl DeltaIndex {
    /// Freeze `graph` and start an empty overlay — the compaction entry
    /// point. Equivalent to `LabelIndex::build(graph).into_delta()`.
    pub fn build(graph: &Graph) -> Self {
        LabelIndex::build(graph).into_delta()
    }

    /// Wrap an already-built [`LabelIndex`], reusing its freeze.
    pub(crate) fn from_label_index(index: LabelIndex) -> Self {
        let (by_label, all, csr) = index.into_parts();
        let version = csr.frozen_version();
        DeltaIndex {
            by_label,
            all,
            delta: DeltaCsr::new(csr),
            pair_out: FxHashMap::default(),
            pair_in: FxHashMap::default(),
            edge_label_delta: FxHashMap::default(),
            version,
        }
    }

    /// Record a net pair-count change for an edge `src --label--> dst`
    /// (`sign` is `+1` on insert, `-1` on delete).
    fn record_edge_stat(
        &mut self,
        graph: &Graph,
        src: NodeId,
        label: LabelId,
        dst: NodeId,
        sign: i64,
    ) {
        *self.pair_out.entry((label, graph.label(dst))).or_insert(0) += sign;
        *self.pair_in.entry((label, graph.label(src))).or_insert(0) += sign;
        *self.edge_label_delta.entry(label).or_insert(0) += sign;
    }

    /// The overlay view (also reachable through [`MatchIndex::view`]).
    pub fn delta(&self) -> &DeltaCsr {
        &self.delta
    }

    /// Overlay size relative to the base edge count, the compaction
    /// trigger: once this passes the owner's threshold, re-freeze via
    /// [`DeltaIndex::build`] on the up-to-date graph.
    pub fn delta_fraction(&self) -> f64 {
        self.delta.delta_size() as f64 / self.delta.base().edge_count().max(1) as f64
    }

    /// Apply `batch` to the builder graph and this overlay in lockstep.
    ///
    /// The graph stays the source of truth (compaction re-freezes from
    /// it); the overlay keeps matching correct without a re-freeze. The
    /// returned [`AppliedBatch`] lists the dirty nodes the incremental
    /// detector re-reasons around. No-op updates (duplicate inserts,
    /// deletes of absent edges) dirty nothing.
    pub fn apply(&mut self, batch: &DeltaBatch, graph: &mut Graph) -> AppliedBatch {
        let mut out = AppliedBatch::default();
        for op in &batch.ops {
            match op {
                DeltaOp::AddNode { label } => {
                    let id = graph.add_node(*label);
                    let did = self.delta.add_node();
                    debug_assert_eq!(id, did, "graph/overlay node ids diverged");
                    self.by_label.entry(*label).or_default().push(id);
                    self.all.push(id);
                    out.dirty.push(id);
                    out.new_nodes.push(id);
                }
                DeltaOp::AddEdge { src, label, dst } => {
                    if self.delta.insert_edge(*src, *label, *dst) {
                        graph.add_edge(*src, *label, *dst);
                        self.record_edge_stat(graph, *src, *label, *dst, 1);
                        out.dirty.push(*src);
                        out.dirty.push(*dst);
                    }
                }
                DeltaOp::DelEdge { src, label, dst } => {
                    if self.delta.remove_edge(*src, *label, *dst) {
                        let removed = graph.remove_edge(*src, *label, *dst);
                        debug_assert!(removed, "graph/overlay edge sets diverged");
                        self.record_edge_stat(graph, *src, *label, *dst, -1);
                        out.dirty.push(*src);
                        out.dirty.push(*dst);
                    }
                }
                DeltaOp::SetAttr { node, attr, value } => {
                    graph.set_attr_id(*node, *attr, *value);
                    out.dirty.push(*node);
                }
            }
        }
        self.version = graph.topology_version();
        debug_assert_eq!(self.delta.edge_count, graph.edge_count());
        debug_assert_eq!(self.delta.node_count, graph.node_count());
        out.dirty.sort_unstable();
        out.dirty.dedup();
        out
    }
}

impl MatchIndex for DeltaIndex {
    type View = DeltaCsr;

    #[inline]
    fn view(&self) -> &DeltaCsr {
        &self.delta
    }

    fn candidates(&self, label: LabelId) -> &[NodeId] {
        if label.is_wildcard() {
            &self.all
        } else {
            self.by_label.get(&label).map_or(&[], Vec::as_slice)
        }
    }

    fn out_pair_frequency(&self, edge_label: LabelId, dst_label: LabelId) -> usize {
        if edge_label.is_wildcard() {
            return TopologyView::edge_count(&self.delta);
        }
        if dst_label.is_wildcard() {
            let base = self.delta.base().edge_label_frequency(edge_label) as i64;
            let adj = self.edge_label_delta.get(&edge_label).copied().unwrap_or(0);
            return (base + adj).max(0) as usize;
        }
        let base = self.delta.base().out_pair_frequency(edge_label, dst_label) as i64;
        let adj = self
            .pair_out
            .get(&(edge_label, dst_label))
            .copied()
            .unwrap_or(0);
        (base + adj).max(0) as usize
    }

    fn in_pair_frequency(&self, edge_label: LabelId, src_label: LabelId) -> usize {
        if edge_label.is_wildcard() {
            return TopologyView::edge_count(&self.delta);
        }
        if src_label.is_wildcard() {
            let base = self.delta.base().edge_label_frequency(edge_label) as i64;
            let adj = self.edge_label_delta.get(&edge_label).copied().unwrap_or(0);
            return (base + adj).max(0) as usize;
        }
        let base = self.delta.base().in_pair_frequency(edge_label, src_label) as i64;
        let adj = self
            .pair_in
            .get(&(edge_label, src_label))
            .copied()
            .unwrap_or(0);
        (base + adj).max(0) as usize
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.all.len()
    }

    /// Debug-assert this overlay reflects `graph`'s *current* topology —
    /// i.e. every mutation since the base freeze went through
    /// [`DeltaIndex::apply`] rather than bypassing the overlay.
    fn assert_fresh(&self, graph: &Graph) {
        debug_assert_eq!(
            self.version,
            graph.topology_version(),
            "stale delta overlay: the graph was mutated outside DeltaIndex::apply \
             (overlay at version {}, graph now at {}); route updates through \
             DeltaIndex::apply or rebuild with DeltaIndex::build",
            self.version,
            graph.topology_version(),
        );
    }
}

impl LabelIndex {
    /// Convert this index into the delta-overlay form, reusing its
    /// freeze: the entry point of the streaming lifecycle
    /// (build → freeze → **overlay deltas** → compact → re-freeze).
    pub fn into_delta(self) -> DeltaIndex {
        DeltaIndex::from_label_index(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Vocab;

    fn sample() -> (Graph, Vocab) {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e1 = v.label("e1");
        let e2 = v.label("e2");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(t);
        g.add_edge(a, e1, b);
        g.add_edge(a, e2, b);
        g.add_edge(b, e1, c);
        g.add_edge(c, e2, a);
        (g, v)
    }

    /// Every probe of the overlay must agree with a fresh freeze of the
    /// mutated builder graph.
    fn assert_agrees_with_refreeze(view: &DeltaCsr, graph: &Graph) {
        let csr = graph.freeze();
        assert_eq!(view.node_count(), graph.node_count());
        assert_eq!(TopologyView::edge_count(view), graph.edge_count());
        for src in graph.nodes() {
            for dir in [Dir::Out, Dir::In] {
                for l in 0u32..5 {
                    let l = LabelId(l);
                    assert_eq!(
                        view.matching_len(src, dir, l),
                        csr.matching_len(src, dir, l),
                        "matching_len({src}, {dir:?}, {l})"
                    );
                    let mut got = Vec::new();
                    view.for_each_matching(src, dir, l, |a| got.push(a));
                    let mut want = Vec::new();
                    csr.for_each_matching(src, dir, l, |a| want.push(a));
                    assert_eq!(got, want, "for_each_matching({src}, {dir:?}, {l})");
                    assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
                }
            }
            for dst in graph.nodes() {
                for l in 0u32..5 {
                    let l = LabelId(l);
                    assert_eq!(view.has_edge(src, l, dst), csr.has_edge(src, l, dst));
                    assert_eq!(
                        view.has_edge_pattern(src, l, dst),
                        csr.has_edge_pattern(src, l, dst)
                    );
                }
            }
        }
    }

    #[test]
    fn empty_overlay_is_the_base() {
        let (g, _) = sample();
        let view = DeltaCsr::new(g.freeze());
        assert_eq!(view.delta_size(), 0);
        assert_agrees_with_refreeze(&view, &g);
    }

    #[test]
    fn insertions_merge_into_label_slices() {
        let (mut g, mut v) = sample();
        let mut view = DeltaCsr::new(g.freeze());
        let t = v.label("t");
        let e1 = v.label("e1");
        let d = g.add_node(t);
        assert_eq!(view.add_node(), d);
        // New edges around old and new nodes, including a parallel label.
        for (s, l, t2) in [
            (NodeId::new(0), e1, d),
            (d, e1, NodeId::new(1)),
            (NodeId::new(0), v.label("e3"), NodeId::new(2)),
        ] {
            assert!(view.insert_edge(s, l, t2));
            g.add_edge(s, l, t2);
        }
        assert_eq!(view.delta_size(), 4);
        assert_agrees_with_refreeze(&view, &g);
        // Duplicate insert is a no-op on both.
        assert!(!view.insert_edge(NodeId::new(0), e1, d));
    }

    #[test]
    fn deletions_tombstone_base_edges() {
        let (mut g, mut v) = sample();
        let mut view = DeltaCsr::new(g.freeze());
        let e1 = v.label("e1");
        assert!(view.remove_edge(NodeId::new(0), e1, NodeId::new(1)));
        assert!(g.remove_edge(NodeId::new(0), e1, NodeId::new(1)));
        assert!(!view.has_edge(NodeId::new(0), e1, NodeId::new(1)));
        // The parallel e2 edge survives.
        assert!(view.has_edge(NodeId::new(0), v.label("e2"), NodeId::new(1)));
        assert_eq!(view.delta_size(), 1);
        assert_agrees_with_refreeze(&view, &g);
        // Deleting again: gone already.
        assert!(!view.remove_edge(NodeId::new(0), e1, NodeId::new(1)));
    }

    #[test]
    fn reinsert_after_delete_resurrects_the_base_edge() {
        let (g, mut v) = sample();
        let mut view = DeltaCsr::new(g.freeze());
        let e1 = v.label("e1");
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert!(view.remove_edge(a, e1, b));
        assert!(view.insert_edge(a, e1, b));
        assert!(view.has_edge(a, e1, b));
        assert_eq!(view.delta_size(), 0, "tombstone cleared, not stacked");
        assert_agrees_with_refreeze(&view, &g);
    }

    #[test]
    fn delete_then_retract_a_delta_addition() {
        let (g, mut v) = sample();
        let mut view = DeltaCsr::new(g.freeze());
        let e9 = v.label("e9");
        let (a, c) = (NodeId::new(0), NodeId::new(2));
        assert!(view.insert_edge(a, e9, c));
        assert!(view.remove_edge(a, e9, c));
        assert!(!view.has_edge(a, e9, c));
        assert_eq!(view.delta_size(), 0);
        assert_agrees_with_refreeze(&view, &g);
    }

    #[test]
    fn delta_index_applies_batches_in_lockstep() {
        let (mut g, mut v) = sample();
        let t = v.label("t");
        let e1 = v.label("e1");
        let name = v.attr("name");
        let mut idx = DeltaIndex::build(&g);

        let mut batch = DeltaBatch::new();
        batch.add_node(t); // becomes n3
        batch.add_edge(NodeId::new(3), e1, NodeId::new(0));
        batch.del_edge(NodeId::new(0), e1, NodeId::new(1));
        batch.del_edge(NodeId::new(0), e1, NodeId::new(2)); // absent: no-op
        batch.set_attr(NodeId::new(1), name, Value::str("bob"));
        let applied = idx.apply(&batch, &mut g);

        assert_eq!(applied.new_nodes, vec![NodeId::new(3)]);
        assert_eq!(
            applied.dirty,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
        idx.assert_fresh(&g);
        assert_eq!(MatchIndex::candidates(&idx, t).len(), 4);
        assert!(MatchIndex::candidates(&idx, t).contains(&NodeId::new(3)));
        assert_eq!(g.attr(NodeId::new(1), name), Some(ValueId::of("bob")));
        assert_agrees_with_refreeze(idx.view(), &g);
        assert!(idx.delta_fraction() > 0.0);
    }

    #[test]
    fn apply_to_graph_matches_lockstep_application() {
        let (g0, mut v) = sample();
        let t = v.label("t");
        let e1 = v.label("e1");
        let mut batch = DeltaBatch::new();
        batch.add_node(t);
        batch.add_edge(NodeId::new(3), e1, NodeId::new(1));
        batch.del_edge(NodeId::new(1), e1, NodeId::new(2));

        let mut via_graph = g0.clone();
        let dirty_ref = batch.apply_to_graph(&mut via_graph);

        let mut via_index = g0.clone();
        let mut idx = DeltaIndex::build(&via_index.clone());
        let applied = idx.apply(&batch, &mut via_index);

        assert_eq!(dirty_ref, applied.dirty);
        assert_eq!(via_graph.edge_count(), via_index.edge_count());
        assert_eq!(via_graph.node_count(), via_index.node_count());
        assert_agrees_with_refreeze(idx.view(), &via_graph);
    }

    /// The overlay's plan statistics (label and pair frequencies) must
    /// equal a fresh freeze of the mutated graph — otherwise match plans
    /// built mid-stream order variables by stale selectivity.
    #[test]
    fn pair_frequencies_track_the_overlay() {
        let (mut g, mut v) = sample();
        let t = v.label("t");
        let u = v.label("u");
        let e1 = v.label("e1");
        let e9 = v.label("e9");
        let mut idx = DeltaIndex::build(&g);

        let mut batch = DeltaBatch::new();
        batch.add_node(u); // n3
        batch.add_edge(NodeId::new(0), e1, NodeId::new(3)); // e1 → u
        batch.add_edge(NodeId::new(3), e9, NodeId::new(1)); // new label
        batch.del_edge(NodeId::new(0), e1, NodeId::new(1)); // e1 → t gone
        idx.apply(&batch, &mut g);

        let fresh = LabelIndex::build(&g);
        for el in [LabelId::WILDCARD, e1, e9, v.label("e2")] {
            for nl in [LabelId::WILDCARD, t, u] {
                assert_eq!(
                    MatchIndex::out_pair_frequency(&idx, el, nl),
                    MatchIndex::out_pair_frequency(&fresh, el, nl),
                    "out_pair_frequency({el:?}, {nl:?})"
                );
                assert_eq!(
                    MatchIndex::in_pair_frequency(&idx, el, nl),
                    MatchIndex::in_pair_frequency(&fresh, el, nl),
                    "in_pair_frequency({el:?}, {nl:?})"
                );
                assert_eq!(
                    MatchIndex::frequency(&idx, nl),
                    MatchIndex::frequency(&fresh, nl)
                );
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale delta overlay")]
    fn mutation_bypassing_the_overlay_fails_fast() {
        let (mut g, mut v) = sample();
        let idx = DeltaIndex::build(&g);
        g.add_edge(NodeId::new(0), v.label("late"), NodeId::new(1));
        idx.assert_fresh(&g);
    }
}
