//! Experiment harness utilities: scaling, timing, and table rendering for
//! the benches that regenerate every table and figure of §VII.
//!
//! Scale is controlled by the `GFD_SCALE` environment variable:
//!
//! * `quick` (default) — laptop/CI-sized workloads, minutes for the whole
//!   suite; the paper's *shapes* (who wins, crossovers) are preserved.
//! * `full` — paper-sized parameters (|Σ| up to 10000, k to 10). Expect
//!   hours, as in the original evaluation.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Workload sizes for one run of the suite.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Human-readable scale name.
    pub name: &'static str,
    /// |Σ| for the Fig. 5 "real-life" sets.
    pub fig5_sigma: usize,
    /// |Σ| for the Exp-1 scalability runs.
    pub exp1_sigma: usize,
    /// Worker counts swept in Exp-1 (paper: 4..20).
    pub workers: Vec<usize>,
    /// |Σ| values swept in Exp-2 (paper: 2000..10000).
    pub exp2_sigmas: Vec<usize>,
    /// |Σ| for Exp-3 (paper: 5000).
    pub exp3_sigma: usize,
    /// Pattern sizes swept in Exp-3 (paper: 2..10).
    pub ks: Vec<usize>,
    /// Literal counts swept in Exp-3 (paper: 1..5).
    pub ls: Vec<usize>,
    /// TTL values swept in Exp-4 (paper: 0.1s..8s).
    pub ttls: Vec<Duration>,
    /// Default TTL for the other experiments (paper: 2s).
    pub default_ttl: Duration,
    /// Timing repetitions (median is reported).
    pub repeats: usize,
    /// Number of implication probes averaged per measurement.
    pub imp_probes: usize,
}

/// Read the scale from `GFD_SCALE` (`quick` default, `full` for
/// paper-sized runs).
pub fn scale() -> Scale {
    match std::env::var("GFD_SCALE").as_deref() {
        Ok("full") => Scale {
            name: "full",
            fig5_sigma: 8000,
            exp1_sigma: 8000,
            workers: vec![4, 8, 12, 16, 20],
            exp2_sigmas: vec![2000, 4000, 6000, 8000, 10000],
            exp3_sigma: 5000,
            ks: vec![2, 4, 6, 8, 10],
            ls: vec![1, 2, 3, 4, 5],
            ttls: [100u64, 500, 1000, 2000, 4000, 8000]
                .into_iter()
                .map(Duration::from_millis)
                .collect(),
            default_ttl: Duration::from_secs(2),
            repeats: 3,
            imp_probes: 6,
        },
        _ => Scale {
            name: "quick",
            fig5_sigma: 600,
            exp1_sigma: 600,
            workers: vec![1, 2, 4, 8, 12, 16, 20],
            exp2_sigmas: vec![200, 400, 600, 800, 1000],
            exp3_sigma: 400,
            ks: vec![2, 4, 6, 8, 10],
            ls: vec![1, 2, 3, 4, 5],
            ttls: [1u64, 2, 5, 10, 20, 50]
                .into_iter()
                .map(Duration::from_millis)
                .collect(),
            default_ttl: Duration::from_millis(5),
            repeats: 3,
            imp_probes: 4,
        },
    }
}

/// Time one closure invocation.
pub fn time_once<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Median wall time of `repeats` invocations (one extra warm-up).
pub fn time_median<T>(repeats: usize, mut f: impl FnMut() -> T) -> Duration {
    let _ = f(); // warm-up
    let mut times: Vec<Duration> = (0..repeats.max(1)).map(|_| time_once(&mut f).0).collect();
    times.sort();
    times[times.len() / 2]
}

/// Render a duration compactly (ms with 2 decimals, or s).
pub fn fmt_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 10_000.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{ms:.2}ms")
    }
}

/// A fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Print with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Print the standard experiment banner, including the single-core caveat
/// that applies to wall-clock parallel numbers.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("paper reference: {paper_ref}");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "host: {cores} core(s) available — parallel wall times are meaningful only when \
         cores ≥ p;\nthe `makespan` column (max per-worker CPU time) is the faithful \
         scalability measure."
    );
    println!(
        "scale: GFD_SCALE={} (set GFD_SCALE=full for paper-sized runs)",
        scale().name
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_default() {
        // Note: assumes GFD_SCALE is unset in the test environment.
        if std::env::var("GFD_SCALE").is_err() {
            assert_eq!(scale().name, "quick");
        }
    }

    #[test]
    fn median_of_constant_work() {
        let d = time_median(3, || std::hint::black_box(1 + 1));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn table_renders_all_rows() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.print();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1500.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(11)), "11.00s");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
