//! Exp-8 (beyond paper): GGD chase makespan on the shared scheduler.
//!
//! The generalized rule layer routes mixed GFD+GGD sets through the
//! chase: per round, premise scans run as scan units on the
//! work-stealing scheduler, and the apply phase now plans every fired
//! consequence in parallel too — realization checks and patch building
//! on the scheduler, then a conflict partition commits independent
//! firings concurrently and replays the overlapping residual serially
//! (DESIGN.md §12). This experiment measures how both phases scale: a
//! seeded generation-heavy tiered workload (`ggd_gen`) chased to
//! fixpoint at p = 1 → 8.
//!
//! Like Exp-1/Exp-7 the headline number is the **simulated makespan**
//! (max per-worker busy CPU time). With the apply wall broken, the
//! Amdahl floor is set only by the commit walk over the conflicting
//! residual; rows also break out scan vs apply wall time and the
//! independent-vs-conflict group counts. Results land in
//! `BENCH_exp8.json`, plus the run-report schema shared with the CLI's
//! `--metrics-json` in `BENCH_exp8.metrics.json` (DESIGN.md §13).
//!
//! `GFD_TRACE=FILE` additionally enables event tracing on the widest run
//! and writes its Chrome trace-event timeline to FILE — the file
//! `gfd trace-check` validates in CI.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_chase::{dep_sat_with_config, ChaseConfig};
use gfd_detect::{detect, DetectConfig, ViolationRecord};
use gfd_gen::{hub_workload, mixed_ggd_workload, GgdGenConfig, HubGenConfig};
use gfd_graph::{LabelIndex, Vocab};
use gfd_match::{IntersectStrategy, MatchPlan};
use gfd_runtime::{RunMetrics, TraceSpec};
use std::time::Duration;

fn main() {
    let scale = scale();
    banner(
        "Exp-8 (beyond paper): GGD chase makespan",
        "generating chase: scheduler scan rounds + serial materialization",
    );

    let cfg = match scale.name {
        "full" => GgdGenConfig {
            chain_depth: 6,
            gen_per_tier: 4,
            fanout: 3,
            literal_rules: 10,
            seed: 7,
        },
        _ => GgdGenConfig {
            chain_depth: 5,
            gen_per_tier: 3,
            fanout: 3,
            literal_rules: 8,
            seed: 7,
        },
    };
    let mut vocab = Vocab::new();
    let deps = mixed_ggd_workload(&cfg, &mut vocab);
    let generating = deps.iter().filter(|(_, d)| d.is_generating()).count();
    println!(
        "\nworkload: {} rule(s) ({generating} generating), chain depth {}, \
         fan-out ≤ {}, satisfiable",
        deps.len(),
        cfg.chain_depth,
        cfg.fanout,
    );

    // `GFD_TRACE=FILE` turns event tracing on for the widest run only, so
    // the timed narrower rows stay on the instrumentation's no-op path.
    let trace_path = std::env::var("GFD_TRACE").ok();
    let rule_names: Vec<String> = deps.iter().map(|(_, d)| d.name.clone()).collect();

    let workers = [1usize, 2, 4, 8];
    let mut table = Table::new(&[
        "p",
        "makespan",
        "speedup",
        "scan",
        "apply",
        "indep",
        "confl",
        "rounds",
        "generated",
        "steals",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    let mut base = Duration::ZERO;
    let mut base_generated = 0u64;
    let mut base_rounds = 0u64;
    let widest = *workers.last().unwrap();
    let mut widest_metrics = RunMetrics::default();
    for &p in &workers {
        let trace = if trace_path.is_some() && p == widest {
            TraceSpec::enabled()
        } else {
            TraceSpec::disabled()
        };
        let ccfg = ChaseConfig {
            workers: p,
            ttl: Duration::from_micros(200),
            batch: 8,
            max_generated_nodes: 10_000_000,
            trace,
            ..ChaseConfig::default()
        };
        let r = dep_sat_with_config(&deps, &ccfg);
        assert!(r.is_satisfiable(), "workload must reach a fixpoint");
        let makespan = r.metrics.makespan().unwrap_or_default();
        if p == 1 {
            base = makespan;
            base_generated = r.stats.generated_nodes;
            base_rounds = r.stats.rounds;
        }
        assert_eq!(
            r.stats.generated_nodes, base_generated,
            "generation must be p-invariant"
        );
        assert_eq!(r.stats.rounds, base_rounds, "rounds must be p-invariant");
        table.row(vec![
            p.to_string(),
            fmt_duration(makespan),
            format!(
                "{:.2}x",
                base.as_secs_f64() / makespan.as_secs_f64().max(1e-9)
            ),
            fmt_duration(r.stats.scan_time),
            fmt_duration(r.stats.apply_time),
            r.stats.apply_independent.to_string(),
            r.stats.apply_conflicts.to_string(),
            r.stats.rounds.to_string(),
            r.stats.generated_nodes.to_string(),
            r.metrics.units_stolen.to_string(),
        ]);
        rows.push(Row {
            p,
            makespan,
            scan: r.stats.scan_time,
            apply: r.stats.apply_time,
            independent: r.stats.apply_independent,
            conflicts: r.stats.apply_conflicts,
            rounds: r.stats.rounds,
            generated: r.stats.generated_nodes,
            evals: r.stats.premise_evals,
            steals: r.metrics.units_stolen,
        });
        if p == widest {
            widest_metrics = r.metrics.clone();
        }
    }

    println!("\nGGD chase makespan (max per-worker busy time) vs p:");
    table.print();
    println!(
        "\nexpected shape: both the premise scan and the apply planning pass\n\
         shrink with p; the conflict-free share of firings commits\n\
         concurrently, so only the conflicting residual's commit walk is\n\
         serial — rounds and generated nodes stay invariant across p\n\
         (round-snapshot semantics)."
    );

    // --- Hub workload row (DESIGN.md §15): a power-law graph with
    // string-heavy rules, detected at p = 1 vs the widest width. The
    // matcher must route the diamond rules' doubly-anchored step onto
    // the bitset merge, and the violation set — count and fingerprint —
    // must be invariant across p and across runs (seeded generation).
    let hcfg = match scale.name {
        "full" => HubGenConfig {
            nodes: 8_000,
            hub_degree: 128,
            ..HubGenConfig::default()
        },
        _ => HubGenConfig::default(),
    };
    let hub = hub_workload(&hcfg);
    let idx = LabelIndex::build(&hub.graph);
    let diamond = hub
        .sigma
        .iter()
        .find(|(_, d)| d.name.starts_with("hub_diamond"))
        .expect("hub preset emits diamond rules")
        .1;
    let plan = MatchPlan::build(&diamond.pattern, None, Some(&idx));
    assert!(
        plan.steps()
            .iter()
            .any(|s| s.strategy == IntersectStrategy::Bitset),
        "hub workload must push a doubly-anchored step into the bitset regime"
    );
    println!(
        "\nhub workload {}: {} nodes, {} edges, {} rules \
         (diamond step plans as bitset merge)",
        hub.name,
        hub.graph.node_count(),
        hub.graph.edge_count(),
        hub.sigma.len(),
    );
    let mut hub_rows: Vec<(usize, Duration, usize)> = Vec::new();
    let mut hub_fp = 0u64;
    let mut table = Table::new(&["p", "time", "violations", "fingerprint"]);
    for &p in &[1usize, widest] {
        let config = DetectConfig {
            ttl: scale.default_ttl,
            max_violations: usize::MAX,
            ..DetectConfig::with_workers(p)
        };
        let mut found = 0usize;
        let mut fp = 0u64;
        let t = time_median(scale.repeats, || {
            let r = detect(&hub.graph, &hub.sigma, &config);
            found = r.violations.len();
            fp = violation_fingerprint(&r.violations);
        });
        if p == 1 {
            hub_fp = fp;
        } else {
            assert_eq!(
                (found, fp),
                (hub_rows[0].2, hub_fp),
                "hub violations must be p-invariant"
            );
        }
        table.row(vec![
            p.to_string(),
            fmt_duration(t),
            found.to_string(),
            format!("{fp:016x}"),
        ]);
        hub_rows.push((p, t, found));
    }
    println!("\nhub-workload detection (bitset-pruned matching):");
    table.print();

    let json = render_json(scale.name, &cfg, base, &rows, &hcfg, &hub_rows, hub_fp);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exp8.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }

    // The widest run's full report, in the exact schema the CLI's
    // `--metrics-json` emits — one format for bench and CLI consumers.
    let metrics_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exp8.metrics.json");
    match std::fs::write(metrics_path, widest_metrics.to_json(&rule_names)) {
        Ok(()) => println!("wrote {metrics_path} (p = {widest} run report)"),
        Err(e) => println!("could not write {metrics_path}: {e}"),
    }

    if let Some(tp) = trace_path {
        let chrome = widest_metrics.trace.to_chrome_json(&rule_names);
        match std::fs::write(&tp, chrome) {
            Ok(()) => println!(
                "wrote {tp} ({} event(s), {} dropped) — validate with `gfd trace-check`",
                widest_metrics.trace.events.len(),
                widest_metrics.trace.dropped,
            ),
            Err(e) => println!("could not write {tp}: {e}"),
        }
    }
}

struct Row {
    p: usize,
    makespan: Duration,
    scan: Duration,
    apply: Duration,
    independent: u64,
    conflicts: u64,
    rounds: u64,
    generated: u64,
    evals: u64,
    steals: u64,
}

/// An order-insensitive FNV-1a fold over the violation set: each record
/// keyed by (rule, match, failed literals), the keys sorted before
/// hashing so worker scheduling cannot perturb the digest.
fn violation_fingerprint(vs: &[ViolationRecord]) -> u64 {
    let mut keys: Vec<Vec<u64>> = vs
        .iter()
        .map(|v| {
            let mut k = vec![v.gfd.index() as u64];
            k.extend(v.m.iter().map(|n| n.index() as u64));
            k.extend(v.failed.iter().map(|&i| i as u64));
            k
        })
        .collect();
    keys.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in keys.iter().flatten() {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    cfg: &GgdGenConfig,
    base: Duration,
    rows: &[Row],
    hcfg: &HubGenConfig,
    hub_rows: &[(usize, Duration, usize)],
    hub_fp: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp8_ggd_chase\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!(
        "  \"chain_depth\": {}, \"gen_per_tier\": {}, \"fanout\": {},\n",
        cfg.chain_depth, cfg.gen_per_tier, cfg.fanout
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"makespan_ms\": {:.3}, \"speedup\": {:.2}, \
             \"scan_ms\": {:.3}, \"apply_ms\": {:.3}, \
             \"apply_independent\": {}, \"apply_conflicts\": {}, \
             \"rounds\": {}, \"generated_nodes\": {}, \
             \"premise_evals\": {}, \"steals\": {}}}{}\n",
            r.p,
            r.makespan.as_secs_f64() * 1e3,
            base.as_secs_f64() / r.makespan.as_secs_f64().max(1e-9),
            r.scan.as_secs_f64() * 1e3,
            r.apply.as_secs_f64() * 1e3,
            r.independent,
            r.conflicts,
            r.rounds,
            r.generated,
            r.evals,
            r.steals,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"hub\": {{\"nodes\": {}, \"hubs\": {}, \"hub_degree\": {}, \
         \"rules\": {}, \"fingerprint\": \"{:016x}\", \"rows\": [\n",
        hcfg.nodes, hcfg.hubs, hcfg.hub_degree, hcfg.rules, hub_fp
    ));
    for (i, &(p, t, found)) in hub_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"detect_ms\": {:.3}, \"violations\": {}}}{}\n",
            p,
            t.as_secs_f64() * 1e3,
            found,
            if i + 1 == hub_rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]}\n}\n");
    out
}
