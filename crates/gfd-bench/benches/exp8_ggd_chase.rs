//! Exp-8 (beyond paper): GGD chase makespan on the shared scheduler.
//!
//! The generalized rule layer routes mixed GFD+GGD sets through the
//! chase: per round, every dependency's premise scan runs as scan units
//! on the work-stealing scheduler; generating consequences materialize
//! serially between rounds against round-start snapshots. This
//! experiment measures how that per-round scan parallelism scales: a
//! seeded generation-heavy tiered workload (`ggd_gen`) chased to
//! fixpoint at p = 1 → 8.
//!
//! Like Exp-1/Exp-7 the headline number is the **simulated makespan**
//! (max per-worker busy CPU time): the serial apply phase is a fixed
//! cost at every p, so the curve flattens toward the Amdahl floor the
//! serial generation step sets. Results land in `BENCH_exp8.json`.

use gfd_bench::{banner, fmt_duration, scale, Table};
use gfd_chase::{dep_sat_with_config, ChaseConfig};
use gfd_gen::{mixed_ggd_workload, GgdGenConfig};
use gfd_graph::Vocab;
use std::time::Duration;

fn main() {
    let scale = scale();
    banner(
        "Exp-8 (beyond paper): GGD chase makespan",
        "generating chase: scheduler scan rounds + serial materialization",
    );

    let cfg = match scale.name {
        "full" => GgdGenConfig {
            chain_depth: 6,
            gen_per_tier: 4,
            fanout: 3,
            literal_rules: 10,
            seed: 7,
        },
        _ => GgdGenConfig {
            chain_depth: 5,
            gen_per_tier: 3,
            fanout: 3,
            literal_rules: 8,
            seed: 7,
        },
    };
    let mut vocab = Vocab::new();
    let deps = mixed_ggd_workload(&cfg, &mut vocab);
    let generating = deps.iter().filter(|(_, d)| d.is_generating()).count();
    println!(
        "\nworkload: {} rule(s) ({generating} generating), chain depth {}, \
         fan-out ≤ {}, satisfiable",
        deps.len(),
        cfg.chain_depth,
        cfg.fanout,
    );

    let workers = [1usize, 2, 4, 8];
    let mut table = Table::new(&[
        "p",
        "makespan",
        "speedup",
        "rounds",
        "generated",
        "evals",
        "steals",
    ]);
    let mut rows: Vec<(usize, Duration, u64, u64, u64, u64)> = Vec::new();
    let mut base = Duration::ZERO;
    let mut base_generated = 0u64;
    for &p in &workers {
        let ccfg = ChaseConfig {
            workers: p,
            ttl: Duration::from_micros(200),
            batch: 32,
            max_generated_nodes: 10_000_000,
            ..ChaseConfig::default()
        };
        let r = dep_sat_with_config(&deps, &ccfg);
        assert!(r.is_satisfiable(), "workload must reach a fixpoint");
        let makespan = r.metrics.makespan().unwrap_or_default();
        if p == 1 {
            base = makespan;
            base_generated = r.stats.generated_nodes;
        }
        assert_eq!(
            r.stats.generated_nodes, base_generated,
            "generation must be p-invariant"
        );
        table.row(vec![
            p.to_string(),
            fmt_duration(makespan),
            format!(
                "{:.2}x",
                base.as_secs_f64() / makespan.as_secs_f64().max(1e-9)
            ),
            r.stats.rounds.to_string(),
            r.stats.generated_nodes.to_string(),
            r.stats.premise_evals.to_string(),
            r.metrics.units_stolen.to_string(),
        ]);
        rows.push((
            p,
            makespan,
            r.stats.rounds,
            r.stats.generated_nodes,
            r.stats.premise_evals,
            r.metrics.units_stolen,
        ));
    }

    println!("\nGGD chase makespan (max per-worker busy time) vs p:");
    table.print();
    println!(
        "\nexpected shape: the parallel premise scan shrinks with p while the\n\
         serial apply/materialize phase stays fixed — speedup approaches the\n\
         scan fraction's Amdahl bound; rounds and generated nodes are\n\
         invariant across p (round-snapshot semantics)."
    );

    let json = render_json(scale.name, &cfg, base, &rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exp8.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

fn render_json(
    scale: &str,
    cfg: &GgdGenConfig,
    base: Duration,
    rows: &[(usize, Duration, u64, u64, u64, u64)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp8_ggd_chase\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!(
        "  \"chain_depth\": {}, \"gen_per_tier\": {}, \"fanout\": {},\n",
        cfg.chain_depth, cfg.gen_per_tier, cfg.fanout
    ));
    out.push_str("  \"rows\": [\n");
    for (i, (p, makespan, rounds, generated, evals, steals)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {p}, \"makespan_ms\": {:.3}, \"speedup\": {:.2}, \
             \"rounds\": {rounds}, \"generated_nodes\": {generated}, \
             \"premise_evals\": {evals}, \"steals\": {steals}}}{}\n",
            makespan.as_secs_f64() * 1e3,
            base.as_secs_f64() / makespan.as_secs_f64().max(1e-9),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
