//! Fig. 5 — sequential running time on "real-life" GFD sets.
//!
//! Paper's table (seconds, |Σ| ≈ 8000/6000/10000):
//!
//! | algorithm  | DBpedia | YAGO2 | Pokec |
//! |------------|---------|-------|-------|
//! | SeqSat     | 1728    | 1341  | 2475  |
//! | SeqImp     | 728     | 644   | 1355  |
//! | ParImpRDF  | 1026    | 987   | 1907  |
//!
//! Shape to reproduce: SeqImp < ParImpRDF < SeqSat per dataset; SeqImp
//! beats the chase baseline by ~1.4×.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_gen::{real_life_workload, Dataset};

fn main() {
    let scale = scale();
    banner(
        "Fig. 5: sequential running time on real-life GFDs",
        "SeqSat 1728/1341/2475s, SeqImp 728/644/1355s, ParImpRDF 1026/987/1907s",
    );

    let datasets = [Dataset::DBpedia, Dataset::Yago2, Dataset::Pokec];
    let mut table = Table::new(&["algorithm", "DBpedia", "YAGO2", "Pokec"]);
    let mut sat_row = vec!["SeqSat".to_string()];
    let mut imp_row = vec!["SeqImp".to_string()];
    let mut rdf_row = vec!["ParImpRDF".to_string()];
    let mut ratio_row = vec!["chase/SeqImp".to_string()];

    for dataset in datasets {
        // Satisfiability runs on the mined set expanded with a conflict
        // chain (the paper adds up to 10 random GFDs to exercise the
        // check); implication probes run on the clean set.
        let sat_workload = real_life_workload(dataset, scale.fig5_sigma, 42, Some(4));
        let imp_workload = real_life_workload(dataset, scale.fig5_sigma, 42, None);
        let probes: Vec<_> = imp_workload.probes.iter().take(scale.imp_probes).collect();

        let t_sat = time_median(scale.repeats, || {
            gfd_core::seq_sat(&sat_workload.sigma).is_satisfiable()
        });
        let t_imp = time_median(scale.repeats, || {
            for p in &probes {
                let r = gfd_core::seq_imp(&imp_workload.sigma, &p.phi);
                assert_eq!(r.is_implied(), p.expect_implied);
            }
        });
        let t_rdf = time_median(scale.repeats.min(2), || {
            for p in &probes {
                let r = gfd_chase::chase_imp(&imp_workload.sigma, &p.phi);
                assert_eq!(r.is_implied(), p.expect_implied);
            }
        });

        sat_row.push(fmt_duration(t_sat));
        imp_row.push(fmt_duration(t_imp));
        rdf_row.push(fmt_duration(t_rdf));
        ratio_row.push(format!(
            "{:.2}x",
            t_rdf.as_secs_f64() / t_imp.as_secs_f64().max(1e-9)
        ));
    }

    table.row(sat_row);
    table.row(imp_row);
    table.row(rdf_row);
    table.row(ratio_row);
    table.print();
    println!(
        "\nexpected shape: SeqImp fastest, chase (ParImpRDF) slower, SeqSat slowest\n\
         (GΣ for satisfiability is the union of all patterns, far larger than G^X_Q)."
    );
}
