//! Exp-7 (beyond paper): branch-parallel GED reasoning makespan.
//!
//! The §IX extension's small-model search is a branch-and-bound workload
//! on the shared scheduler (one unit per open branch, copy-on-branch
//! store, TTL splitting). This experiment measures its scalability: a
//! seeded unsatisfiable GED set whose choice tree (2^k leaves, every
//! leaf killed by a denial) must be fully explored, swept over worker
//! counts p = 1 → 8.
//!
//! Like Exp-1, the headline number is the **simulated makespan** (max
//! per-worker busy CPU time): on a CI host with few free cores wall
//! time cannot show the speedup, but per-worker busy time reflects what
//! dedicated processors would achieve. Results land in
//! `BENCH_exp7.json` for trend tracking.

use gfd_bench::{banner, fmt_duration, scale, Table};
use gfd_ged::driver::{ged_sat_with_config, GedReasonConfig};
use gfd_ged::{Ged, GedLiteral, GedSet};
use gfd_graph::{LabelId, Pattern, VarId, Vocab};
use std::time::Duration;

/// A seeded GED workload whose full choice tree must be explored:
/// `depth` disjunctive rules `∅ → (x.Aᵢ = vᵢ ∨ x.Aᵢ = vᵢ + 1)`, each on
/// its own concretely-labelled node (so every rule has exactly one match
/// in the canonical graph), plus denials killing both values of the last
/// attribute — unsatisfiable, with ~2^(depth+1) branches. The seed
/// permutes the attribute values so runs differ without changing the
/// tree shape.
fn seeded_workload(vocab: &mut Vocab, depth: usize, seed: u64) -> GedSet {
    let x = VarId::new(0);
    let node = |label: LabelId| {
        let mut p = Pattern::new();
        p.add_node(label, "x");
        p
    };
    // Tiny splitmix-style PRNG: reproducible without pulling rand in.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
        (state >> 33) as i64
    };
    let mut rules = Vec::new();
    let mut last = None;
    for i in 0..depth {
        let label = vocab.label(&format!("t{i}"));
        let attr = vocab.attr(&format!("A{i}"));
        let v = next() % 1000;
        rules.push(Ged::new(
            format!("d{i}"),
            node(label),
            vec![],
            vec![
                vec![GedLiteral::eq_const(x, attr, v)],
                vec![GedLiteral::eq_const(x, attr, v + 1)],
            ],
        ));
        last = Some((label, attr, v));
    }
    let (label, attr, v) = last.expect("depth > 0");
    for (j, val) in [v, v + 1].into_iter().enumerate() {
        rules.push(Ged::denial(
            format!("kill{j}"),
            node(label),
            vec![GedLiteral::eq_const(x, attr, val)],
        ));
    }
    GedSet::from_vec(rules)
}

fn main() {
    let scale = scale();
    banner(
        "Exp-7 (beyond paper): branch-parallel GED reasoning makespan",
        "§IX small-model search as a branch-and-bound scheduler workload",
    );

    let depth = match scale.name {
        "full" => 15,
        _ => 11,
    };
    let mut vocab = Vocab::new();
    let sigma = seeded_workload(&mut vocab, depth, 7);
    println!(
        "\nworkload: {} rule(s), choice-tree depth {depth} (~{} branches), unsatisfiable",
        sigma.len(),
        1usize << (depth + 1),
    );

    let workers = [1usize, 2, 4, 8];
    let mut table = Table::new(&["p", "makespan", "speedup", "branches", "splits", "steals"]);
    let mut rows: Vec<(usize, Duration, u64, u64, u64)> = Vec::new();
    let mut base = Duration::ZERO;
    for &p in &workers {
        let cfg = GedReasonConfig::with_workers(p).with_ttl(Duration::from_micros(200));
        let run = ged_sat_with_config(&sigma, &cfg);
        let outcome = run.outcome.expect("within budget");
        assert!(!outcome.is_satisfiable(), "workload must be UNSAT");
        let m = &run.metrics;
        let makespan = m.makespan().unwrap_or_default();
        if p == 1 {
            base = makespan;
        }
        table.row(vec![
            p.to_string(),
            fmt_duration(makespan),
            format!(
                "{:.2}x",
                base.as_secs_f64() / makespan.as_secs_f64().max(1e-9)
            ),
            m.branches.to_string(),
            m.units_split.to_string(),
            m.units_stolen.to_string(),
        ]);
        rows.push((p, makespan, m.branches, m.units_split, m.units_stolen));
    }

    println!("\nGED Sat makespan (max per-worker busy time) vs p:");
    table.print();
    println!(
        "\nexpected shape: near-linear makespan reduction while the tree has\n\
         enough open branches to steal; splits and steals grow with p."
    );

    let json = render_json(scale.name, depth, base, &rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exp7.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

fn render_json(
    scale: &str,
    depth: usize,
    base: Duration,
    rows: &[(usize, Duration, u64, u64, u64)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp7_ged_parallel\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"tree_depth\": {depth},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, (p, makespan, branches, splits, steals)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {p}, \"makespan_ms\": {:.3}, \"speedup\": {:.2}, \
             \"branches\": {branches}, \"splits\": {splits}, \"steals\": {steals}}}{}\n",
            makespan.as_secs_f64() * 1e3,
            base.as_secs_f64() / makespan.as_secs_f64().max(1e-9),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
