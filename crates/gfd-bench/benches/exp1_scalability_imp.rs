//! Fig. 6(c)/(d) — parallel scalability of implication checking:
//! ParImp vs ParImpnp vs ParImpnb, varying p, on DBpedia-like and
//! YAGO2-like rule sets.
//!
//! Paper's shape: ParImp ~3×/3.1× faster as p goes 4→20; beats `nb` by
//! ~4.1× and `np` by 1.7–1.8× on average.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_gen::{real_life_workload, Dataset};
use gfd_parallel::{par_imp, ParConfig};
use std::time::Duration;

fn main() {
    let scale = scale();
    banner(
        "Exp-1 (Fig. 6c, 6d): ParImp scalability, varying p",
        "ParImp 3.6x faster from p=4 to 20; vs nb 4.1x, vs np 1.7-1.8x",
    );

    for dataset in [Dataset::DBpedia, Dataset::Yago2] {
        let w = real_life_workload(dataset, scale.exp1_sigma, 42, None);
        let probes: Vec<_> = w.probes.iter().take(scale.imp_probes).collect();
        let seq = time_median(scale.repeats, || {
            for p in &probes {
                assert_eq!(
                    gfd_core::seq_imp(&w.sigma, &p.phi).is_implied(),
                    p.expect_implied
                );
            }
        });
        println!(
            "\n[{}] |Σ| = {}, {} probes, SeqImp reference: {}",
            w.name,
            w.sigma.len(),
            probes.len(),
            fmt_duration(seq)
        );

        let mut table = Table::new(&[
            "p",
            "ParImp wall",
            "makespan",
            "np wall",
            "nb wall",
            "speedup(mk)",
        ]);
        let mut first_makespan: Option<Duration> = None;
        for &p in &scale.workers {
            let base = ParConfig::with_workers(p).with_ttl(scale.default_ttl);
            let mut makespan = Duration::ZERO;
            let t = time_median(scale.repeats, || {
                let mut mk = Duration::ZERO;
                for probe in &probes {
                    let r = par_imp(&w.sigma, &probe.phi, &base);
                    assert_eq!(r.is_implied(), probe.expect_implied);
                    mk += r.metrics.makespan().unwrap_or(r.metrics.elapsed);
                }
                makespan = mk;
            });
            let t_np = time_median(scale.repeats, || {
                for probe in &probes {
                    let r = par_imp(&w.sigma, &probe.phi, &base.clone().without_pipeline());
                    assert_eq!(r.is_implied(), probe.expect_implied);
                }
            });
            let t_nb = time_median(scale.repeats, || {
                for probe in &probes {
                    let r = par_imp(&w.sigma, &probe.phi, &base.clone().without_split());
                    assert_eq!(r.is_implied(), probe.expect_implied);
                }
            });
            let speedup = first_makespan.get_or_insert(makespan).as_secs_f64()
                / makespan.as_secs_f64().max(1e-9);
            table.row(vec![
                p.to_string(),
                fmt_duration(t),
                fmt_duration(makespan),
                fmt_duration(t_np),
                fmt_duration(t_nb),
                format!("{speedup:.2}x"),
            ]);
        }
        table.print();
    }
    println!(
        "\nexpected shape: makespan shrinks with p; implied probes terminate early\n\
         (Y ⊆ EqH), so ParImp stays well under ParSat for the same Σ (cf. Fig. 5)."
    );
}
