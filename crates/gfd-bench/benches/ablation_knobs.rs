//! Ablations beyond the paper's `*np` / `*nb` variants: the design
//! choices DESIGN.md §5 calls out.
//!
//! * **dependency-graph ordering** (§V-B "Dependency graph"): process
//!   work units in topological order of the attribute-dependency graph vs
//!   input order. Ordering front-loads `∅ → Y` units, so premises are
//!   instantiated before the units that watch them — fewer pending
//!   re-checks and earlier conflicts.
//! * **component pruning** (the canonical graph is a disjoint union, so
//!   a unit whose pivot component lacks a required label can be skipped
//!   wholesale before any matching).
//!
//! Both knobs exist in the sequential `ReasonOptions` and the parallel
//! `ParConfig`; each is toggled independently, everything else at
//! defaults.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_core::{seq_imp_with, seq_sat_with, ReasonOptions};
use gfd_gen::{real_life_workload, Dataset};
use gfd_parallel::{par_sat, ParConfig};

fn main() {
    let scale = scale();
    banner(
        "Ablations: dependency ordering & component pruning",
        "DESIGN.md §5 (paper §V-B optimizations beyond the np/nb variants)",
    );

    // A satisfiable mined-style set and an unsatisfiable chain variant:
    // ordering matters most when conflicts exist to find early.
    let sat_w = real_life_workload(Dataset::DBpedia, scale.exp1_sigma / 2, 42, None);
    let unsat_w = real_life_workload(Dataset::DBpedia, scale.exp1_sigma / 2, 42, Some(3));
    let probes: Vec<_> = sat_w.probes.iter().take(scale.imp_probes).collect();

    let variants = [
        ("both on", true, true),
        ("no dep-order", false, true),
        ("no pruning", true, false),
        ("both off", false, false),
    ];

    println!("\nSeqSat (satisfiable set) and SeqSat (unsat chain set):");
    let mut table = Table::new(&["variant", "sat set", "unsat set"]);
    for (name, dep, prune) in variants {
        let opts = ReasonOptions {
            use_dependency_order: dep,
            prune_components: prune,
        };
        let t_sat = time_median(scale.repeats, || {
            assert!(seq_sat_with(&sat_w.sigma, &opts).is_satisfiable());
        });
        let t_unsat = time_median(scale.repeats, || {
            assert!(!seq_sat_with(&unsat_w.sigma, &opts).is_satisfiable());
        });
        table.row(vec![
            name.to_string(),
            fmt_duration(t_sat),
            fmt_duration(t_unsat),
        ]);
    }
    table.print();

    println!("\nSeqImp over {} probes:", probes.len());
    let mut table = Table::new(&["variant", "time"]);
    for (name, dep, prune) in variants {
        let opts = ReasonOptions {
            use_dependency_order: dep,
            prune_components: prune,
        };
        let t = time_median(scale.repeats, || {
            for p in &probes {
                let r = seq_imp_with(&sat_w.sigma, &p.phi, &opts);
                assert_eq!(r.is_implied(), p.expect_implied);
            }
        });
        table.row(vec![name.to_string(), fmt_duration(t)]);
    }
    table.print();

    println!("\nParSat (p=4), same knobs:");
    let mut table = Table::new(&["variant", "sat set", "unsat set"]);
    for (name, dep, prune) in variants {
        let cfg = ParConfig {
            use_dependency_order: dep,
            prune_components: prune,
            ..ParConfig::with_workers(4).with_ttl(scale.default_ttl)
        };
        let t_sat = time_median(scale.repeats, || {
            assert!(par_sat(&sat_w.sigma, &cfg).is_satisfiable());
        });
        let t_unsat = time_median(scale.repeats, || {
            assert!(!par_sat(&unsat_w.sigma, &cfg).is_satisfiable());
        });
        table.row(vec![
            name.to_string(),
            fmt_duration(t_sat),
            fmt_duration(t_unsat),
        ]);
    }
    table.print();

    println!(
        "\nexpected shape: dependency ordering pays on the unsat set (conflicts surface\n\
         early); component pruning pays everywhere the canonical graph has many disjoint\n\
         patterns (units die before matching). Neither should ever hurt correctness."
    );
}
