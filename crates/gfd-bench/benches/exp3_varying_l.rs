//! Fig. 6(h)/(j) — impact of the literal count l on satisfiability and
//! implication (k = 5, p = 4).
//!
//! Paper's shape: mild sensitivity to l — more literals cost more per
//! match but can also terminate the process earlier; ParSat/ParImp stay
//! the fastest at every l.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_gen::synthetic_workload;
use gfd_parallel::{par_imp, par_sat, ParConfig};

fn main() {
    let scale = scale();
    banner(
        "Exp-3 (Fig. 6h, 6j): varying literal count l (k=5, p=4)",
        "l=5: SeqSat 351s, ParSat 108s | SeqImp 262s, ParImp 77s; mild l-sensitivity",
    );

    let cfg = ParConfig::with_workers(4).with_ttl(scale.default_ttl);

    println!("\nFig. 6(h) — satisfiability:");
    let mut table = Table::new(&["l", "SeqSat", "ParSat", "np", "nb"]);
    for &l in &scale.ls {
        let w = synthetic_workload(scale.exp3_sigma, 5, l, 42);
        let t_seq = time_median(scale.repeats, || {
            assert!(gfd_core::seq_sat(&w.sigma).is_satisfiable());
        });
        let t_par = time_median(scale.repeats, || {
            assert!(par_sat(&w.sigma, &cfg).is_satisfiable());
        });
        let t_np = time_median(scale.repeats, || {
            assert!(par_sat(&w.sigma, &cfg.clone().without_pipeline()).is_satisfiable());
        });
        let t_nb = time_median(scale.repeats, || {
            assert!(par_sat(&w.sigma, &cfg.clone().without_split()).is_satisfiable());
        });
        table.row(vec![
            l.to_string(),
            fmt_duration(t_seq),
            fmt_duration(t_par),
            fmt_duration(t_np),
            fmt_duration(t_nb),
        ]);
    }
    table.print();

    println!("\nFig. 6(j) — implication:");
    let mut table = Table::new(&["l", "SeqImp", "ParImp", "np", "nb"]);
    for &l in &scale.ls {
        let w = synthetic_workload(scale.exp3_sigma, 5, l, 42);
        let probes: Vec<_> = w.probes.iter().take(scale.imp_probes).collect();
        let run_all = |f: &dyn Fn(&gfd_core::Gfd) -> bool| {
            for p in &probes {
                assert_eq!(f(&p.phi), p.expect_implied);
            }
        };
        let t_seq = time_median(scale.repeats, || {
            run_all(&|phi| gfd_core::seq_imp(&w.sigma, phi).is_implied())
        });
        let t_par = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg).is_implied())
        });
        let t_np = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg.clone().without_pipeline()).is_implied())
        });
        let t_nb = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg.clone().without_split()).is_implied())
        });
        table.row(vec![
            l.to_string(),
            fmt_duration(t_seq),
            fmt_duration(t_par),
            fmt_duration(t_np),
            fmt_duration(t_nb),
        ]);
    }
    table.print();
    println!("\nexpected shape: flat-ish in l (literal checks are cheap next to matching).");
}
