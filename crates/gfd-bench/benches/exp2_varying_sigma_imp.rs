//! Fig. 6(f) — implication scalability with |Σ| (synthetic GFDs, k = 6,
//! l = 5, p = 4): SeqImp, ParImp, ParImpnp, ParImpnb and the chase
//! baseline ParImpRDF.
//!
//! Paper's shape: all grow with |Σ|; ParImp ≈ 3.1× faster than SeqImp and
//! ≈ 4.8× faster than ParImpRDF on average; SeqImp/ParImp are less
//! sensitive to |Σ| when Σ |= ϕ (early termination).

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_gen::synthetic_workload;
use gfd_parallel::{par_imp, ParConfig};

fn main() {
    let scale = scale();
    banner(
        "Exp-2 (Fig. 6f): implication, varying |Σ| (k=6, l=5, p=4)",
        "SeqImp 982s / ParImp 342s at |Σ|=10000; ParImp 3.1x vs SeqImp, 4.8x vs ParImpRDF",
    );

    let cfg = ParConfig::with_workers(4).with_ttl(scale.default_ttl);
    let mut table = Table::new(&[
        "|Σ|",
        "SeqImp",
        "ParImp",
        "np",
        "nb",
        "ParImpRDF",
        "rdf/seq",
    ]);
    for &size in &scale.exp2_sigmas {
        let w = synthetic_workload(size, 6, 5, 42);
        let probes: Vec<_> = w.probes.iter().take(scale.imp_probes).collect();
        let run_all = |f: &dyn Fn(&gfd_core::Gfd) -> bool| {
            for p in &probes {
                assert_eq!(f(&p.phi), p.expect_implied);
            }
        };
        let t_seq = time_median(scale.repeats, || {
            run_all(&|phi| gfd_core::seq_imp(&w.sigma, phi).is_implied())
        });
        let t_par = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg).is_implied())
        });
        let t_np = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg.clone().without_pipeline()).is_implied())
        });
        let t_nb = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg.clone().without_split()).is_implied())
        });
        let t_rdf = time_median(scale.repeats.min(2), || {
            run_all(&|phi| gfd_chase::chase_imp(&w.sigma, phi).is_implied())
        });
        table.row(vec![
            size.to_string(),
            fmt_duration(t_seq),
            fmt_duration(t_par),
            fmt_duration(t_np),
            fmt_duration(t_nb),
            fmt_duration(t_rdf),
            format!(
                "{:.2}x",
                t_rdf.as_secs_f64() / t_seq.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: all grow with |Σ|; the chase re-scans each round and trails SeqImp;\n\
         implied probes terminate early, damping the growth of SeqImp/ParImp."
    );
}
