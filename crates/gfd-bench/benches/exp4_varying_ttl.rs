//! Fig. 6(k)/(l) — impact of the straggler threshold TTL on ParSat and
//! ParImp (p = 4).
//!
//! Paper's shape: a U-curve — tiny TTLs over-split (communication), large
//! TTLs under-split (imbalance); the optimum sat at TTL = 2 s on their
//! hardware. The workload here mixes mined-style rules with a few
//! "straggler" wildcard rules whose units have very uneven match counts,
//! which is what makes splitting matter.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_core::{Gfd, GfdSet, Literal};
use gfd_gen::{real_life_workload, Dataset};
use gfd_graph::{LabelId, Pattern, VarId};
use gfd_parallel::{par_imp, par_sat, ParConfig};

/// Add heavy-tailed rules: wildcard chains whose pivot units explode on
/// hub nodes of the canonical graph.
fn add_stragglers(sigma: &mut GfdSet, count: usize) {
    let attr = gfd_graph::AttrId::new(0);
    for i in 0..count {
        let mut p = Pattern::new();
        let n = 4 + (i % 2);
        let vars: Vec<VarId> = (0..n)
            .map(|j| p.add_node(LabelId::WILDCARD, format!("w{j}")))
            .collect();
        for w in vars.windows(2) {
            p.add_edge(w[0], LabelId::WILDCARD, w[1]);
        }
        sigma.push(Gfd::new(
            format!("straggler{i}"),
            p,
            vec![Literal::eq_const(vars[0], attr, 1i64)],
            vec![Literal::eq_attr(vars[0], attr, vars[n - 1], attr)],
        ));
    }
}

fn main() {
    let scale = scale();
    banner(
        "Exp-4 (Fig. 6k, 6l): varying TTL (p=4)",
        "U-shaped cost curve; the paper's optimum is TTL = 2s on their cluster",
    );

    let base = real_life_workload(Dataset::DBpedia, scale.exp1_sigma / 2, 42, None);
    let mut sigma = base.sigma.clone();
    add_stragglers(&mut sigma, 3);
    let probes: Vec<_> = base.probes.iter().take(scale.imp_probes).collect();

    println!("\nFig. 6(k) — ParSat vs ParSatnp, varying TTL:");
    let mut table = Table::new(&["TTL", "ParSat", "np", "splits", "imbalance"]);
    for &ttl in &scale.ttls {
        let cfg = ParConfig::with_workers(4).with_ttl(ttl);
        let mut splits = 0u64;
        let mut imbalance = f64::NAN;
        let t = time_median(scale.repeats, || {
            let r = par_sat(&sigma, &cfg);
            assert!(r.is_satisfiable());
            splits = r.metrics.units_split;
            imbalance = r.metrics.imbalance().unwrap_or(f64::NAN);
        });
        let t_np = time_median(scale.repeats, || {
            assert!(par_sat(&sigma, &cfg.clone().without_pipeline()).is_satisfiable());
        });
        table.row(vec![
            format!("{ttl:?}"),
            fmt_duration(t),
            fmt_duration(t_np),
            splits.to_string(),
            format!("{imbalance:.2}"),
        ]);
    }
    table.print();

    println!("\nFig. 6(l) — ParImp vs ParImpnp, varying TTL:");
    let mut table = Table::new(&["TTL", "ParImp", "np"]);
    for &ttl in &scale.ttls {
        let cfg = ParConfig::with_workers(4).with_ttl(ttl);
        let t = time_median(scale.repeats, || {
            for p in &probes {
                let r = par_imp(&sigma, &p.phi, &cfg);
                assert_eq!(r.is_implied(), p.expect_implied);
            }
        });
        let t_np = time_median(scale.repeats, || {
            for p in &probes {
                let r = par_imp(&sigma, &p.phi, &cfg.clone().without_pipeline());
                assert_eq!(r.is_implied(), p.expect_implied);
            }
        });
        table.row(vec![
            format!("{ttl:?}"),
            fmt_duration(t),
            fmt_duration(t_np),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: cost falls as TTL grows (less split traffic), then flattens/rises\n\
         once stragglers stop being split (higher imbalance) — the paper's U-curve."
    );
}
