//! Beyond-paper application benchmark: parallel violation detection on
//! data graphs (`gfd-detect`), the error-detection workload the paper's
//! introduction motivates with ϕ1–ϕ4.
//!
//! Sweeps worker count on a planted-violation graph, and shows the TTL
//! splitting effect on a skewed (hub-heavy) graph. Detection reuses the
//! reasoning runtime's ideas — pivoted units, dynamic assignment, TTL
//! splitting — so its scaling shape should mirror Exp-1.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_detect::{detect, DetectConfig};
use gfd_gen::{plant_violation, random_graph, real_life_workload, Dataset, GraphGenConfig};
use gfd_graph::{Graph, LabelId, NodeId};
use std::time::Duration;

fn main() {
    let scale = scale();
    banner(
        "Exp-5 (beyond paper): parallel violation detection",
        "application of §I (inconsistency detection), runtime of §V",
    );

    // Workload: a mined-style rule set and a graph with planted errors.
    let w = real_life_workload(Dataset::DBpedia, 40, 7, None);
    let nodes = match scale.name {
        "full" => 60_000,
        _ => 6_000,
    };
    let mut graph = random_graph(
        &w.schema,
        &GraphGenConfig {
            nodes,
            edges: nodes * 3,
            attr_prob: 0.3,
            seed: 7,
        },
    );
    for (i, (_, gfd)) in w.sigma.iter().take(10).enumerate() {
        plant_violation(&mut graph, gfd, &w.schema, 100 + i as u64);
    }
    println!(
        "\ndata graph: {} nodes, {} edges, {} attrs; {} rules",
        graph.node_count(),
        graph.edge_count(),
        graph.attr_count(),
        w.sigma.len()
    );

    // Baseline: the sequential oracle.
    let seq = time_median(scale.repeats, || {
        gfd_core::find_violations(&graph, &w.sigma, usize::MAX).len()
    });
    println!("sequential find_violations: {}", fmt_duration(seq));

    println!("\ndetection wall time vs workers:");
    let mut table = Table::new(&["p", "time", "speedup", "violations", "units", "splits"]);
    for &p in &scale.workers {
        let config = DetectConfig {
            ttl: scale.default_ttl,
            ..DetectConfig::with_workers(p)
        };
        let mut found = 0usize;
        let mut units = 0u64;
        let mut splits = 0u64;
        let t = time_median(scale.repeats, || {
            let r = detect(&graph, &w.sigma, &config);
            found = r.violations.len();
            units = r.metrics.units_dispatched;
            splits = r.metrics.units_split;
        });
        table.row(vec![
            p.to_string(),
            fmt_duration(t),
            format!("{:.2}x", seq.as_secs_f64() / t.as_secs_f64()),
            found.to_string(),
            units.to_string(),
            splits.to_string(),
        ]);
    }
    table.print();

    // Skew: one hub connected to everything makes one pivot unit huge.
    println!("\nTTL splitting on a skewed (hub) graph, p = 4:");
    let hub_graph = hub_heavy_graph(2_000);
    let mut pat = gfd_graph::Pattern::new();
    let t_label = LabelId(1); // first interned label below
    let x = pat.add_node(t_label, "x");
    let y = pat.add_node(t_label, "y");
    let z = pat.add_node(t_label, "z");
    pat.add_edge(x, LabelId(2), y);
    pat.add_edge(y, LabelId(2), z);
    let a = gfd_graph::AttrId::new(0);
    let sigma = gfd_core::GfdSet::from_vec(vec![gfd_core::Gfd::new(
        "chain",
        pat,
        vec![],
        vec![gfd_core::Literal::eq_const(x, a, 1i64)],
    )]);
    let mut table = Table::new(&["TTL", "time", "splits"]);
    for ttl in [
        Duration::ZERO,
        Duration::from_millis(1),
        Duration::from_secs(10),
    ] {
        let config = DetectConfig {
            ttl,
            max_violations: usize::MAX,
            ..DetectConfig::with_workers(4)
        };
        let mut splits = 0u64;
        let t = time_median(scale.repeats, || {
            let r = detect(&hub_graph, &sigma, &config);
            splits = r.metrics.units_split;
        });
        table.row(vec![
            format!("{ttl:?}"),
            fmt_duration(t),
            splits.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: near-linear speedup while cores last (mirrors Fig. 6a), and\n\
         on the skewed graph a large TTL leaves the hub unit to one worker while small\n\
         TTLs spread it — the same straggler story as Fig. 6(k)."
    );
}

/// A star-plus-ring graph: node 0 links to and from everyone; the ring
/// gives every node degree ≥ 2 so chains exist everywhere.
fn hub_heavy_graph(n: usize) -> Graph {
    let t = LabelId(1);
    let e = LabelId(2);
    let mut g = Graph::with_capacity(n);
    for _ in 0..n {
        g.add_node(t);
    }
    let hub = NodeId::new(0);
    for i in 1..n {
        let v = NodeId::new(i);
        g.add_edge(hub, e, v);
        g.add_edge(v, e, NodeId::new(1 + (i % (n - 1))));
    }
    g
}
