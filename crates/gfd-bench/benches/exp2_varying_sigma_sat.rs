//! Fig. 6(e) — satisfiability scalability with |Σ| (synthetic GFDs,
//! k = 6, l = 5, p = 4): SeqSat vs ParSat vs ParSatnp vs ParSatnb.
//!
//! Paper's shape: all grow with |Σ|; ParSat ≈ 3.14× faster than SeqSat on
//! average; the np/nb gaps are milder than Exp-1 (k fixed at 6). Also
//! verified here: when Σ is unsatisfiable, both Seq and Par are
//! insensitive to |Σ| thanks to early termination.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_gen::synthetic_workload;
use gfd_parallel::{par_sat, ParConfig};

fn main() {
    let scale = scale();
    banner(
        "Exp-2 (Fig. 6e): satisfiability, varying |Σ| (k=6, l=5, p=4)",
        "SeqSat 1321s / ParSat 430s at |Σ|=10000; ParSat ≈ 3.14x faster on average",
    );

    let cfg = ParConfig::with_workers(4).with_ttl(scale.default_ttl);
    let mut table = Table::new(&[
        "|Σ|",
        "SeqSat",
        "ParSat wall",
        "makespan",
        "np wall",
        "nb wall",
    ]);
    for &size in &scale.exp2_sigmas {
        let w = synthetic_workload(size, 6, 5, 42);
        let t_seq = time_median(scale.repeats, || {
            assert!(gfd_core::seq_sat(&w.sigma).is_satisfiable());
        });
        let mut makespan = std::time::Duration::ZERO;
        let t_par = time_median(scale.repeats, || {
            let r = par_sat(&w.sigma, &cfg);
            assert!(r.is_satisfiable());
            makespan = r.metrics.makespan().unwrap_or(r.metrics.elapsed);
        });
        let t_np = time_median(scale.repeats, || {
            assert!(par_sat(&w.sigma, &cfg.clone().without_pipeline()).is_satisfiable());
        });
        let t_nb = time_median(scale.repeats, || {
            assert!(par_sat(&w.sigma, &cfg.clone().without_split()).is_satisfiable());
        });
        table.row(vec![
            size.to_string(),
            fmt_duration(t_seq),
            fmt_duration(t_par),
            fmt_duration(makespan),
            fmt_duration(t_np),
            fmt_duration(t_nb),
        ]);
    }
    table.print();

    // The unsat insensitivity claim: conflict chains of fixed depth are
    // found in near-constant time regardless of |Σ|.
    println!("\nunsatisfiable variants (early termination — paper: 'insensitive to |Σ|'):");
    let mut table = Table::new(&["|Σ|", "SeqSat(unsat)", "ParSat(unsat)"]);
    for &size in &scale.exp2_sigmas {
        let w = gfd_gen::real_life_workload(gfd_gen::Dataset::DBpedia, size, 42, Some(4));
        let t_seq = time_median(scale.repeats, || {
            assert!(!gfd_core::seq_sat(&w.sigma).is_satisfiable());
        });
        let t_par = time_median(scale.repeats, || {
            assert!(!par_sat(&w.sigma, &cfg).is_satisfiable());
        });
        table.row(vec![
            size.to_string(),
            fmt_duration(t_seq),
            fmt_duration(t_par),
        ]);
    }
    table.print();
    println!("\nexpected shape: satisfiable rows grow with |Σ|; unsat rows stay low and flat.");
}
