//! Fig. 6(a)/(b) — parallel scalability of satisfiability checking:
//! ParSat vs ParSatnp (no pipelining) vs ParSatnb (no splitting), varying
//! the number of workers p, on DBpedia-like and YAGO2-like rule sets.
//!
//! Paper's shape: ParSat ~3.7×/3.2× faster as p goes 4→20; beats `nb` by
//! 3.8×/3.7× and `np` by 1.4×/1.6× on average.
//!
//! The `makespan` column (max per-worker CPU time) is the faithful
//! scalability measure on hosts with fewer cores than workers.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_gen::{real_life_workload, Dataset};
use gfd_parallel::{par_sat, DispatchMode, ParConfig};
use std::time::Duration;

fn main() {
    let scale = scale();
    banner(
        "Exp-1 (Fig. 6a, 6b): ParSat scalability, varying p",
        "ParSat 3.4x faster from p=4 to 20; vs nb 3.8x, vs np 1.4-1.6x",
    );

    for dataset in [Dataset::DBpedia, Dataset::Yago2] {
        // Satisfiable sets: the whole workload is processed, so the
        // scalability of the full computation is measured (unsat early
        // termination is studied in Exp-2).
        let w = real_life_workload(dataset, scale.exp1_sigma, 42, None);
        let seq = time_median(scale.repeats, || {
            assert!(gfd_core::seq_sat(&w.sigma).is_satisfiable());
        });
        println!(
            "\n[{}] |Σ| = {}, SeqSat reference: {}",
            w.name,
            w.sigma.len(),
            fmt_duration(seq)
        );

        let mut table = Table::new(&[
            "p",
            "ParSat wall",
            "makespan",
            "coord wall",
            "np wall",
            "nb wall",
            "splits",
            "steals",
            "speedup(mk)",
        ]);
        let mut first_makespan: Option<Duration> = None;
        for &p in &scale.workers {
            let base = ParConfig::with_workers(p).with_ttl(scale.default_ttl);
            let mut makespan = Duration::ZERO;
            let mut splits = 0u64;
            let mut steals = 0u64;
            let t = time_median(scale.repeats, || {
                let r = par_sat(&w.sigma, &base);
                assert!(r.is_satisfiable());
                makespan = r.metrics.makespan().unwrap_or(r.metrics.elapsed);
                splits = r.metrics.units_split;
                steals = r.metrics.units_stolen;
            });
            // The pre-unification dispatch topology: one central queue,
            // an idle round-trip per hand-out.
            let coordinator = base.clone().with_dispatch(DispatchMode::Coordinator);
            let t_coord = time_median(scale.repeats, || {
                assert!(par_sat(&w.sigma, &coordinator).is_satisfiable());
            });
            let t_np = time_median(scale.repeats, || {
                assert!(par_sat(&w.sigma, &base.clone().without_pipeline()).is_satisfiable());
            });
            let t_nb = time_median(scale.repeats, || {
                assert!(par_sat(&w.sigma, &base.clone().without_split()).is_satisfiable());
            });
            let speedup = first_makespan.get_or_insert(makespan).as_secs_f64()
                / makespan.as_secs_f64().max(1e-9);
            table.row(vec![
                p.to_string(),
                fmt_duration(t),
                fmt_duration(makespan),
                fmt_duration(t_coord),
                fmt_duration(t_np),
                fmt_duration(t_nb),
                splits.to_string(),
                steals.to_string(),
                format!("{speedup:.2}x"),
            ]);
        }
        table.print();
    }
    println!(
        "\nexpected shape: makespan (and, with enough cores, wall) shrinks as p grows;\n\
         np pays for materializing per-unit match lists; nb suffers on straggler units."
    );
}
