//! Exp-6 (beyond paper): incremental detection over delta streams.
//!
//! The streaming scenario the static pipeline cannot serve: a graph
//! under live updates, where each batch must restore an exact violation
//! set. Head-to-head per batch at delta sizes 0.1% / 1% / 10% of |E|:
//!
//! * **overlay-incremental** — `gfd_incr::IncrementalDetector::apply`:
//!   delta-CSR overlay, dirty-frontier unit regeneration, cache merge;
//! * **full re-detect** — mutate the builder graph, re-freeze
//!   (`LabelIndex::build` inside `detect`) and detect from scratch.
//!
//! Both paths produce identical violation sets (asserted here and pinned
//! by the `incremental_equivalence` suite); the question is cost. The
//! run also starts the perf record: results land in `BENCH_exp6.json`.

use gfd_bench::{banner, fmt_duration, scale, time_once, Table};
use gfd_detect::{detect, DetectConfig};
use gfd_gen::{
    delta_stream, plant_violation, random_graph, real_life_workload, Dataset, DeltaStreamConfig,
    GraphGenConfig,
};
use gfd_incr::{IncrConfig, IncrementalDetector};
use std::time::Duration;

struct Row {
    fraction: f64,
    ops: usize,
    incr: Duration,
    full: Duration,
    rerun_pivots: usize,
    violations: usize,
}

fn main() {
    let scale = scale();
    banner(
        "Exp-6 (beyond paper): incremental detection over delta streams",
        "streaming extension of §V locality (dirty-frontier re-reasoning)",
    );

    let w = real_life_workload(Dataset::DBpedia, 40, 7, None);
    let nodes = match scale.name {
        "full" => 60_000,
        _ => 6_000,
    };
    let mut graph = random_graph(
        &w.schema,
        &GraphGenConfig {
            nodes,
            edges: nodes * 3,
            attr_prob: 0.3,
            seed: 7,
        },
    );
    for (i, (_, gfd)) in w.sigma.iter().take(10).enumerate() {
        plant_violation(&mut graph, gfd, &w.schema, 600 + i as u64);
    }
    println!(
        "\ndata graph: {} nodes, {} edges; {} rules; workers = 4",
        graph.node_count(),
        graph.edge_count(),
        w.sigma.len()
    );

    let workers = 4;
    let batches_per_fraction = 3;
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&[
        "delta",
        "ops/batch",
        "incr/batch",
        "full/batch",
        "speedup",
        "rerun pivots",
    ]);

    for &fraction in &[0.001f64, 0.01, 0.1] {
        let stream = delta_stream(
            &graph,
            &w.schema,
            &DeltaStreamConfig {
                batches: batches_per_fraction,
                edge_fraction: fraction,
                seed: 1000 + (fraction * 10_000.0) as u64,
                ..Default::default()
            },
        );

        // Incremental path: one session, batches applied in order. The
        // seeding full detect is the session's one-time cost and is not
        // part of the per-batch measurement.
        let mut incr = IncrementalDetector::new(
            graph.clone(),
            w.sigma.clone(),
            IncrConfig {
                detect: DetectConfig::with_workers(workers),
                ..Default::default()
            },
        );
        // Full path: the same mutations on a reference graph, re-frozen
        // and re-detected from scratch each batch.
        let mut reference = graph.clone();

        let mut incr_total = Duration::ZERO;
        let mut full_total = Duration::ZERO;
        let mut ops = 0usize;
        let mut rerun = 0usize;
        let mut live = 0usize;
        for batch in &stream {
            ops += batch.len();
            let (t_incr, rep) = time_once(|| incr.apply(batch));
            incr_total += t_incr;
            rerun += rep.rerun_pivots;
            live = rep.violations_total;

            let (t_full, full_count) = time_once(|| {
                batch.apply_to_graph(&mut reference);
                detect(&reference, &w.sigma, &DetectConfig::with_workers(workers))
                    .violations
                    .len()
            });
            full_total += t_full;
            assert_eq!(
                live, full_count,
                "incremental and full detect disagree at delta {fraction}"
            );
        }

        let n = batches_per_fraction as u32;
        let row = Row {
            fraction,
            ops: ops / batches_per_fraction,
            incr: incr_total / n,
            full: full_total / n,
            rerun_pivots: rerun / batches_per_fraction,
            violations: live,
        };
        table.row(vec![
            format!("{:.1}%", fraction * 100.0),
            row.ops.to_string(),
            fmt_duration(row.incr),
            fmt_duration(row.full),
            format!("{:.2}x", row.full.as_secs_f64() / row.incr.as_secs_f64()),
            row.rerun_pivots.to_string(),
        ]);
        rows.push(row);
    }

    println!("\nper-batch cost, incremental vs full re-freeze + re-detect:");
    table.print();
    println!(
        "\nexpected shape: the overlay path wins at every size — widest at 0.1%/1%\n\
         where the dirty frontier is a small fraction of the pivot space, narrowing\n\
         at 10% as the frontier (pattern radius ≈ 5 around thousands of touched\n\
         nodes) approaches the whole graph and compaction re-freezes kick in."
    );

    // Start the perf record: machine-readable results for trend
    // tracking, at the workspace root regardless of bench CWD.
    let json = render_json(scale.name, nodes, &rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exp6.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

fn render_json(scale: &str, nodes: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp6_incremental\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"nodes\": {nodes},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"delta_fraction\": {}, \"ops_per_batch\": {}, \"incr_ms\": {:.3}, \
             \"full_ms\": {:.3}, \"speedup\": {:.2}, \"rerun_pivots\": {}, \
             \"violations\": {}}}{}\n",
            r.fraction,
            r.ops,
            r.incr.as_secs_f64() * 1e3,
            r.full.as_secs_f64() * 1e3,
            r.full.as_secs_f64() / r.incr.as_secs_f64(),
            r.rerun_pivots,
            r.violations,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
