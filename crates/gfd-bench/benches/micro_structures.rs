//! Criterion microbenchmarks of the core data structures, plus ablations
//! of the design choices DESIGN.md calls out (dependency ordering,
//! component pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfd_core::{seq_sat_with, EqRel, ReasonOptions};
use gfd_gen::synthetic_workload;
use gfd_graph::{AttrId, Graph, LabelIndex, NodeId, Pattern, Vocab};
use gfd_match::{dual_simulation, MatchPlan};
use gfd_parallel::{DispatchMode, ParConfig};
use std::hint::black_box;

fn bench_eq_rel(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq_rel");
    g.bench_function("bind_1k", |b| {
        b.iter(|| {
            let mut eq = EqRel::new();
            for i in 0..1000usize {
                eq.bind(
                    (NodeId::new(i), AttrId::new(i % 7)),
                    gfd_graph::ValueId::of((i % 5) as i64),
                )
                .unwrap();
            }
            black_box(eq.key_count())
        })
    });
    g.bench_function("merge_chain_1k", |b| {
        b.iter(|| {
            let mut eq = EqRel::new();
            for i in 0..1000usize {
                eq.merge(
                    (NodeId::new(i), AttrId::new(0)),
                    (NodeId::new(i + 1), AttrId::new(0)),
                )
                .unwrap();
            }
            black_box(eq.same_class(
                (NodeId::new(0), AttrId::new(0)),
                (NodeId::new(1000), AttrId::new(0)),
            ))
        })
    });
    g.finish();
}

/// A ring-with-chords graph that gives the matcher real work.
fn ring_graph(n: usize, vocab: &mut Vocab) -> Graph {
    let t = vocab.label("t");
    let e = vocab.label("e");
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(t)).collect();
    for i in 0..n {
        g.add_edge(nodes[i], e, nodes[(i + 1) % n]);
        g.add_edge(nodes[i], e, nodes[(i + 7) % n]);
    }
    g
}

fn bench_matching(c: &mut Criterion) {
    let mut vocab = Vocab::new();
    let g = ring_graph(256, &mut vocab);
    let idx = LabelIndex::build(&g);
    let t = vocab.label("t");
    let e = vocab.label("e");
    let mut path4 = Pattern::new();
    let vars: Vec<_> = (0..4).map(|i| path4.add_node(t, format!("v{i}"))).collect();
    for w in vars.windows(2) {
        path4.add_edge(w[0], e, w[1]);
    }

    let mut group = c.benchmark_group("matching");
    group.bench_function("count_path4_ring256", |b| {
        b.iter(|| black_box(gfd_match::count_matches(&g, &idx, &path4)))
    });
    group.bench_function("plan_build", |b| {
        b.iter(|| black_box(MatchPlan::build(&path4, None, Some(&idx))))
    });
    group.bench_function("dual_simulation", |b| {
        b.iter(|| black_box(dual_simulation(&g, &idx, &path4).is_some()))
    });
    group.finish();
}

/// A graph with average out-degree ≥ 16 across several edge labels: the
/// regime where the frozen CSR's O(log d) probes and label sub-slices
/// must beat the builder's Vec scans (DESIGN.md §1).
fn dense_graph(n: usize, out_degree: usize, labels: usize, vocab: &mut Vocab) -> Graph {
    let t = vocab.label("t");
    let ls: Vec<_> = (0..labels).map(|i| vocab.label(&format!("e{i}"))).collect();
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(t)).collect();
    for i in 0..n {
        for j in 1..=out_degree {
            // Deterministic pseudo-random targets, spread over labels.
            let dst = (i * 31 + j * 97) % n;
            g.add_edge(nodes[i], ls[j % labels], nodes[dst]);
        }
    }
    g
}

/// Head-to-head: builder Vec-scan vs frozen CSR on the two probes that
/// dominate the matching hot path.
fn bench_structures(c: &mut Criterion) {
    let mut vocab = Vocab::new();
    let n = 1024;
    let degree = 32; // well past the ≥16 crossover regime
    let g = dense_graph(n, degree, 4, &mut vocab);
    let csr = g.freeze();
    let labels: Vec<_> = (0..4).map(|i| vocab.label(&format!("e{i}"))).collect();

    // A fixed probe mix: half hits (the exact label and target an edge
    // was built with), half misses.
    let probes: Vec<(NodeId, gfd_graph::LabelId, NodeId)> = (0..512)
        .map(|k| {
            let src = (k * 53) % n;
            if k % 2 == 0 {
                // dense_graph added src --e{j%4}--> (src*31 + j*97) % n.
                let j = k % degree + 1;
                let dst = (src * 31 + j * 97) % n;
                (NodeId::new(src), labels[j % 4], NodeId::new(dst))
            } else {
                let dst = (src * 31 + 1) % n; // usually absent
                (NodeId::new(src), labels[k % 4], NodeId::new(dst))
            }
        })
        .collect();
    let hits = probes
        .iter()
        .filter(|&&(s, l, d)| g.has_edge(s, l, d))
        .count();
    assert!(
        (200..=312).contains(&hits),
        "probe mix should be roughly half hits, got {hits}/512"
    );

    let mut group = c.benchmark_group("micro_structures");
    group.bench_function("has_edge/vec_scan", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&(s, l, d)| g.has_edge(s, l, d))
                .count()
        })
    });
    group.bench_function("has_edge/csr", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&(s, l, d)| csr.has_edge(s, l, d))
                .count()
        })
    });

    // Anchored expansion: candidates of (node, label), deduplicated —
    // the Vec-scan variant filters the whole adjacency with a
    // `contains` dedup exactly as the pre-CSR matcher did.
    group.bench_function("anchored_expansion/vec_scan", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..n {
                let v = NodeId::new(i);
                let label = labels[i % 4];
                let mut candidates: Vec<NodeId> = Vec::new();
                for &(el, node) in g.out_edges(v) {
                    if label.pattern_matches(el) && !candidates.contains(&node) {
                        candidates.push(node);
                    }
                }
                total += candidates.len();
            }
            total
        })
    });
    group.bench_function("anchored_expansion/csr", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..n {
                let v = NodeId::new(i);
                let label = labels[i % 4];
                // Sub-slice node ids strictly increase: dedup is free.
                total += csr.out_with_label(v, label).len();
            }
            total
        })
    });
    group.finish();
}

/// Head-to-head: streamed two-pointer intersection vs the galloping
/// (exponential-probe) fallback `intersect_sorted_view` switches to when
/// one side is ≥8x longer. Balanced inputs stay on the two-pointer; the
/// skewed cases pin that galloping wins by a wide margin there.
fn bench_intersect(c: &mut Criterion) {
    // `long` = every 3rd id of a 192k universe; `short` = 64 scattered
    // ids (1000x skew); `mid` = comparable density for the balanced case.
    let long: Vec<NodeId> = (0..65_536usize).map(|i| NodeId::new(i * 3)).collect();
    let short: Vec<NodeId> = (0..64usize).map(|i| NodeId::new(i * 3001)).collect();
    let mid: Vec<NodeId> = (0..65_536usize).map(|i| NodeId::new(i * 3 + 1)).collect();
    let expect = gfd_match::intersect_slices_two_pointer(&short, &long);
    assert_eq!(gfd_match::intersect_slices_gallop(&short, &long), expect);

    let mut group = c.benchmark_group("intersect");
    group.bench_function("skewed_1000x/two_pointer", |b| {
        b.iter(|| black_box(gfd_match::intersect_slices_two_pointer(&short, &long)))
    });
    group.bench_function("skewed_1000x/gallop", |b| {
        b.iter(|| black_box(gfd_match::intersect_slices_gallop(&short, &long)))
    });
    group.bench_function("balanced/two_pointer", |b| {
        b.iter(|| black_box(gfd_match::intersect_slices_two_pointer(&mid, &long)))
    });
    group.bench_function("balanced/gallop", |b| {
        b.iter(|| black_box(gfd_match::intersect_slices_gallop(&mid, &long)))
    });
    group.finish();
}

/// Head-to-head: the raw queue structures under the scheduler's access
/// pattern — one owner draining its own queue, `p - 1` thieves pulling
/// from the other end — Chase–Lev [`WsDeque`] vs the old
/// `Mutex<VecDeque>`. Acceptance: the lock-free deque is no slower at
/// p = 2 and faster at p = 8.
fn bench_deque(c: &mut Criterion) {
    use gfd_runtime::deque::{Steal, WsDeque};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    const UNITS: usize = 65_536;
    // A unit costs a few nanoseconds, like a cheap scan unit: enough
    // that the structures are exercised at a realistic op:work ratio,
    // small enough that queue overhead still shows.
    fn consume(v: usize) -> usize {
        let mut h = v as u64 ^ 0x9e37_79b9_7f4a_7c15;
        for _ in 0..4 {
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9).rotate_left(17);
        }
        h as usize & 0xff
    }

    let mut group = c.benchmark_group("deque");
    for p in [2usize, 8] {
        // Chase–Lev under the scheduler's pattern: the owner drains its
        // own bottom lock-free; each thief claims up to half the deque
        // (one top-CAS per element, like `sched::steal`), consumes the
        // loot locally, and yields when it finds nothing.
        group.bench_with_input(BenchmarkId::new("chase_lev", p), &p, |b, &p| {
            b.iter(|| {
                let dq = WsDeque::<usize>::new();
                for v in (0..UNITS).rev() {
                    dq.push(v);
                }
                let consumed = AtomicUsize::new(0);
                let sink = AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for t in 0..p {
                        let (dq, consumed, sink) = (&dq, &consumed, &sink);
                        s.spawn(move || {
                            let mut local = 0usize;
                            while consumed.load(Ordering::Relaxed) < UNITS {
                                if t == 0 {
                                    let mut n = 0;
                                    while let Some(v) = dq.pop() {
                                        local += consume(v);
                                        n += 1;
                                    }
                                    consumed.fetch_add(n, Ordering::Relaxed);
                                    std::thread::yield_now();
                                } else {
                                    let mut budget = dq.len_hint().div_ceil(2).max(1);
                                    let mut loot = Vec::with_capacity(budget);
                                    while budget > 0 {
                                        match dq.steal() {
                                            Steal::Success(v) => {
                                                loot.push(v);
                                                budget -= 1;
                                            }
                                            Steal::Retry => continue,
                                            Steal::Empty => break,
                                        }
                                    }
                                    if loot.is_empty() {
                                        std::thread::yield_now();
                                        continue;
                                    }
                                    let n = loot.len();
                                    for v in loot {
                                        local += consume(v);
                                    }
                                    consumed.fetch_add(n, Ordering::Relaxed);
                                }
                            }
                            sink.fetch_add(local, Ordering::Relaxed);
                        });
                    }
                });
                black_box(sink.into_inner())
            })
        });
        // The old layout: every owner pop takes the lock; a thief locks
        // and splits off the back half wholesale.
        group.bench_with_input(BenchmarkId::new("mutex_vecdeque", p), &p, |b, &p| {
            b.iter(|| {
                let q = Mutex::new((0..UNITS).collect::<VecDeque<usize>>());
                let consumed = AtomicUsize::new(0);
                let sink = AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for t in 0..p {
                        let (q, consumed, sink) = (&q, &consumed, &sink);
                        s.spawn(move || {
                            let mut local = 0usize;
                            while consumed.load(Ordering::Relaxed) < UNITS {
                                if t == 0 {
                                    let got = q.lock().unwrap().pop_front();
                                    match got {
                                        Some(v) => {
                                            local += consume(v);
                                            consumed.fetch_add(1, Ordering::Relaxed);
                                        }
                                        None => std::thread::yield_now(),
                                    }
                                } else {
                                    let loot = {
                                        let mut q = q.lock().unwrap();
                                        let keep = q.len().div_ceil(2);
                                        q.split_off(keep)
                                    };
                                    if loot.is_empty() {
                                        std::thread::yield_now();
                                        continue;
                                    }
                                    let n = loot.len();
                                    for v in loot {
                                        local += consume(v);
                                    }
                                    consumed.fetch_add(n, Ordering::Relaxed);
                                }
                            }
                            sink.fetch_add(local, Ordering::Relaxed);
                        });
                    }
                });
                black_box(sink.into_inner())
            })
        });
    }
    group.finish();
}

/// Head-to-head: the old centralized coordinator dispatch vs per-worker
/// deques with work stealing, on the same satisfiability workload at
/// p ∈ {2, 4, 8}. Work stealing removes the idle round-trip a worker paid
/// per batch; the bench pins that it is never slower.
fn bench_scheduler(c: &mut Criterion) {
    let w = synthetic_workload(60, 5, 3, 7);
    assert!(gfd_parallel::par_sat(&w.sigma, &ParConfig::with_workers(2)).is_satisfiable());
    let mut group = c.benchmark_group("sched");
    for p in [2usize, 4, 8] {
        for (name, dispatch) in [
            ("work_stealing", DispatchMode::WorkStealing),
            ("coordinator_dispatch", DispatchMode::Coordinator),
        ] {
            let cfg = ParConfig::with_workers(p).with_dispatch(dispatch);
            group.bench_with_input(BenchmarkId::new(name, p), &cfg, |b, cfg| {
                b.iter(|| black_box(gfd_parallel::par_sat(&w.sigma, cfg).is_satisfiable()))
            });
        }
    }
    group.finish();
}

/// Head-to-head guard for the observability layer (DESIGN.md §13), in two
/// halves. First the dormant path in isolation: a disabled `TraceBuf`'s
/// per-event-site cost must stay branch-cheap (no clock read, no ring
/// write). Then the sched workload off-vs-on: with event tracing
/// *enabled* the run must stay within 2% of the trace-disabled run
/// (interleaved min-of-runs, robust to load spikes). The disabled path
/// executes a strict subset of the enabled path's per-event work, so the
/// asserted bound also caps what the no-op instrumentation costs a
/// production run. The workload uses k = 6 patterns so per-unit match
/// work amortizes the enabled path's two clock reads per span — the
/// regime every real workload is in; tracing sub-microsecond units is
/// what the ring's drop counter is for.
fn bench_trace_overhead(_c: &mut Criterion) {
    use gfd_bench::fmt_duration;
    use gfd_parallel::{EventKind, TraceBuf, TraceSpec};
    use std::time::{Duration, Instant};

    // Half 1: the no-op event site, measured directly.
    const SITES: u32 = 4_000_000;
    let mut buf = TraceBuf::new(black_box(TraceSpec::disabled()), 0);
    let start = Instant::now();
    for i in 0..SITES {
        let span = buf.start();
        buf.span(EventKind::RuleEval, i, span, 1, 0);
    }
    black_box(&mut buf);
    let per_site = start.elapsed().as_nanos() as f64 / f64::from(SITES);
    println!("trace_disabled_event_site: {per_site:.2} ns/site ({SITES} sites)");
    assert!(
        per_site < 5.0,
        "disabled event site must stay branch-cheap, got {per_site:.2} ns"
    );

    // Half 2: the sched workload (the same one `bench_scheduler` times),
    // tracing off vs on. The enabled ring is sized to the run: the
    // default 2^16-entry ring is a ~3 MiB-per-worker allocation that
    // would dominate a millisecond-scale run as a fixed cost, which is
    // start-up amortization, not per-event overhead.
    let w = synthetic_workload(60, 5, 3, 7);
    let off_cfg = ParConfig::with_workers(4).with_trace(TraceSpec::disabled());
    let on_cfg = ParConfig::with_workers(4).with_trace(TraceSpec::with_capacity(1 << 12));
    let run = |cfg: &ParConfig| {
        let start = Instant::now();
        black_box(gfd_parallel::par_sat(&w.sigma, cfg).is_satisfiable());
        start.elapsed()
    };
    let (_, _) = (run(&off_cfg), run(&on_cfg)); // warm-up
    let (mut off, mut on) = (Duration::MAX, Duration::MAX);
    for _ in 0..9 {
        off = off.min(run(&off_cfg));
        on = on.min(run(&on_cfg));
    }
    let overhead = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    println!(
        "sched_trace_overhead/p4: trace_off {}  trace_on {}  overhead {:+.2}%",
        fmt_duration(off),
        fmt_duration(on),
        overhead * 100.0,
    );
    // 2% relative plus a 2ms absolute floor: quick-scale runs are a few
    // tens of ms, where a bare percentage would amplify timer noise.
    assert!(
        on <= off.mul_f64(1.02) + Duration::from_millis(2),
        "tracing overhead exceeded 2%: off={off:?} on={on:?}"
    );
}

/// Zero-cost guard for the `Atomics` family parameterization
/// (DESIGN.md §14.2): the production `WsDeque<usize, StdAtomics>` —
/// the generic deque instantiated with the delegating family — must
/// run the owner's push/pop hot loop no slower than a hand-inlined
/// monomorphic Chase–Lev written directly against `std::sync::atomic`.
/// `StdAtomics` is `#[inline(always)]` delegation over the std types,
/// so the two loops should compile to the same code; the assertion
/// (min-of-interleaved-runs, with an absolute floor against timer
/// noise) catches any future indirection creeping into the family
/// traits.
fn bench_atomics_zero_cost(_c: &mut Criterion) {
    use gfd_bench::fmt_duration;
    use gfd_runtime::deque::WsDeque;
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, Ordering};
    use std::time::{Duration, Instant};

    const BATCH: usize = 256;
    const ROUNDS: usize = 20_000;

    /// The baseline: the same C11 Chase–Lev owner path, monomorphic,
    /// no trait in sight — including the buffer-pointer indirection
    /// the real deque pays on every op (fixed capacity, so the grow
    /// branch is taken-but-never-entered on both sides, like the
    /// workload itself guarantees for the generic deque too).
    struct RawBuffer {
        slots: Box<[UnsafeCell<MaybeUninit<usize>>]>,
        mask: usize,
    }
    struct RawDeque {
        bottom: AtomicIsize,
        top: AtomicIsize,
        buf: std::sync::atomic::AtomicPtr<RawBuffer>,
    }
    impl RawDeque {
        fn new(cap: usize) -> Self {
            let cap = cap.next_power_of_two();
            let buf = Box::new(RawBuffer {
                slots: (0..cap)
                    .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                    .collect(),
                mask: cap - 1,
            });
            RawDeque {
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
                buf: std::sync::atomic::AtomicPtr::new(Box::into_raw(buf)),
            }
        }
        fn push(&self, value: usize) {
            let b = self.bottom.load(Ordering::Relaxed);
            let t = self.top.load(Ordering::Acquire);
            let buf = self.buf.load(Ordering::Relaxed);
            // SAFETY: single-threaded here; `buf` is the live buffer
            // and slot `b` is outside the live window until the
            // release store below.
            unsafe {
                assert!(b - t < ((*buf).mask + 1) as isize, "baseline never grows");
                (*(*buf).slots[(b as usize) & (*buf).mask].get()).write(value);
            }
            self.bottom.store(b + 1, Ordering::Release);
        }
        fn pop(&self) -> Option<usize> {
            let b = self.bottom.load(Ordering::Relaxed) - 1;
            let buf = self.buf.load(Ordering::Relaxed);
            self.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let t = self.top.load(Ordering::Relaxed);
            if t > b {
                self.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            // SAFETY: `[t, b]` non-empty, slot `b` written by a prior push.
            let value =
                unsafe { (*(*buf).slots[(b as usize) & (*buf).mask].get()).assume_init_read() };
            if t == b {
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            Some(value)
        }
    }
    impl Drop for RawDeque {
        fn drop(&mut self) {
            // SAFETY: created by `Box::into_raw` in `new`, never replaced.
            drop(unsafe { Box::from_raw(*self.buf.get_mut()) });
        }
    }

    let generic = WsDeque::<usize>::with_capacity(BATCH);
    let run_generic = || {
        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..ROUNDS {
            for i in 0..BATCH {
                generic.push(i);
            }
            while let Some(v) = generic.pop() {
                acc = acc.wrapping_add(v);
            }
        }
        black_box(acc);
        start.elapsed()
    };
    let raw = RawDeque::new(BATCH);
    let run_raw = || {
        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..ROUNDS {
            for i in 0..BATCH {
                raw.push(i);
            }
            while let Some(v) = raw.pop() {
                acc = acc.wrapping_add(v);
            }
        }
        black_box(acc);
        start.elapsed()
    };

    let (_, _) = (run_generic(), run_raw()); // warm-up
    let (mut generic_t, mut raw_t) = (Duration::MAX, Duration::MAX);
    for _ in 0..9 {
        generic_t = generic_t.min(run_generic());
        raw_t = raw_t.min(run_raw());
    }
    let overhead = generic_t.as_secs_f64() / raw_t.as_secs_f64() - 1.0;
    println!(
        "atomics_zero_cost: generic {}  monomorphic {}  overhead {:+.2}%",
        fmt_duration(generic_t),
        fmt_duration(raw_t),
        overhead * 100.0,
    );
    // 10% relative plus a 2ms absolute floor: the loops should be
    // instruction-identical, but micro-loop timing wobbles with
    // alignment and machine load.
    assert!(
        generic_t <= raw_t.mul_f64(1.10) + Duration::from_millis(2),
        "Atomics parameterization is not zero-cost: generic={generic_t:?} raw={raw_t:?}"
    );
}

/// Asserted guard for the interned-value literal path (DESIGN.md §15):
/// a `ValueId` equality check must beat the `Value::Str(Arc<str>)`
/// content compare by ≥ 3x on a string-heavy mix, and must not regress
/// the balanced (int-heavy) mix the old representation was already fast
/// on. Both sides answer the same probe list and must agree exactly —
/// id equality ⟺ value equality is what makes the substitution sound.
fn bench_literal_interning(_c: &mut Criterion) {
    use gfd_bench::fmt_duration;
    use gfd_graph::{Value, ValueId};
    use std::time::{Duration, Instant};

    // 64 distinct strings with a long shared prefix, so content compares
    // walk real bytes before diverging. Left/right pools are allocated
    // separately: equal contents never share an `Arc`, exactly like two
    // occurrences parsed from different input lines pre-interning.
    let make_str_pool = || -> Vec<Value> {
        (0..64)
            .map(|i| {
                Value::str(format!(
                    "the-quick-brown-fox-jumps-over-the-lazy-dog/{:03}",
                    i % 48 // 48 distinct values, some duplicated
                ))
            })
            .collect()
    };
    let make_int_pool = || -> Vec<Value> { (0..64).map(|i| Value::int((i % 48) as i64)).collect() };

    let probes: Vec<(usize, usize)> = (0..4096)
        .map(|k| ((k * 31) % 64, (k * 17 + k / 64) % 64))
        .collect();
    const SWEEPS: usize = 400;

    let guard = |label: &str, left: Vec<Value>, right: Vec<Value>, min_ratio: f64| {
        let left_ids: Vec<ValueId> = left.iter().map(|v| ValueId::of(v.clone())).collect();
        let right_ids: Vec<ValueId> = right.iter().map(|v| ValueId::of(v.clone())).collect();
        let run_values = || {
            let start = Instant::now();
            let mut eq = 0usize;
            for _ in 0..SWEEPS {
                for &(i, j) in &probes {
                    if left[i] == right[j] {
                        eq += 1;
                    }
                }
            }
            (start.elapsed(), black_box(eq))
        };
        let run_ids = || {
            let start = Instant::now();
            let mut eq = 0usize;
            for _ in 0..SWEEPS {
                for &(i, j) in &probes {
                    if left_ids[i] == right_ids[j] {
                        eq += 1;
                    }
                }
            }
            (start.elapsed(), black_box(eq))
        };
        let (_, val_eq) = run_values();
        let (_, id_eq) = run_ids(); // warm-up both paths
        assert_eq!(val_eq, id_eq, "{label}: interned equality must agree");
        let (mut vals_t, mut ids_t) = (Duration::MAX, Duration::MAX);
        for _ in 0..9 {
            vals_t = vals_t.min(run_values().0);
            ids_t = ids_t.min(run_ids().0);
        }
        let ratio = vals_t.as_secs_f64() / ids_t.as_secs_f64().max(1e-9);
        println!(
            "literal_check/{label}: arc_str {}  value_id {}  ({ratio:.1}x)",
            fmt_duration(vals_t),
            fmt_duration(ids_t),
        );
        assert!(
            ids_t.mul_f64(min_ratio) <= vals_t + Duration::from_millis(2),
            "{label}: interned check only {ratio:.2}x faster (need ≥ {min_ratio}x): \
             values={vals_t:?} ids={ids_t:?}"
        );
    };

    // String-heavy mix: the acceptance bar is ≥ 3x.
    guard("string_heavy", make_str_pool(), make_str_pool(), 3.0);
    // Balanced (int-heavy) mix: ints were already a word compare, so the
    // bar is only "no regression" (ratio ≥ 1 within the noise floor).
    guard("balanced_int", make_int_pool(), make_int_pool(), 1.0);
}

/// Asserted guard for the three-way intersection crossover
/// (DESIGN.md §15). Pins the plan-layer constants, checks the slice
/// kernels agree, and asserts the regime map the planner encodes:
///
/// * the hub regime, end to end: a multi-anchored step over fat,
///   overlapping adjacencies, searched with the stats-driven plan
///   (which routes the step through the bitset merge) must beat the
///   same plan with the bitset demoted (`MatchPlan::without_bitset`):
///   sorted merge + per-candidate probes — same `HomSearch`, same
///   ordering, same matches, only the strategy differs;
/// * skewed 1000x: galloping beats the two-pointer walk;
/// * balanced sparse: the two-pointer stays ahead of the bitset (the
///   case the `BITSET_ANCHOR_DEGREE` gate protects).
fn bench_intersect_crossover(_c: &mut Criterion) {
    use gfd_bench::fmt_duration;
    use gfd_match::{
        intersect_slices_bitset, intersect_slices_gallop, intersect_slices_two_pointer,
        HomSearch, IntersectStrategy, SearchLimits, BITSET_ANCHOR_DEGREE, BITSET_MIN_CANDIDATES,
    };
    use std::ops::ControlFlow;
    use std::time::{Duration, Instant};

    // The constants the planner and runtime gate on; DESIGN.md §15
    // documents these values, and the hub workload generator sizes its
    // head degree against them.
    assert_eq!(BITSET_ANCHOR_DEGREE, 64, "plan-layer bitset gate moved");
    assert_eq!(BITSET_MIN_CANDIDATES, 64, "runtime bitset gate moved");

    // Skew and balanced shapes mirror `bench_intersect`; the kernels
    // must agree everywhere.
    let long: Vec<NodeId> = (0..65_536usize).map(|i| NodeId::new(i * 3)).collect();
    let short: Vec<NodeId> = (0..64usize).map(|i| NodeId::new(i * 3001)).collect();
    let mid: Vec<NodeId> = (0..65_536usize).map(|i| NodeId::new(i * 3 + 1)).collect();
    for (a, b) in [(&short, &long), (&mid, &long)] {
        let expect = intersect_slices_two_pointer(a, b);
        assert_eq!(intersect_slices_gallop(a, b), expect);
        assert_eq!(intersect_slices_bitset(a, b), expect);
    }

    // Hub regime: five hubs with fat, heavily-overlapping spoke
    // adjacencies (residue windows mod 64, so pairwise overlaps stay
    // large but the last window thins the final intersection) and a
    // 7-node pattern whose last variable is anchored on all five. The
    // merge fallback intersects the two smallest adjacencies and then
    // binary-probes every surviving candidate against each remaining
    // anchor — the high overlap keeps those survivors alive through
    // most probes. The bitset fold streams each extra adjacency through
    // the scratch set once, one u64 AND per 64 nodes. `without_bitset`
    // demotes only the strategy, so ordering and anchors are identical
    // and the timing isolates the candidate-generation path.
    // Sized so each hub adjacency clearly outgrows L2, and windowed so
    // the hubs overlap almost completely: survivors stay fat through
    // every per-candidate probe of the merge fallback, which is exactly
    // the regime where folding whole adjacencies through the bitset
    // beats probing candidates one at a time.
    const SPOKES: usize = 245_760;
    // Each hub covers spokes whose index mod 64 falls in the window.
    const WINDOWS: [(usize, usize); 5] = [(0, 16), (0, 16), (0, 16), (0, 16), (8, 24)];
    let mut vocab = Vocab::new();
    let r_lbl = vocab.label("root");
    let hub_lbls: Vec<_> = ["ha", "hb", "hc", "hd", "he"]
        .into_iter()
        .map(|n| vocab.label(n))
        .collect();
    let s_lbl = vocab.label("spoke");
    let e = vocab.label("e");
    let mut g = Graph::new();
    let root = g.add_node(r_lbl);
    let hubs: Vec<NodeId> = hub_lbls.iter().map(|&l| g.add_node(l)).collect();
    for &h in &hubs {
        g.add_edge(root, e, h);
        g.add_edge(h, e, root);
    }
    for i in 0..hubs.len() {
        for j in i + 1..hubs.len() {
            g.add_edge(hubs[i], e, hubs[j]);
        }
    }
    let spokes: Vec<NodeId> = (0..SPOKES).map(|_| g.add_node(s_lbl)).collect();
    for (hi, (lo, hi_end)) in WINDOWS.into_iter().enumerate() {
        for (si, &sp) in spokes.iter().enumerate() {
            if (lo..hi_end).contains(&(si % 64)) {
                g.add_edge(hubs[hi], e, sp);
            }
        }
    }
    let idx = LabelIndex::build(&g);
    // Reciprocal r ↔ hub edges plus a hub clique keep every unplaced
    // hub's connectivity to the prefix strictly ahead of `d`'s, so the
    // connectivity-first ordering defers `d` until every hub is bound —
    // the multi-anchored closing step under test.
    let mut pat = Pattern::new();
    let r = pat.add_node(r_lbl, "r");
    let d_hubs: Vec<_> = ["a", "b", "c", "d4", "e5"]
        .into_iter()
        .zip(hub_lbls.iter().copied())
        .map(|(name, l)| pat.add_node(l, name))
        .collect();
    let d = pat.add_node(s_lbl, "d");
    for &h in &d_hubs {
        pat.add_edge(r, e, h);
        pat.add_edge(h, e, r);
        pat.add_edge(h, e, d);
    }
    for i in 0..d_hubs.len() {
        for j in i + 1..d_hubs.len() {
            pat.add_edge(d_hubs[i], e, d_hubs[j]);
        }
    }
    let stats_plan = MatchPlan::build(&pat, None, Some(&idx));
    let last = stats_plan.steps().last().expect("non-empty plan");
    assert_eq!(last.var, d, "spoke variable must close the plan");
    assert_eq!(last.anchors.len(), 5, "closing step must carry all anchors");
    assert_eq!(
        last.strategy,
        IntersectStrategy::Bitset,
        "stats plan must route the triply-anchored step through the bitset"
    );
    let merge_plan = stats_plan.without_bitset();
    assert!(
        merge_plan
            .steps()
            .iter()
            .all(|s| s.strategy != IntersectStrategy::Bitset),
        "demoted plan must stay on the merge path"
    );
    let count_with = |plan: &MatchPlan| -> usize {
        let mut count = 0usize;
        HomSearch::new(&g, &idx, &pat, plan).run(
            |_| {
                count += 1;
                ControlFlow::<()>::Continue(())
            },
            SearchLimits::none(),
        );
        count
    };
    let expect = count_with(&merge_plan);
    assert_eq!(count_with(&stats_plan), expect, "plans must agree");
    // d ranges over spokes in every window: residues [8, 16) mod 64.
    assert_eq!(expect, SPOKES / 64 * 8, "hub fixture match count drifted");
    // Timing probe: stop at the first match. Every intersection —
    // two-pointer merge, per-candidate probes, bitset folds — happens
    // while the closing frame is built, before anything is emitted, so
    // breaking early times pure candidate generation with the shared
    // match-emission cost excluded.
    let first_match = |plan: &MatchPlan| -> usize {
        let mut n = 0usize;
        HomSearch::new(&g, &idx, &pat, plan).run(
            |_| {
                n += 1;
                ControlFlow::Break(())
            },
            SearchLimits::none(),
        );
        n
    };

    let time = |f: &dyn Fn() -> usize| {
        let mut best = Duration::MAX;
        black_box(f()); // warm-up
        for _ in 0..9 {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed());
        }
        best
    };
    let floor = Duration::from_micros(500);

    let hub_merge = time(&|| (0..4).map(|_| first_match(&merge_plan)).sum());
    let hub_bit = time(&|| (0..4).map(|_| first_match(&stats_plan)).sum());
    println!(
        "intersect_crossover/hub_search: merge_plan {}  bitset_plan {}  ({:.2}x)",
        fmt_duration(hub_merge),
        fmt_duration(hub_bit),
        hub_merge.as_secs_f64() / hub_bit.as_secs_f64().max(1e-9),
    );
    assert!(
        hub_bit <= hub_merge + floor,
        "bitset plan must win the hub regime: merge={hub_merge:?} bitset={hub_bit:?}"
    );

    let skew_two = time(&|| {
        (0..64).map(|_| intersect_slices_two_pointer(&short, &long).len()).sum()
    });
    let skew_gal = time(&|| {
        (0..64).map(|_| intersect_slices_gallop(&short, &long).len()).sum()
    });
    println!(
        "intersect_crossover/skewed_1000x: two_pointer {}  gallop {}",
        fmt_duration(skew_two),
        fmt_duration(skew_gal),
    );
    assert!(
        skew_gal <= skew_two + floor,
        "gallop must win the 1000x skew: two={skew_two:?} gallop={skew_gal:?}"
    );

    let bal_two = time(&|| intersect_slices_two_pointer(&mid, &long).len());
    let bal_bit = time(&|| intersect_slices_bitset(&mid, &long).len());
    println!(
        "intersect_crossover/balanced: two_pointer {}  bitset {}",
        fmt_duration(bal_two),
        fmt_duration(bal_bit),
    );
    assert!(
        bal_two <= bal_bit + floor,
        "two-pointer must stay ahead on the balanced sparse case: \
         two={bal_two:?} bitset={bal_bit:?}"
    );
}

fn bench_ablations(c: &mut Criterion) {
    let w = synthetic_workload(80, 5, 3, 42);
    let mut group = c.benchmark_group("seq_sat_ablations");
    for (name, dep, prune) in [
        ("ordered+pruned", true, true),
        ("no_dependency_order", false, true),
        ("no_component_pruning", true, false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            let opts = ReasonOptions {
                use_dependency_order: dep,
                prune_components: prune,
            };
            b.iter(|| black_box(seq_sat_with(&w.sigma, &opts).is_satisfiable()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eq_rel,
    bench_structures,
    bench_matching,
    bench_intersect,
    bench_literal_interning,
    bench_intersect_crossover,
    bench_deque,
    bench_scheduler,
    bench_trace_overhead,
    bench_atomics_zero_cost,
    bench_ablations
);
criterion_main!(benches);
