//! Fig. 6(g)/(i) — impact of the pattern size k on satisfiability and
//! implication (DBpedia-like seeds, l = 3, p = 4).
//!
//! Paper's shape: all algorithms slow down as k grows (larger patterns →
//! exponentially larger match spaces); the optimizations matter more at
//! large k; at k = 10 ParSat/ParImp remain practical.

use gfd_bench::{banner, fmt_duration, scale, time_median, Table};
use gfd_gen::synthetic_workload;
use gfd_parallel::{par_imp, par_sat, ParConfig};

fn main() {
    let scale = scale();
    banner(
        "Exp-3 (Fig. 6g, 6i): varying pattern size k (l=3, p=4)",
        "k=10: SeqSat 1253s, ParSat 398s | SeqImp 538s, ParImp 201s",
    );

    let cfg = ParConfig::with_workers(4).with_ttl(scale.default_ttl);

    println!("\nFig. 6(g) — satisfiability:");
    let mut table = Table::new(&["k", "SeqSat", "ParSat", "np", "nb", "splits"]);
    for &k in &scale.ks {
        let w = synthetic_workload(scale.exp3_sigma, k, 3, 42);
        let t_seq = time_median(scale.repeats, || {
            assert!(gfd_core::seq_sat(&w.sigma).is_satisfiable());
        });
        let mut splits = 0u64;
        let t_par = time_median(scale.repeats, || {
            let r = par_sat(&w.sigma, &cfg);
            assert!(r.is_satisfiable());
            splits = r.metrics.units_split;
        });
        let t_np = time_median(scale.repeats, || {
            assert!(par_sat(&w.sigma, &cfg.clone().without_pipeline()).is_satisfiable());
        });
        let t_nb = time_median(scale.repeats, || {
            assert!(par_sat(&w.sigma, &cfg.clone().without_split()).is_satisfiable());
        });
        table.row(vec![
            k.to_string(),
            fmt_duration(t_seq),
            fmt_duration(t_par),
            fmt_duration(t_np),
            fmt_duration(t_nb),
            splits.to_string(),
        ]);
    }
    table.print();

    println!("\nFig. 6(i) — implication:");
    let mut table = Table::new(&["k", "SeqImp", "ParImp", "np", "nb"]);
    for &k in &scale.ks {
        let w = synthetic_workload(scale.exp3_sigma, k, 3, 42);
        let probes: Vec<_> = w.probes.iter().take(scale.imp_probes).collect();
        let run_all = |f: &dyn Fn(&gfd_core::Gfd) -> bool| {
            for p in &probes {
                assert_eq!(f(&p.phi), p.expect_implied);
            }
        };
        let t_seq = time_median(scale.repeats, || {
            run_all(&|phi| gfd_core::seq_imp(&w.sigma, phi).is_implied())
        });
        let t_par = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg).is_implied())
        });
        let t_np = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg.clone().without_pipeline()).is_implied())
        });
        let t_nb = time_median(scale.repeats, || {
            run_all(&|phi| par_imp(&w.sigma, phi, &cfg.clone().without_split()).is_implied())
        });
        table.row(vec![
            k.to_string(),
            fmt_duration(t_seq),
            fmt_duration(t_par),
            fmt_duration(t_np),
            fmt_duration(t_nb),
        ]);
    }
    table.print();
    println!("\nexpected shape: every column grows with k; splitting pays off most at large k.");
}
