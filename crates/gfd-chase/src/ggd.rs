//! Reasoning over generalized dependency sets (GFDs + GGDs): the routing
//! layer of the third `Goal`.
//!
//! * A **literal-only** [`DepSet`] is exactly a GFD set: [`dep_sat`] and
//!   [`dep_imp`] lower it through the [`Dependency`]↔`Gfd` shim and run
//!   the original `gfd-core` algorithms — same engine, same answers,
//!   same metrics (the "pure-GFD inputs behave identically" guarantee).
//!   A generating *candidate* ϕ against a literal Σ still runs on the
//!   unified driver via [`gfd_core::ggd_imp_with_config`]
//!   (`Goal::GgdImp`), because literal enforcement never changes the
//!   topology the realization check probes.
//! * A **mixed** set routes through the chase
//!   ([`crate::chase::dep_chase_with_config`]): scan units stay on the
//!   shared scheduler, generating consequences are applied in the serial
//!   between-rounds step, and the fresh-node budget turns potential
//!   non-termination into an explicit `Unknown` outcome.
//!
//! Satisfiability of a mixed Σ chases the disjoint union of every
//! premise pattern (the `GΣ` construction, unchanged); implication
//! chases ϕ's canonical graph `G^X_Q` and then tests ϕ's consequence —
//! literal deducibility or generating-target realization — on the chased
//! result.

use crate::chase::{dep_chase_with_config, ChaseConfig, ChaseStats, DepChaseOutcome};
use gfd_core::{
    consequence_lits_deducible, extract_model, generate_deducible, ggd_imp_with_config,
    imp_with_config, sat_with_config, CanonicalGraph, Conflict, Consequence, DepSet, Dependency,
    EqRel, ImpOutcome, ImpliedVia, Interrupt, ReasonConfig, SatOutcome,
};
use gfd_graph::{Graph, LabelIndex, NodeId};
use gfd_runtime::RunMetrics;

/// The outcome of satisfiability over a generalized dependency set.
#[derive(Debug)]
pub enum DepSatOutcome {
    /// Σ has a model (the chased graph populated through the relation).
    Satisfiable(Box<Graph>),
    /// Enforcement forces two distinct constants onto one class.
    Unsatisfiable(Conflict),
    /// The fresh-node budget ran out before a fixpoint: undecided.
    Unknown {
        /// Fresh nodes materialized before giving up.
        generated_nodes: u64,
    },
    /// The run was cut short — deadline, unit budget, or an injected
    /// fault — before a verdict: undecided.
    Interrupted(Interrupt),
}

/// Result + statistics of [`dep_sat`].
pub struct DepSatResult {
    /// The verdict.
    pub outcome: DepSatOutcome,
    /// Chase counters (all zero when the literal-only fast path ran).
    pub stats: ChaseStats,
    /// Unified scheduler metrics.
    pub metrics: RunMetrics,
}

impl DepSatResult {
    /// True iff Σ was found satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self.outcome, DepSatOutcome::Satisfiable(_))
    }

    /// True iff the run degraded before a verdict.
    pub fn is_unknown(&self) -> bool {
        matches!(
            self.outcome,
            DepSatOutcome::Unknown { .. } | DepSatOutcome::Interrupted(_)
        )
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Graph> {
        match &self.outcome {
            DepSatOutcome::Satisfiable(m) => Some(m),
            _ => None,
        }
    }
}

/// Map a chase worker/TTL/dispatch configuration onto the unified
/// driver's knobs for the literal-only fast path. The TTL passes
/// through verbatim: `Duration::ZERO` means "force splitting on every
/// unit" on both routes, matching the repo-wide convention the
/// equivalence suites rely on.
fn reason_config(cfg: &ChaseConfig) -> ReasonConfig {
    ReasonConfig {
        workers: cfg.workers.max(1),
        ttl: cfg.ttl,
        dispatch: cfg.dispatch,
        budget: cfg.budget,
        ..ReasonConfig::default()
    }
}

/// Check satisfiability of a generalized Σ with the default
/// configuration.
pub fn dep_sat(deps: &DepSet) -> DepSatResult {
    dep_sat_with_config(deps, &ChaseConfig::default())
}

/// Check satisfiability of a generalized Σ: literal-only sets run the
/// original `SeqSat`/`ParSat` driver, mixed sets the generating chase
/// over `GΣ`.
pub fn dep_sat_with_config(deps: &DepSet, config: &ChaseConfig) -> DepSatResult {
    if let Some(gfds) = deps.to_gfds() {
        let r = sat_with_config(&gfds, &reason_config(config));
        let outcome = match r.outcome {
            SatOutcome::Satisfiable(m) => DepSatOutcome::Satisfiable(m),
            SatOutcome::Unsatisfiable(c) => DepSatOutcome::Unsatisfiable(c),
            SatOutcome::Unknown(i) => DepSatOutcome::Interrupted(i),
        };
        return DepSatResult {
            outcome,
            stats: ChaseStats::default(),
            metrics: r.stats,
        };
    }

    // GΣ: the disjoint union of every premise pattern, exactly as for
    // GFDs — generating rules contribute their premise side only; their
    // targets are materialized by the chase itself.
    let mut graph = Graph::new();
    for (_, dep) in deps.iter() {
        graph.append_disjoint(&dep.pattern.to_graph());
    }
    let (outcome, stats, metrics) = dep_chase_with_config(deps, graph, EqRel::new(), config);
    let outcome = match outcome {
        DepChaseOutcome::Fixpoint { graph, mut eq } => {
            DepSatOutcome::Satisfiable(Box::new(extract_model(&graph, &mut eq)))
        }
        DepChaseOutcome::Conflict(c) => DepSatOutcome::Unsatisfiable(c),
        DepChaseOutcome::BudgetExhausted { generated_nodes } => {
            DepSatOutcome::Unknown { generated_nodes }
        }
        DepChaseOutcome::Interrupted(i) => DepSatOutcome::Interrupted(i),
    };
    DepSatResult {
        outcome,
        stats,
        metrics,
    }
}

/// The outcome of implication over a generalized dependency set.
#[derive(Debug)]
pub enum DepImpOutcome {
    /// `Σ |= ϕ`.
    Implied(ImpliedVia),
    /// `Σ 6|= ϕ` under the chase semantics.
    NotImplied,
    /// The fresh-node budget ran out before a verdict.
    Unknown {
        /// Fresh nodes materialized before giving up.
        generated_nodes: u64,
    },
    /// The run was cut short — deadline, unit budget, or an injected
    /// fault — before a verdict: undecided.
    Interrupted(Interrupt),
}

/// Result + statistics of [`dep_imp`].
pub struct DepImpResult {
    /// The verdict.
    pub outcome: DepImpOutcome,
    /// Chase counters (all zero when the driver fast path ran).
    pub stats: ChaseStats,
    /// Unified scheduler metrics.
    pub metrics: RunMetrics,
}

impl DepImpResult {
    /// True iff `Σ |= ϕ`.
    pub fn is_implied(&self) -> bool {
        matches!(self.outcome, DepImpOutcome::Implied(_))
    }

    /// True iff the run degraded before a verdict.
    pub fn is_unknown(&self) -> bool {
        matches!(
            self.outcome,
            DepImpOutcome::Unknown { .. } | DepImpOutcome::Interrupted(_)
        )
    }
}

/// Check `Σ |= ϕ` over generalized dependencies with the default
/// configuration.
pub fn dep_imp(deps: &DepSet, phi: &Dependency) -> DepImpResult {
    dep_imp_with_config(deps, phi, &ChaseConfig::default())
}

/// Check `Σ |= ϕ` over generalized dependencies: when Σ is literal the
/// unified driver decides it (including generating candidates, via
/// `Goal::GgdImp`); a mixed Σ chases `G^X_Q` to fixpoint and tests ϕ's
/// consequence on the result.
pub fn dep_imp_with_config(deps: &DepSet, phi: &Dependency, config: &ChaseConfig) -> DepImpResult {
    if let Some(gfds) = deps.to_gfds() {
        let r = match phi.as_gfd() {
            Some(gfd) => imp_with_config(&gfds, &gfd, &reason_config(config)),
            None => ggd_imp_with_config(&gfds, phi, &reason_config(config)),
        };
        let outcome = match r.outcome {
            ImpOutcome::Implied(via) => DepImpOutcome::Implied(via),
            ImpOutcome::NotImplied => DepImpOutcome::NotImplied,
            ImpOutcome::Unknown(i) => DepImpOutcome::Interrupted(i),
        };
        return DepImpResult {
            outcome,
            stats: ChaseStats::default(),
            metrics: r.stats,
        };
    }

    let zero = |outcome: DepImpOutcome| DepImpResult {
        outcome,
        stats: ChaseStats::default(),
        metrics: RunMetrics {
            workers: config.workers.max(1),
            ..Default::default()
        },
    };
    // Trivial short-circuits mirror `imp_shortcuts`.
    if matches!(&phi.consequence, Consequence::Literals(lits) if lits.is_empty()) {
        return zero(DepImpOutcome::Implied(ImpliedVia::Consequence));
    }
    let (canon, eqx) = match CanonicalGraph::for_premise(&phi.pattern, &phi.premise) {
        Ok(pair) => pair,
        Err(_) => return zero(DepImpOutcome::Implied(ImpliedVia::PremiseInconsistent)),
    };
    let identity: Vec<NodeId> = (0..phi.pattern.node_count()).map(NodeId::new).collect();
    {
        let mut probe = eqx.clone();
        if consequence_holds_on(&mut probe, &canon.index, phi, &identity) {
            return zero(DepImpOutcome::Implied(ImpliedVia::Consequence));
        }
    }

    let (outcome, stats, metrics) = dep_chase_with_config(deps, canon.graph.clone(), eqx, config);
    let outcome = match outcome {
        DepChaseOutcome::Conflict(c) => DepImpOutcome::Implied(ImpliedVia::Conflict(c)),
        DepChaseOutcome::BudgetExhausted { generated_nodes } => {
            DepImpOutcome::Unknown { generated_nodes }
        }
        DepChaseOutcome::Interrupted(i) => DepImpOutcome::Interrupted(i),
        DepChaseOutcome::Fixpoint { graph, mut eq } => {
            let index = LabelIndex::build(&graph);
            if consequence_holds_on(&mut eq, &index, phi, &identity) {
                DepImpOutcome::Implied(ImpliedVia::Consequence)
            } else {
                DepImpOutcome::NotImplied
            }
        }
    };
    DepImpResult {
        outcome,
        stats,
        metrics,
    }
}

/// Does ϕ's consequence hold at the identity match under `eq` over the
/// indexed graph — literal deducibility or generating-target
/// realization?
fn consequence_holds_on<I: gfd_graph::MatchIndex>(
    eq: &mut EqRel,
    index: &I,
    phi: &Dependency,
    identity: &[NodeId],
) -> bool {
    match &phi.consequence {
        Consequence::Literals(lits) => consequence_lits_deducible(eq, lits),
        Consequence::Generate(gen) => generate_deducible(eq, index, gen, identity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{seq_imp, seq_sat, GenerateConsequence, Gfd, GfdSet, Literal};
    use gfd_graph::{Pattern, ValueId, VarId, Vocab};

    fn unary(vocab: &mut Vocab, label: &str) -> Pattern {
        let mut p = Pattern::new();
        p.add_node(vocab.label(label), "x");
        p
    }

    /// tier0 → CREATE tier1 child with a1 = 1; plus a literal rule off
    /// the generated attribute.
    fn chain_deps(vocab: &mut Vocab) -> DepSet {
        let t0 = unary(vocab, "tier0");
        let a1 = vocab.attr("a1");
        let b = vocab.attr("b");
        let mut gen = GenerateConsequence::over(&t0);
        let y = gen.add_fresh(vocab.label("tier1"), "y");
        gen.add_edge(VarId::new(0), vocab.label("next"), y);
        gen.push_attr(Literal::eq_const(y, a1, 1i64));
        let ggd = Dependency::new("grow", t0, vec![], Consequence::Generate(gen));
        let t1 = unary(vocab, "tier1");
        let lit = Dependency::from_gfd(Gfd::new(
            "mark",
            t1,
            vec![Literal::eq_const(VarId::new(0), a1, 1i64)],
            vec![Literal::eq_const(VarId::new(0), b, 7i64)],
        ));
        DepSet::from_vec(vec![ggd, lit])
    }

    #[test]
    fn literal_only_sets_route_to_the_driver() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let x = VarId::new(0);
        let mk = |vocab: &mut Vocab, v: i64| {
            Gfd::new(
                "g",
                unary(vocab, "t"),
                vec![],
                vec![Literal::eq_const(x, a, v)],
            )
        };
        let unsat = GfdSet::from_vec(vec![mk(&mut vocab, 0), mk(&mut vocab, 1)]);
        let deps = DepSet::from_gfds(unsat.clone());
        let r = dep_sat(&deps);
        assert!(!r.is_satisfiable());
        assert!(!seq_sat(&unsat).is_satisfiable());
        assert_eq!(r.stats.rounds, 0, "fast path must not chase");

        let sat = GfdSet::from_vec(vec![mk(&mut vocab, 0)]);
        let deps = DepSet::from_gfds(sat.clone());
        let r = dep_sat(&deps);
        assert!(r.is_satisfiable());
        let phi = sat.as_slice()[0].clone();
        let ri = dep_imp(&deps, &Dependency::from_gfd(phi.clone()));
        assert_eq!(ri.is_implied(), seq_imp(&sat, &phi).is_implied());
    }

    #[test]
    fn generating_chase_grows_and_derives() {
        let mut vocab = Vocab::new();
        let deps = chain_deps(&mut vocab);
        let r = dep_sat(&deps);
        assert!(r.is_satisfiable(), "chain workload must be satisfiable");
        assert!(r.stats.generated_nodes >= 1, "{:?}", r.stats);
        let model = r.model().unwrap();
        // One tier0 premise copy + one tier1 premise copy + the generated
        // tier1 child.
        assert_eq!(model.node_count(), 3);
        assert!(model.edge_count() >= 1);
        // The generated child got a1 = 1, which fired the literal rule to
        // b = 7 on it — visible in the extracted model.
        let a1 = vocab.attr("a1");
        let b = vocab.attr("b");
        let derived = model.nodes().any(|n| {
            model.attr(n, a1) == Some(ValueId::of(1i64)) && model.attr(n, b) == Some(ValueId::of(7i64))
        });
        assert!(derived, "generated node must cascade into literal rules");
    }

    #[test]
    fn generated_attr_conflicts_make_unsat() {
        let mut vocab = Vocab::new();
        let mut deps = chain_deps(&mut vocab);
        let a1 = vocab.attr("a1");
        deps.push(Dependency::from_gfd(Gfd::new(
            "deny",
            unary(&mut vocab, "tier1"),
            vec![],
            vec![Literal::eq_const(VarId::new(0), a1, -1i64)],
        )));
        let r = dep_sat(&deps);
        assert!(
            matches!(r.outcome, DepSatOutcome::Unsatisfiable(_)),
            "generated a1=1 must clash with the denial's a1=-1"
        );
    }

    #[test]
    fn runaway_generation_hits_the_budget() {
        let mut vocab = Vocab::new();
        // person → CREATE person: no finite fixpoint.
        let p = unary(&mut vocab, "person");
        let mut gen = GenerateConsequence::over(&p);
        let y = gen.add_fresh(vocab.label("person"), "y");
        gen.add_edge(VarId::new(0), vocab.label("parentOf"), y);
        let deps = DepSet::from_vec(vec![Dependency::new(
            "spawn",
            p,
            vec![],
            Consequence::Generate(gen),
        )]);
        let cfg = ChaseConfig {
            max_generated_nodes: 50,
            ..ChaseConfig::default()
        };
        let r = dep_sat_with_config(&deps, &cfg);
        assert!(r.is_unknown(), "must give up, not loop");
        assert!(matches!(
            r.outcome,
            DepSatOutcome::Unknown { generated_nodes } if generated_nodes > 50
        ));
    }

    #[test]
    fn ggd_implication_by_literal_sigma_uses_the_driver() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        // ϕ: pattern x -e-> y, CREATE nothing structural but require
        // y.a = 1 as a generated assignment. Σ: ∅ → y.a = 1 over the same
        // shape.
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        let mut gen = GenerateConsequence::over(&p);
        gen.push_attr(Literal::eq_const(y, a, 1i64));
        let phi = Dependency::new("target", p.clone(), vec![], Consequence::Generate(gen));
        let sigma_rule = Gfd::new("seed", p, vec![], vec![Literal::eq_const(y, a, 1i64)]);
        let deps = DepSet::from_gfds(GfdSet::from_vec(vec![sigma_rule]));
        let r = dep_imp(&deps, &phi);
        assert!(r.is_implied(), "attr-only target forced by Σ");
        assert_eq!(r.stats.rounds, 0, "literal Σ must use the driver path");

        // Without Σ it is not implied.
        let r = dep_imp(&DepSet::new(), &phi);
        assert!(!r.is_implied());
    }

    #[test]
    fn ggd_implication_by_generating_sigma_uses_the_chase() {
        let mut vocab = Vocab::new();
        let deps = chain_deps(&mut vocab);
        // ϕ: every tier0 node has a generated tier1 child over `next`.
        let t0 = unary(&mut vocab, "tier0");
        let mut gen = GenerateConsequence::over(&t0);
        let y = gen.add_fresh(vocab.label("tier1"), "y");
        gen.add_edge(VarId::new(0), vocab.label("next"), y);
        let phi = Dependency::new("has_child", t0, vec![], Consequence::Generate(gen));
        let r = dep_imp(&deps, &phi);
        assert!(r.is_implied(), "the chain GGD creates exactly that child");
        assert!(r.stats.rounds > 0, "mixed Σ must chase");

        // A child over a different edge label is not implied.
        let t0 = unary(&mut vocab, "tier0");
        let mut gen = GenerateConsequence::over(&t0);
        let y = gen.add_fresh(vocab.label("tier1"), "y");
        gen.add_edge(VarId::new(0), vocab.label("unrelated"), y);
        let phi = Dependency::new("wrong_edge", t0, vec![], Consequence::Generate(gen));
        assert!(!dep_imp(&deps, &phi).is_implied());
    }

    #[test]
    fn chase_results_are_worker_invariant() {
        let mut vocab = Vocab::new();
        let deps = chain_deps(&mut vocab);
        let base = dep_sat(&deps);
        let base_model = base.model().unwrap();
        for p in [2usize, 8] {
            let cfg = ChaseConfig {
                workers: p,
                ttl: std::time::Duration::ZERO,
                batch: 1,
                ..ChaseConfig::default()
            };
            let r = dep_sat_with_config(&deps, &cfg);
            assert!(r.is_satisfiable(), "p={p}");
            let m = r.model().unwrap();
            assert_eq!(m.node_count(), base_model.node_count(), "p={p}");
            assert_eq!(m.edge_count(), base_model.edge_count(), "p={p}");
        }
    }
}
