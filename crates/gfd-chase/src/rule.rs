//! RDF-style FDs over triple patterns, and their embedding into GFDs.
//!
//! The related-work comparison (§VIII) notes that GFDs subsume the
//! RDF functional/constant constraints of Hellings et al. \[5\]: a set of
//! triple patterns is a graph pattern, and value constraints become
//! literals over a distinguished `val` attribute. This module provides
//! that embedding, which is how the `ParImpRDF` baseline receives its
//! inputs.

use gfd_core::{Gfd, Literal};
use gfd_graph::{LabelId, Pattern, Value, VarId, Vocab};

/// A triple pattern `?s --predicate--> ?o` over RDF-style variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject variable (index into the FD's variable space).
    pub subject: u32,
    /// Predicate label.
    pub predicate: LabelId,
    /// Object variable.
    pub object: u32,
}

/// A value constraint on an RDF variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RdfConstraint {
    /// `?x = ?y` — the two variables denote equal values.
    VarEq(u32, u32),
    /// `?x = c` — constant constraint.
    ConstEq(u32, Value),
}

/// An RDF functional dependency: triple patterns scoping variables plus a
/// premise/consequence over their values.
#[derive(Clone, Debug)]
pub struct RdfFd {
    /// Rule name.
    pub name: String,
    /// The body: a set of triple patterns.
    pub triples: Vec<TriplePattern>,
    /// Premise constraints.
    pub premise: Vec<RdfConstraint>,
    /// Consequence constraints.
    pub consequence: Vec<RdfConstraint>,
}

/// The distinguished attribute carrying an RDF node's value.
pub const VAL_ATTR: &str = "val";

impl RdfFd {
    /// Number of distinct variables (max index + 1).
    pub fn var_count(&self) -> usize {
        self.triples
            .iter()
            .flat_map(|t| [t.subject, t.object])
            .max()
            .map_or(0, |m| m as usize + 1)
    }

    /// Embed as a GFD: variables become wildcard-labelled pattern nodes,
    /// triples become edges, constraints become `val` literals.
    pub fn to_gfd(&self, vocab: &mut Vocab) -> Gfd {
        let val = vocab.attr(VAL_ATTR);
        let n = self.var_count();
        let mut pattern = Pattern::new();
        for i in 0..n {
            pattern.add_node(LabelId::WILDCARD, format!("v{i}"));
        }
        for t in &self.triples {
            pattern.add_edge(
                VarId::new(t.subject as usize),
                t.predicate,
                VarId::new(t.object as usize),
            );
        }
        let conv = |cs: &[RdfConstraint]| -> Vec<Literal> {
            cs.iter()
                .map(|c| match c {
                    RdfConstraint::VarEq(x, y) => {
                        Literal::eq_attr(VarId::new(*x as usize), val, VarId::new(*y as usize), val)
                    }
                    RdfConstraint::ConstEq(x, v) => {
                        Literal::eq_const(VarId::new(*x as usize), val, v.clone())
                    }
                })
                .collect()
        };
        Gfd::new(
            self.name.clone(),
            pattern,
            conv(&self.premise),
            conv(&self.consequence),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imp_rdf::chase_imp;
    use gfd_core::{seq_imp, GfdSet};

    /// A functional-property FD: if x --p--> y and x --p--> z then
    /// y.val = z.val (the paper's ϕ2 in RDF form).
    fn functional_property(vocab: &mut Vocab) -> RdfFd {
        let p = vocab.label("topSpeed");
        RdfFd {
            name: "functional_p".into(),
            triples: vec![
                TriplePattern {
                    subject: 0,
                    predicate: p,
                    object: 1,
                },
                TriplePattern {
                    subject: 0,
                    predicate: p,
                    object: 2,
                },
            ],
            premise: vec![],
            consequence: vec![RdfConstraint::VarEq(1, 2)],
        }
    }

    #[test]
    fn embedding_produces_a_wellformed_gfd() {
        let mut vocab = Vocab::new();
        let fd = functional_property(&mut vocab);
        assert_eq!(fd.var_count(), 3);
        let gfd = fd.to_gfd(&mut vocab);
        assert_eq!(gfd.pattern.node_count(), 3);
        assert_eq!(gfd.pattern.edge_count(), 2);
        assert!(gfd.has_empty_premise());
        assert_eq!(gfd.consequence.len(), 1);
    }

    #[test]
    fn rdf_implication_through_the_embedding() {
        let mut vocab = Vocab::new();
        let fd = functional_property(&mut vocab);
        let sigma = GfdSet::from_vec(vec![fd.to_gfd(&mut vocab)]);
        // The same FD with premise/consequence constants:
        // x -p-> y, x -p-> z, y.val = 1 → z.val = 1. Follows from the
        // functional property.
        let p = vocab.label("topSpeed");
        let derived = RdfFd {
            name: "derived".into(),
            triples: vec![
                TriplePattern {
                    subject: 0,
                    predicate: p,
                    object: 1,
                },
                TriplePattern {
                    subject: 0,
                    predicate: p,
                    object: 2,
                },
            ],
            premise: vec![RdfConstraint::ConstEq(1, Value::int(1))],
            consequence: vec![RdfConstraint::ConstEq(2, Value::int(1))],
        }
        .to_gfd(&mut vocab);
        assert!(chase_imp(&sigma, &derived).is_implied());
        assert!(seq_imp(&sigma, &derived).is_implied());

        // But a constant out of nowhere does not follow.
        let bogus = RdfFd {
            name: "bogus".into(),
            triples: vec![TriplePattern {
                subject: 0,
                predicate: p,
                object: 1,
            }],
            premise: vec![],
            consequence: vec![RdfConstraint::ConstEq(1, Value::int(9))],
        }
        .to_gfd(&mut vocab);
        assert!(!chase_imp(&sigma, &bogus).is_implied());
    }

    #[test]
    fn empty_fd_has_no_vars() {
        let fd = RdfFd {
            name: "empty".into(),
            triples: vec![],
            premise: vec![],
            consequence: vec![],
        };
        assert_eq!(fd.var_count(), 0);
    }
}
