//! Chase-based baselines for GFD reasoning.
//!
//! The paper compares its algorithms against a chase implementation for
//! RDF FDs (`ParImpRDF`, Fig. 5 and Fig. 6(f)). This crate provides:
//!
//! * [`chase`] — a naive round-based fixpoint chase over canonical graphs
//!   (no ordering, no inverted index, full re-scans); each round's
//!   premise scan runs as a `gfd_runtime::Task` on the shared
//!   work-stealing scheduler and reports unified `RunMetrics`;
//! * [`imp_rdf::chase_imp`] — implication checking via the chase;
//! * [`sat_chase::chase_sat`] — satisfiability via the chase;
//! * [`rule`] — RDF triple-pattern FDs and their embedding into GFDs
//!   (GFDs subsume the constraints of Hellings et al., §VIII);
//! * [`ggd`] — reasoning over generalized dependency sets (GFDs + GGDs):
//!   literal-only sets route to the original `gfd-core` driver, mixed
//!   sets to [`chase::dep_chase_with_config`], whose serial
//!   apply-between-rounds step materializes generating consequences
//!   under a fresh-node budget (DESIGN.md §10).

#![warn(missing_docs)]

pub mod chase;
pub mod ggd;
pub mod imp_rdf;
pub mod rule;
pub mod sat_chase;

pub use chase::{
    chase_to_fixpoint, chase_to_fixpoint_with_config, dep_chase_with_config, ChaseConfig,
    ChaseOutcome, ChaseStats, DepChaseOutcome,
};
pub use ggd::{
    dep_imp, dep_imp_with_config, dep_sat, dep_sat_with_config, DepImpOutcome, DepImpResult,
    DepSatOutcome, DepSatResult,
};
pub use imp_rdf::{chase_imp, chase_imp_with_config, ChaseImpResult};
pub use rule::{RdfConstraint, RdfFd, TriplePattern};
pub use sat_chase::{chase_sat, chase_sat_with_config, ChaseSatResult};
