//! Chase-based satisfiability baseline.
//!
//! The paper notes (§VII) that "implementations of the chase are much
//! slower than SeqSat" — this module provides that comparator: chase Σ
//! over `GΣ` to fixpoint and report conflicts, without early termination
//! inside a round, ordering, or pending indexes.

use crate::chase::{chase_to_fixpoint_with_config, ChaseConfig, ChaseOutcome, ChaseStats};
use gfd_core::{extract_model, CanonicalGraph, EqRel, GfdSet, SatOutcome};
use gfd_runtime::RunMetrics;
use std::time::{Duration, Instant};

/// Result of a chase-based satisfiability check.
#[derive(Debug)]
pub struct ChaseSatResult {
    /// Same answers as `SeqSat`.
    pub outcome: SatOutcome,
    /// Chase counters.
    pub stats: ChaseStats,
    /// Unified scheduler metrics, accumulated over all chase rounds.
    pub metrics: RunMetrics,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl ChaseSatResult {
    /// True iff Σ was found satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self.outcome, SatOutcome::Satisfiable(_))
    }
}

/// Check the satisfiability of Σ by chasing `GΣ` to fixpoint with the
/// default (sequential) configuration.
pub fn chase_sat(sigma: &GfdSet) -> ChaseSatResult {
    chase_sat_with_config(sigma, &ChaseConfig::default())
}

/// Check the satisfiability of Σ by chasing `GΣ` to fixpoint, the
/// per-round premise scan running on the shared scheduler.
pub fn chase_sat_with_config(sigma: &GfdSet, config: &ChaseConfig) -> ChaseSatResult {
    let start = Instant::now();
    if sigma.is_empty() {
        return ChaseSatResult {
            outcome: SatOutcome::Satisfiable(Box::new(gfd_graph::Graph::new())),
            stats: ChaseStats::default(),
            metrics: RunMetrics::default(),
            elapsed: start.elapsed(),
        };
    }
    let (canon, _) = CanonicalGraph::for_sigma(sigma);
    let (outcome, stats, metrics) =
        chase_to_fixpoint_with_config(sigma, &canon, EqRel::new(), config);
    let outcome = match outcome {
        ChaseOutcome::Conflict(c) => SatOutcome::Unsatisfiable(c),
        ChaseOutcome::Fixpoint(mut eq) => {
            SatOutcome::Satisfiable(Box::new(extract_model(&canon.graph, &mut eq)))
        }
        ChaseOutcome::Interrupted(i) => SatOutcome::Unknown(i),
    };
    ChaseSatResult {
        outcome,
        stats,
        metrics,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{graph_satisfies_all, seq_sat, Gfd, Literal};
    use gfd_graph::{LabelId, Pattern, VarId, Vocab};

    #[test]
    fn agrees_with_seq_sat() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let x = VarId::new(0);
        let mk = |lits: Vec<Literal>| {
            let mut p = Pattern::new();
            p.add_node(LabelId::WILDCARD, "x");
            Gfd::new("g", p, vec![], lits)
        };
        // Unsatisfiable pair.
        let unsat = GfdSet::from_vec(vec![
            mk(vec![Literal::eq_const(x, a, 0i64)]),
            mk(vec![Literal::eq_const(x, a, 1i64)]),
        ]);
        assert!(!chase_sat(&unsat).is_satisfiable());
        assert!(!seq_sat(&unsat).is_satisfiable());
        // Satisfiable singleton, with a model that validates.
        let sat = GfdSet::from_vec(vec![mk(vec![Literal::eq_const(x, a, 0i64)])]);
        let r = chase_sat(&sat);
        assert!(r.is_satisfiable());
        match &r.outcome {
            SatOutcome::Satisfiable(m) => assert!(graph_satisfies_all(m, &sat)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn empty_sigma() {
        assert!(chase_sat(&GfdSet::new()).is_satisfiable());
    }
}
