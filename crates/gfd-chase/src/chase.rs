//! A deliberately *naive* chase engine over canonical graphs.
//!
//! This is the baseline the paper compares against (`ParImpRDF`, following
//! Hellings et al.'s chase for RDF FDs): a round-based fixpoint that
//! re-enumerates every match of every rule each round, with **no**
//! dependency ordering, **no** inverted pending index, and **no** early
//! consequence cut inside a round. Same answers as `SeqSat`/`SeqImp`,
//! strictly more work — which is exactly the point of the comparison in
//! Fig. 5 and Fig. 6(f).
//!
//! Since the scheduler port, each round's **premise scan** runs as a
//! [`Task`] on the shared `gfd-runtime` work-stealing scheduler instead
//! of a private loop: the cached match lists are chunked into scan units,
//! every worker evaluates premises against its own clone of the
//! round-start relation (premise evaluation only path-compresses, so a
//! clone is semantically inert), and the fired `(rule, match)` pairs are
//! applied **serially in deterministic order** between rounds. A premise
//! that a mid-round enforcement would have unlocked simply fires one
//! round later — the fixpoint (and any conflict) is unchanged because
//! enforcement is monotone, while the round structure the baseline is
//! *supposed* to pay for is preserved. Snapshot semantics hold at every
//! worker count (including the sequential `workers = 1`), so
//! [`ChaseStats`] round/eval counts are identical across `p` — they can
//! run higher than the pre-port scan, which applied consequences
//! mid-round, did for cascading rule orders; that is a uniform shift of
//! the baseline, not a scan-order artifact.

use gfd_core::{
    eval_premise_lits, generate_deducible, Budget, CanonicalGraph, Conflict, Consequence, DepSet,
    EqRel, GfdSet, Interrupt, Literal, Operand, PremiseStatus,
};
use gfd_graph::{Graph, NodeId};
use gfd_match::{find_all_matches, Match};
use gfd_runtime::sched::{run_scheduler_with, SchedOptions, Task, WorkerCtx};
use gfd_runtime::{failpoint, DispatchMode, RunMetrics};
use rustc_hash::FxHashSet;
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

/// Scheduler knobs of the chase baseline.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Worker threads; `1` runs the scan inline on the calling thread.
    pub workers: usize,
    /// Straggler threshold for one scan unit: past it, the unit's
    /// remaining matches are split for idle workers to steal.
    pub ttl: Duration,
    /// Matches per initial scan unit.
    pub batch: usize,
    /// How units reach the workers.
    pub dispatch: DispatchMode,
    /// Termination guard for generating dependencies: the chase gives up
    /// (reporting "unknown" instead of looping forever) once this many
    /// fresh nodes have been materialized. GGD chains like
    /// `person → CREATE person` have no finite fixpoint; the budget bounds
    /// them the way `max_branches` bounds the GED search (DESIGN.md §10).
    /// Irrelevant to literal-only rule sets.
    pub max_generated_nodes: u64,
    /// Unified resource budget (DESIGN.md §11.2): the deadline is checked
    /// at round boundaries and inside the scan via the scheduler, the unit
    /// cap across all rounds, and the fresh-node axis tightens
    /// `max_generated_nodes`. Exhaustion degrades to an `Interrupted`
    /// outcome — the chase never claims a fixpoint it did not reach.
    pub budget: Budget,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            workers: 1,
            ttl: Duration::from_millis(100),
            batch: 256,
            dispatch: DispatchMode::WorkStealing,
            max_generated_nodes: 100_000,
            budget: Budget::unlimited(),
        }
    }
}

impl ChaseConfig {
    /// A config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ChaseConfig {
            workers,
            ..Self::default()
        }
    }

    /// Attach a unified resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The effective fresh-node cap: the legacy `max_generated_nodes`
    /// knob tightened by the budget's fresh-node axis.
    fn effective_max_generated(&self) -> u64 {
        match self.budget.max_fresh_nodes {
            Some(b) => self.max_generated_nodes.min(b),
            None => self.max_generated_nodes,
        }
    }

    /// Scheduler options for one round's scan: the global deadline plus
    /// whatever of the unit budget is left after `units_so_far`.
    fn round_sched_options(&self, units_so_far: u64) -> SchedOptions {
        SchedOptions {
            deadline: self.budget.deadline,
            max_units: self
                .budget
                .max_units
                .map(|max| max.saturating_sub(units_so_far)),
            unit_retries: 0,
        }
    }
}

/// Counters reported by the chase.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaseStats {
    /// Fixpoint rounds executed.
    pub rounds: u64,
    /// Premise evaluations across all rounds (the re-scanning overhead).
    pub premise_evals: u64,
    /// Matches enumerated. Match lists are cached per rule and counted
    /// once per enumeration; generating rules force a re-enumeration
    /// whenever materialization changed the topology.
    pub matches_enumerated: u64,
    /// Fresh nodes materialized by generating consequences (zero for
    /// literal-only rule sets).
    pub generated_nodes: u64,
    /// Realization checks run against round-start snapshots.
    pub realization_checks: u64,
}

/// Outcome of chasing Σ over a canonical graph.
pub enum ChaseOutcome {
    /// Fixpoint reached without conflict; the final relation is returned.
    Fixpoint(EqRel),
    /// Two distinct constants were forced onto one class.
    Conflict(Conflict),
    /// The run was cut short — deadline, unit budget, or an injected
    /// fault — before the fixpoint: no definite answer.
    Interrupted(Interrupt),
}

/// Apply the consequence of `gfd` at `m`; returns whether anything changed.
fn apply_consequence(eq: &mut EqRel, gfd: &gfd_core::Gfd, m: &[NodeId]) -> Result<bool, Conflict> {
    apply_literals(eq, &gfd.consequence, m)
}

/// Apply a literal-conjunction consequence at `m`; returns whether
/// anything changed. Shared by the [`GfdSet`] baseline and the literal
/// arm of the generalized [`DepSet`] chase.
fn apply_literals(eq: &mut EqRel, lits: &[Literal], m: &[NodeId]) -> Result<bool, Conflict> {
    let mut changed = false;
    for lit in lits {
        let k1 = (m[lit.var.index()], lit.attr);
        match &lit.rhs {
            Operand::Const(c) => {
                changed |= eq.bind(k1, c.clone())?.changed;
            }
            Operand::Attr(v2, a2) => {
                let k2 = (m[v2.index()], *a2);
                changed |= eq.merge(k1, k2)?.changed;
            }
        }
    }
    Ok(changed)
}

/// A contiguous slice of one rule's cached match list.
#[derive(Clone, Copy)]
struct ScanUnit {
    rule: u32,
    start: u32,
    end: u32,
}

/// Per-worker scan state for one round.
struct ScanWorker {
    /// Clone of the round-start relation; mutated only by union-find
    /// path compression inside `eval_premise`, never by enforcement.
    eq: EqRel,
    /// `(rule, match index)` pairs whose premise the snapshot satisfies.
    fired: Vec<(u32, u32)>,
    premise_evals: u64,
}

/// One round's premise scan as a scheduler workload. The task only needs
/// each rule's premise literals, so the same scan serves the classic
/// [`GfdSet`] baseline and the generalized [`DepSet`] chase — a rule's
/// consequence action is irrelevant until the serial apply phase.
struct ScanTask<'a> {
    premises: &'a [&'a [Literal]],
    matches: &'a [Vec<Match>],
    snapshot: &'a EqRel,
    ttl: Duration,
}

impl Task for ScanTask<'_> {
    type Unit = ScanUnit;
    type Worker = ScanWorker;

    fn worker(&self, _id: usize) -> ScanWorker {
        ScanWorker {
            eq: self.snapshot.clone(),
            fired: Vec::new(),
            premise_evals: 0,
        }
    }

    fn run_unit(&self, w: &mut ScanWorker, unit: ScanUnit, ctx: &WorkerCtx<'_, ScanUnit>) {
        let premise = self.premises[unit.rule as usize];
        let list = &self.matches[unit.rule as usize];
        let deadline = Instant::now() + self.ttl;
        for idx in unit.start..unit.end {
            w.premise_evals += 1;
            if let PremiseStatus::Satisfied =
                eval_premise_lits(&mut w.eq, premise, &list[idx as usize])
            {
                w.fired.push((unit.rule, idx));
            }
            // Straggler: offer the rest of the range in two halves (the
            // back half is what an idle worker will steal).
            let next = idx + 1;
            if next < unit.end && Instant::now() >= deadline {
                let mid = next + (unit.end - next) / 2;
                let mut rest = vec![ScanUnit {
                    rule: unit.rule,
                    start: next,
                    end: mid,
                }];
                if mid < unit.end {
                    rest.push(ScanUnit {
                        rule: unit.rule,
                        start: mid,
                        end: unit.end,
                    });
                }
                ctx.split(rest);
                return;
            }
        }
    }
}

/// Chase Σ over `canon` starting from `eq0` until fixpoint or conflict,
/// with the default (sequential) configuration.
///
/// Match lists are enumerated once per rule and cached (the graph topology
/// never changes); every round re-evaluates every premise — the naive part.
pub fn chase_to_fixpoint(
    sigma: &GfdSet,
    canon: &CanonicalGraph,
    eq0: EqRel,
) -> (ChaseOutcome, ChaseStats) {
    let (outcome, stats, _) =
        chase_to_fixpoint_with_config(sigma, canon, eq0, &ChaseConfig::default());
    (outcome, stats)
}

/// Chase Σ over `canon` to fixpoint or conflict, with each round's
/// premise scan dispatched on the shared work-stealing scheduler. Also
/// returns the unified scheduler metrics accumulated over all rounds.
pub fn chase_to_fixpoint_with_config(
    sigma: &GfdSet,
    canon: &CanonicalGraph,
    eq0: EqRel,
    config: &ChaseConfig,
) -> (ChaseOutcome, ChaseStats, RunMetrics) {
    let start = Instant::now();
    let p = config.workers.max(1);
    let mut stats = ChaseStats::default();
    let mut metrics = RunMetrics {
        workers: p,
        ..Default::default()
    };
    metrics.worker_busy = vec![Duration::ZERO; p];
    metrics.worker_idle = vec![Duration::ZERO; p];
    let mut eq = eq0;

    // Enumerate all matches up front (no pivoting, no pruning: naive).
    let mut all_matches: Vec<Vec<Match>> = Vec::with_capacity(sigma.len());
    for (_, gfd) in sigma.iter() {
        let ms = find_all_matches(&canon.graph, &canon.index, &gfd.pattern);
        stats.matches_enumerated += ms.len() as u64;
        all_matches.push(ms);
    }

    let premises: Vec<&[Literal]> = sigma
        .as_slice()
        .iter()
        .map(|g| g.premise.as_slice())
        .collect();
    let done = |outcome: ChaseOutcome, stats: ChaseStats, mut metrics: RunMetrics| {
        metrics.elapsed = start.elapsed();
        metrics.deadline_slack_ms = config.budget.deadline_slack_ms();
        (outcome, stats, metrics)
    };
    loop {
        // Round boundary: the cooperative deadline check the scheduler
        // cannot make for us between scans.
        if config.budget.expired() {
            metrics.early_terminated = true;
            return done(
                ChaseOutcome::Interrupted(Interrupt::Deadline),
                stats,
                metrics,
            );
        }
        stats.rounds += 1;
        let (fired, interrupt) = scan_round(
            &premises,
            &all_matches,
            &eq,
            config,
            p,
            &mut stats,
            &mut metrics,
        );
        if let Some(interrupt) = interrupt {
            // A degraded scan saw only part of this round's premises;
            // claiming a fixpoint (or applying a partial round) would be
            // answering a question we did not finish asking.
            metrics.early_terminated = true;
            return done(ChaseOutcome::Interrupted(interrupt), stats, metrics);
        }

        // ---- serial apply phase ----
        if failpoint::triggered("chase/apply") {
            metrics.early_terminated = true;
            return done(
                ChaseOutcome::Interrupted(Interrupt::Aborted(
                    "failpoint chase/apply fired".to_string(),
                )),
                stats,
                metrics,
            );
        }
        let mut changed = false;
        for (rule, idx) in fired {
            let id = gfd_graph::GfdId::new(rule as usize);
            let gfd = &sigma.as_slice()[rule as usize];
            match apply_consequence(&mut eq, gfd, &all_matches[rule as usize][idx as usize]) {
                Ok(c) => changed |= c,
                Err(e) => {
                    metrics.early_terminated = true;
                    return done(ChaseOutcome::Conflict(e.with_gfd(id)), stats, metrics);
                }
            }
        }
        if !changed {
            return done(ChaseOutcome::Fixpoint(eq), stats, metrics);
        }
    }
}

/// Dispatch one round's premise scan on the shared scheduler and collect
/// the fired `(rule, match index)` pairs in deterministic order (the
/// sequential scan's order, whatever the worker interleaving was).
fn scan_round(
    premises: &[&[Literal]],
    all_matches: &[Vec<Match>],
    snapshot: &EqRel,
    config: &ChaseConfig,
    p: usize,
    stats: &mut ChaseStats,
    metrics: &mut RunMetrics,
) -> (Vec<(u32, u32)>, Option<Interrupt>) {
    let batch = config.batch.max(1);
    let mut units: Vec<ScanUnit> = Vec::new();
    for (rule, list) in all_matches.iter().enumerate() {
        let mut start = 0usize;
        while start < list.len() {
            let end = (start + batch).min(list.len());
            units.push(ScanUnit {
                rule: rule as u32,
                start: start as u32,
                end: end as u32,
            });
            start = end;
        }
    }
    let stop = AtomicBool::new(false);
    let task = ScanTask {
        premises,
        matches: all_matches,
        snapshot,
        ttl: config.ttl,
    };
    metrics.units_generated += units.len();
    let opts = config.round_sched_options(metrics.units_dispatched);
    let run = run_scheduler_with(&task, units, p, config.dispatch, &stop, opts);
    metrics.units_dispatched += run.units_executed;
    metrics.units_split += run.units_split;
    metrics.units_stolen += run.units_stolen;
    metrics.units_panicked += run.units_panicked;
    metrics.units_retried += run.units_retried;
    for (acc, d) in metrics.worker_busy.iter_mut().zip(&run.worker_busy) {
        *acc += *d;
    }
    for (acc, d) in metrics.worker_idle.iter_mut().zip(&run.worker_idle) {
        *acc += *d;
    }
    let mut fired: Vec<(u32, u32)> = Vec::new();
    for w in run.workers {
        stats.premise_evals += w.premise_evals;
        fired.extend(w.fired);
    }
    fired.sort_unstable();
    (fired, Interrupt::from_outcome(&run.outcome))
}

/// Outcome of chasing a generalized dependency set over a growable graph.
pub enum DepChaseOutcome {
    /// Fixpoint reached: the chased graph (base plus every materialized
    /// subgraph) and the final relation.
    Fixpoint {
        /// The chased graph.
        graph: Box<Graph>,
        /// The final equivalence relation.
        eq: Box<EqRel>,
    },
    /// Two distinct constants were forced onto one class.
    Conflict(Conflict),
    /// The fresh-node budget ran out before a fixpoint: the question is
    /// undecided (mirrors the GED search's branch budget — report
    /// "unknown", never loop forever).
    BudgetExhausted {
        /// Fresh nodes materialized before giving up.
        generated_nodes: u64,
    },
    /// The run was cut short — deadline, unit budget, or an injected
    /// fault — before the fixpoint: no definite answer.
    Interrupted(Interrupt),
}

/// Chase a generalized [`DepSet`] over `graph0` to fixpoint, conflict or
/// budget exhaustion, starting from `eq0`.
///
/// Each round runs the premise scan of **every** dependency as scan units
/// on the shared scheduler (identical to the literal chase), then the
/// serial apply phase between rounds handles both consequence actions in
/// deterministic `(rule, match index)` order:
///
/// * literal consequences enforce into the relation as before;
/// * generating consequences are checked for *realization* against the
///   **round-start** topology and relation snapshot — every firing is
///   evaluated against the same state, so the set of materializations per
///   round is invariant under rule reordering and worker count (the
///   parallel-independence condition of attributed graph rewriting) —
///   and unrealized firings materialize their target (fresh nodes, edges,
///   attribute bindings into the live relation). A `(rule, match)` key
///   fires at most once.
///
/// When a round materialized topology, matches are re-enumerated against
/// the grown graph before the next round; fixpoint is reached when a
/// round applies nothing new. Literal-only sets never materialize, so
/// this degenerates to exactly the cached-match literal chase.
pub fn dep_chase_with_config(
    deps: &DepSet,
    graph0: Graph,
    eq0: EqRel,
    config: &ChaseConfig,
) -> (DepChaseOutcome, ChaseStats, RunMetrics) {
    let start = Instant::now();
    let p = config.workers.max(1);
    let mut stats = ChaseStats::default();
    let mut metrics = RunMetrics {
        workers: p,
        ..Default::default()
    };
    metrics.worker_busy = vec![Duration::ZERO; p];
    metrics.worker_idle = vec![Duration::ZERO; p];

    let mut graph = graph0;
    let mut eq = eq0;
    let premises: Vec<&[Literal]> = deps
        .as_slice()
        .iter()
        .map(|d| d.premise.as_slice())
        .collect();
    // A generating firing's identity: once materialized (or found
    // realized), the same `(rule, match)` never fires again.
    type FiredKey = (u32, Match);
    let mut fired_gen: FxHashSet<FiredKey> = FxHashSet::default();

    let done = |outcome: DepChaseOutcome, stats: ChaseStats, mut metrics: RunMetrics| {
        metrics.elapsed = start.elapsed();
        metrics.deadline_slack_ms = config.budget.deadline_slack_ms();
        (outcome, stats, metrics)
    };
    let max_generated = config.effective_max_generated();

    'rebuild: loop {
        // (Re-)freeze the current topology and enumerate premise matches.
        let canon = CanonicalGraph::from_graph(graph.clone());
        let mut all_matches: Vec<Vec<Match>> = Vec::with_capacity(deps.len());
        for (_, dep) in deps.iter() {
            let ms = find_all_matches(&canon.graph, &canon.index, &dep.pattern);
            stats.matches_enumerated += ms.len() as u64;
            all_matches.push(ms);
        }

        loop {
            if config.budget.expired() {
                metrics.early_terminated = true;
                return done(
                    DepChaseOutcome::Interrupted(Interrupt::Deadline),
                    stats,
                    metrics,
                );
            }
            stats.rounds += 1;
            let (fired, interrupt) = scan_round(
                &premises,
                &all_matches,
                &eq,
                config,
                p,
                &mut stats,
                &mut metrics,
            );
            if let Some(interrupt) = interrupt {
                metrics.early_terminated = true;
                return done(DepChaseOutcome::Interrupted(interrupt), stats, metrics);
            }

            // ---- serial apply phase ----
            if failpoint::triggered("chase/apply") {
                metrics.early_terminated = true;
                return done(
                    DepChaseOutcome::Interrupted(Interrupt::Aborted(
                        "failpoint chase/apply fired".to_string(),
                    )),
                    stats,
                    metrics,
                );
            }
            // Realization is judged against the round-start snapshots
            // (the `canon` topology and a clone of the round-start
            // relation), so within-round apply order cannot change which
            // firings materialize. The relation snapshot must be taken
            // *before* any literal apply of this round mutates `eq` —
            // but only rounds with generating firings ever read it, so
            // literal-only rounds (the common tail once generation has
            // converged) skip the clone entirely.
            let mut realize_snap = fired
                .iter()
                .any(|&(rule, _)| deps.as_slice()[rule as usize].is_generating())
                .then(|| eq.clone());
            let topo_before = graph.topology_version();
            let mut changed = false;
            for (rule, idx) in fired {
                let id = gfd_graph::GfdId::new(rule as usize);
                let dep = &deps.as_slice()[rule as usize];
                let m = &all_matches[rule as usize][idx as usize];
                match &dep.consequence {
                    Consequence::Literals(lits) => match apply_literals(&mut eq, lits, m) {
                        Ok(c) => changed |= c,
                        Err(e) => {
                            metrics.early_terminated = true;
                            return done(DepChaseOutcome::Conflict(e.with_gfd(id)), stats, metrics);
                        }
                    },
                    Consequence::Generate(gen) => {
                        let key: FiredKey = (rule, m.clone());
                        if fired_gen.contains(&key) {
                            continue;
                        }
                        stats.realization_checks += 1;
                        let snap = realize_snap
                            .as_mut()
                            .expect("a generating firing implies the snapshot was taken");
                        let realized = generate_deducible(snap, &canon.index, gen, m);
                        fired_gen.insert(key);
                        if realized {
                            continue;
                        }
                        let outcome = gen.materialize(&mut graph, m, &mut |lit, asn| {
                            let k1 = (asn[lit.var.index()], lit.attr);
                            match &lit.rhs {
                                Operand::Const(c) => eq.bind(k1, c.clone()).map(|_| ()),
                                Operand::Attr(v2, a2) => {
                                    eq.merge(k1, (asn[v2.index()], *a2)).map(|_| ())
                                }
                            }
                        });
                        match outcome {
                            Ok(fresh) => {
                                stats.generated_nodes += fresh.len() as u64;
                                changed = true;
                                if stats.generated_nodes > max_generated {
                                    metrics.early_terminated = true;
                                    return done(
                                        DepChaseOutcome::BudgetExhausted {
                                            generated_nodes: stats.generated_nodes,
                                        },
                                        stats,
                                        metrics,
                                    );
                                }
                            }
                            Err(e) => {
                                metrics.early_terminated = true;
                                return done(
                                    DepChaseOutcome::Conflict(e.with_gfd(id)),
                                    stats,
                                    metrics,
                                );
                            }
                        }
                    }
                }
            }
            if !changed {
                return done(
                    DepChaseOutcome::Fixpoint {
                        graph: Box::new(graph),
                        eq: Box::new(eq),
                    },
                    stats,
                    metrics,
                );
            }
            if graph.topology_version() != topo_before {
                // Materialization grew the graph: matches (and the frozen
                // index the realization check probes) are stale.
                continue 'rebuild;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Gfd, Literal};
    use gfd_graph::{Pattern, Value, VarId, Vocab};

    fn unary(vocab: &mut Vocab, name: &str, pre: Vec<Literal>, post: Vec<Literal>) -> Gfd {
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "x");
        Gfd::new(name, p, pre, post)
    }

    fn chain_sigma(vocab: &mut Vocab) -> GfdSet {
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let x = VarId::new(0);
        // Deliberately ordered so each round unlocks the next rule.
        GfdSet::from_vec(vec![
            unary(
                vocab,
                "b_to_c",
                vec![Literal::eq_const(x, b, 1i64)],
                vec![Literal::eq_const(x, c, 1i64)],
            ),
            unary(
                vocab,
                "a_to_b",
                vec![Literal::eq_const(x, a, 1i64)],
                vec![Literal::eq_const(x, b, 1i64)],
            ),
            unary(vocab, "seed", vec![], vec![Literal::eq_const(x, a, 1i64)]),
        ])
    }

    #[test]
    fn chase_derives_chains_across_rounds() {
        let mut vocab = Vocab::new();
        let c = vocab.attr("c");
        let sigma = chain_sigma(&mut vocab);
        let (canon, node_of) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, stats) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        match outcome {
            ChaseOutcome::Fixpoint(mut eq) => {
                // Every t-node (one per unary pattern copy) derives c=1.
                for nodes in &node_of {
                    assert!(eq.deduces_const((nodes[0], c), &Value::int(1)));
                }
            }
            ChaseOutcome::Conflict(c) => panic!("unexpected conflict: {c}"),
            ChaseOutcome::Interrupted(i) => panic!("unexpected interrupt: {i}"),
        }
        // The chain needs multiple rounds — the naive overhead the paper
        // measures.
        assert!(stats.rounds >= 3, "rounds = {}", stats.rounds);
        assert!(stats.premise_evals > stats.matches_enumerated);
    }

    #[test]
    fn chase_detects_conflicts() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary(
                &mut vocab,
                "zero",
                vec![],
                vec![Literal::eq_const(x, a, 0i64)],
            ),
            unary(
                &mut vocab,
                "one",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, _) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        assert!(matches!(outcome, ChaseOutcome::Conflict(_)));
    }

    #[test]
    fn empty_sigma_fixpoints_immediately() {
        let sigma = GfdSet::new();
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, stats) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        assert!(matches!(outcome, ChaseOutcome::Fixpoint(_)));
        assert_eq!(stats.rounds, 1);
    }

    /// The scheduler port must not change what the chase derives: every
    /// worker count, dispatch mode, and a TTL of zero (forced splitting
    /// with tiny batches) reach the same fixpoint as the sequential scan.
    #[test]
    fn scan_parallelism_is_answer_invariant() {
        let mut vocab = Vocab::new();
        let c = vocab.attr("c");
        let sigma = chain_sigma(&mut vocab);
        let (canon, node_of) = CanonicalGraph::for_sigma(&sigma);
        for p in [1usize, 2, 8] {
            for dispatch in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
                let cfg = ChaseConfig {
                    workers: p,
                    ttl: Duration::ZERO,
                    batch: 1,
                    dispatch,
                    ..ChaseConfig::default()
                };
                let (outcome, stats, metrics) =
                    chase_to_fixpoint_with_config(&sigma, &canon, EqRel::new(), &cfg);
                match outcome {
                    ChaseOutcome::Fixpoint(mut eq) => {
                        for nodes in &node_of {
                            assert!(
                                eq.deduces_const((nodes[0], c), &Value::int(1)),
                                "p={p} {dispatch:?}"
                            );
                        }
                    }
                    ChaseOutcome::Conflict(e) => panic!("p={p} {dispatch:?}: {e}"),
                    ChaseOutcome::Interrupted(i) => panic!("p={p} {dispatch:?}: {i}"),
                }
                assert!(stats.rounds >= 3);
                assert_eq!(metrics.workers, p);
                assert!(metrics.units_dispatched >= metrics.units_generated as u64);
            }
        }
    }

    #[test]
    fn conflicts_survive_the_parallel_scan() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary(
                &mut vocab,
                "zero",
                vec![],
                vec![Literal::eq_const(x, a, 0i64)],
            ),
            unary(
                &mut vocab,
                "one",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        for p in [2usize, 4] {
            let cfg = ChaseConfig::with_workers(p);
            let (outcome, _, metrics) =
                chase_to_fixpoint_with_config(&sigma, &canon, EqRel::new(), &cfg);
            assert!(matches!(outcome, ChaseOutcome::Conflict(_)), "p={p}");
            assert!(metrics.early_terminated);
        }
    }
}
