//! A deliberately *naive* chase engine over canonical graphs.
//!
//! This is the baseline the paper compares against (`ParImpRDF`, following
//! Hellings et al.'s chase for RDF FDs): a round-based fixpoint that
//! re-enumerates every match of every rule each round, with **no**
//! dependency ordering, **no** inverted pending index, and **no** early
//! consequence cut inside a round. Same answers as `SeqSat`/`SeqImp`,
//! strictly more work — which is exactly the point of the comparison in
//! Fig. 5 and Fig. 6(f).
//!
//! Since the scheduler port, each round's **premise scan** runs as a
//! [`Task`] on the shared `gfd-runtime` work-stealing scheduler instead
//! of a private loop: the cached match lists are chunked into scan units,
//! every worker evaluates premises against its own clone of the
//! round-start relation (premise evaluation only path-compresses, so a
//! clone is semantically inert), and the fired `(rule, match)` pairs are
//! applied **serially in deterministic order** between rounds. A premise
//! that a mid-round enforcement would have unlocked simply fires one
//! round later — the fixpoint (and any conflict) is unchanged because
//! enforcement is monotone, while the round structure the baseline is
//! *supposed* to pay for is preserved. Snapshot semantics hold at every
//! worker count (including the sequential `workers = 1`), so
//! [`ChaseStats`] round/eval counts are identical across `p` — they can
//! run higher than the pre-port scan, which applied consequences
//! mid-round, did for cascading rule orders; that is a uniform shift of
//! the baseline, not a scan-order artifact.

use gfd_core::{
    eval_premise_lits, generate_deducible, Budget, CanonicalGraph, Conflict, Consequence, DepSet,
    EqRel, GfdSet, Interrupt, Literal, Operand, PremiseStatus,
};
use gfd_graph::{AttrId, Graph, LabelId, MatchIndex, NodeId, ValueId, VarId};
use gfd_match::{find_all_matches, Match};
use gfd_runtime::sched::{run_scheduler_with, SchedOptions, SchedRun, Task, WorkerCtx};
use gfd_runtime::{
    failpoint, DispatchMode, EventKind, RunMetrics, TraceBuf, TraceSpec, CONTROL_WORKER,
};
use rustc_hash::FxHashSet;
use std::cell::RefCell;
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

/// The control-track ring buffer a chase run records its phase spans
/// into (`ChaseRound`, `ApplyPlan`, `ApplyCommit` — DESIGN.md §13). The
/// chase driver runs on the calling thread, outside any scheduler
/// worker, so these spans carry [`CONTROL_WORKER`] and are absorbed into
/// the run's merged trace when it finishes.
struct ControlTrace(RefCell<TraceBuf>);

impl ControlTrace {
    fn new(spec: TraceSpec) -> Self {
        ControlTrace(RefCell::new(TraceBuf::new(spec.control(), CONTROL_WORKER)))
    }

    fn start(&self) -> gfd_runtime::SpanStart {
        self.0.borrow().start()
    }

    fn span(&self, kind: EventKind, id: u32, start: gfd_runtime::SpanStart, a: u64, b: u64) {
        self.0.borrow_mut().span(kind, id, start, a, b);
    }

    /// Move the recorded events into `metrics.trace`, leaving the buffer
    /// empty (the chase calls this once, on its single exit path).
    fn flush_into(&self, metrics: &mut RunMetrics) {
        let buf = self
            .0
            .replace(TraceBuf::new(TraceSpec::disabled(), CONTROL_WORKER));
        metrics.trace.absorb_buf(buf);
    }
}

/// Scheduler knobs of the chase baseline.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Worker threads; `1` runs the scan inline on the calling thread.
    pub workers: usize,
    /// Straggler threshold for one scan unit: past it, the unit's
    /// remaining matches are split for idle workers to steal.
    pub ttl: Duration,
    /// Matches per initial scan unit.
    pub batch: usize,
    /// How units reach the workers.
    pub dispatch: DispatchMode,
    /// Termination guard for generating dependencies: the chase gives up
    /// (reporting "unknown" instead of looping forever) once this many
    /// fresh nodes have been materialized. GGD chains like
    /// `person → CREATE person` have no finite fixpoint; the budget bounds
    /// them the way `max_branches` bounds the GED search (DESIGN.md §10).
    /// Irrelevant to literal-only rule sets.
    pub max_generated_nodes: u64,
    /// Unified resource budget (DESIGN.md §11.2): the deadline is checked
    /// at round boundaries and inside the scan via the scheduler, the unit
    /// cap across all rounds, and the fresh-node axis tightens
    /// `max_generated_nodes`. Exhaustion degrades to an `Interrupted`
    /// outcome — the chase never claims a fixpoint it did not reach.
    pub budget: Budget,
    /// Structured tracing (DESIGN.md §13): per-rule scan spans on the
    /// scheduler workers, `ChaseRound`/`ApplyPlan`/`ApplyCommit` phase
    /// spans on the control track. Off by default.
    pub trace: gfd_runtime::TraceSpec,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            workers: 1,
            ttl: Duration::from_millis(100),
            batch: 256,
            dispatch: DispatchMode::WorkStealing,
            max_generated_nodes: 100_000,
            budget: Budget::unlimited(),
            trace: gfd_runtime::TraceSpec::disabled(),
        }
    }
}

impl ChaseConfig {
    /// A config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ChaseConfig {
            workers,
            ..Self::default()
        }
    }

    /// Attach a unified resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The effective fresh-node cap: the legacy `max_generated_nodes`
    /// knob tightened by the budget's fresh-node axis.
    fn effective_max_generated(&self) -> u64 {
        match self.budget.max_fresh_nodes {
            Some(b) => self.max_generated_nodes.min(b),
            None => self.max_generated_nodes,
        }
    }

    /// Scheduler options for one round's scan: the global deadline plus
    /// whatever of the unit budget is left after `units_so_far`.
    fn round_sched_options(&self, units_so_far: u64) -> SchedOptions {
        SchedOptions {
            deadline: self.budget.deadline,
            max_units: self
                .budget
                .max_units
                .map(|max| max.saturating_sub(units_so_far)),
            unit_retries: 0,
            trace: self.trace,
        }
    }
}

/// Counters reported by the chase.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaseStats {
    /// Fixpoint rounds executed.
    pub rounds: u64,
    /// Premise evaluations across all rounds (the re-scanning overhead).
    pub premise_evals: u64,
    /// Matches enumerated. Match lists are cached per rule and counted
    /// once per enumeration; generating rules force a re-enumeration
    /// whenever materialization changed the topology.
    pub matches_enumerated: u64,
    /// Fresh nodes materialized by generating consequences (zero for
    /// literal-only rule sets).
    pub generated_nodes: u64,
    /// Realization checks run against round-start snapshots.
    pub realization_checks: u64,
    /// Firings committed by splicing a concurrently-built patch — the
    /// parallel-independent set of the conflict partition (DESIGN.md
    /// §12.2). Zero for the literal [`GfdSet`] baseline, which keeps
    /// the fully serial apply.
    pub apply_independent: u64,
    /// Firings whose touched classes or nodes overlapped an earlier
    /// firing of the same round, replayed through the serial fallback.
    pub apply_conflicts: u64,
    /// Wall time spent in premise scans, across all rounds.
    pub scan_time: Duration,
    /// Wall time spent planning and committing consequences, across all
    /// completed apply phases (a round cut short mid-apply is not
    /// booked).
    pub apply_time: Duration,
}

/// Outcome of chasing Σ over a canonical graph.
pub enum ChaseOutcome {
    /// Fixpoint reached without conflict; the final relation is returned.
    Fixpoint(EqRel),
    /// Two distinct constants were forced onto one class.
    Conflict(Conflict),
    /// The run was cut short — deadline, unit budget, or an injected
    /// fault — before the fixpoint: no definite answer.
    Interrupted(Interrupt),
}

/// Apply the consequence of `gfd` at `m`; returns whether anything changed.
fn apply_consequence(eq: &mut EqRel, gfd: &gfd_core::Gfd, m: &[NodeId]) -> Result<bool, Conflict> {
    apply_literals(eq, &gfd.consequence, m)
}

/// Apply a literal-conjunction consequence at `m`; returns whether
/// anything changed. Shared by the [`GfdSet`] baseline and the literal
/// arm of the generalized [`DepSet`] chase.
fn apply_literals(eq: &mut EqRel, lits: &[Literal], m: &[NodeId]) -> Result<bool, Conflict> {
    let mut changed = false;
    for lit in lits {
        let k1 = (m[lit.var.index()], lit.attr);
        match &lit.rhs {
            Operand::Const(c) => {
                changed |= eq.bind(k1, *c)?.changed;
            }
            Operand::Attr(v2, a2) => {
                let k2 = (m[v2.index()], *a2);
                changed |= eq.merge(k1, k2)?.changed;
            }
        }
    }
    Ok(changed)
}

/// A contiguous slice of one rule's cached match list.
#[derive(Clone, Copy)]
struct ScanUnit {
    rule: u32,
    start: u32,
    end: u32,
}

/// Per-worker scan state for one round.
struct ScanWorker {
    /// Clone of the round-start relation; mutated only by union-find
    /// path compression inside `eval_premise`, never by enforcement.
    eq: EqRel,
    /// `(rule, match index)` pairs whose premise the snapshot satisfies.
    fired: Vec<(u32, u32)>,
    premise_evals: u64,
}

/// One round's premise scan as a scheduler workload. The task only needs
/// each rule's premise literals, so the same scan serves the classic
/// [`GfdSet`] baseline and the generalized [`DepSet`] chase — a rule's
/// consequence action is irrelevant until the serial apply phase.
struct ScanTask<'a> {
    premises: &'a [&'a [Literal]],
    matches: &'a [Vec<Match>],
    snapshot: &'a EqRel,
    ttl: Duration,
}

impl Task for ScanTask<'_> {
    type Unit = ScanUnit;
    type Worker = ScanWorker;

    fn worker(&self, _id: usize) -> ScanWorker {
        ScanWorker {
            eq: self.snapshot.clone(),
            fired: Vec::new(),
            premise_evals: 0,
        }
    }

    fn run_unit(&self, w: &mut ScanWorker, unit: ScanUnit, ctx: &WorkerCtx<'_, ScanUnit>) {
        let span = ctx.trace_start();
        let evals0 = w.premise_evals;
        let fired0 = w.fired.len() as u64;
        let premise = self.premises[unit.rule as usize];
        let list = &self.matches[unit.rule as usize];
        let deadline = Instant::now() + self.ttl;
        for idx in unit.start..unit.end {
            w.premise_evals += 1;
            if let PremiseStatus::Satisfied =
                eval_premise_lits(&mut w.eq, premise, &list[idx as usize])
            {
                w.fired.push((unit.rule, idx));
            }
            // Straggler: offer the rest of the range in two halves (the
            // back half is what an idle worker will steal).
            let next = idx + 1;
            if next < unit.end && Instant::now() >= deadline {
                let mid = next + (unit.end - next) / 2;
                let mut rest = vec![ScanUnit {
                    rule: unit.rule,
                    start: next,
                    end: mid,
                }];
                if mid < unit.end {
                    rest.push(ScanUnit {
                        rule: unit.rule,
                        start: mid,
                        end: unit.end,
                    });
                }
                ctx.split(rest);
                break;
            }
        }
        ctx.trace_span(
            EventKind::RuleEval,
            unit.rule,
            span,
            w.premise_evals - evals0,
            w.fired.len() as u64 - fired0,
        );
    }
}

/// A node operand inside a [`Patch`]: a premise node fixed by the
/// firing's match, or the `k`-th fresh node the patch creates. Fresh
/// nodes stay relative so a patch can be built concurrently and
/// committed at whatever ids the deterministic walk reaches.
#[derive(Clone, Copy)]
enum RelNode {
    /// A node bound by the premise match.
    Premise(NodeId),
    /// The `k`-th fresh node of this firing.
    Fresh(u32),
}

/// One relation mutation inside a [`Patch`].
#[derive(Clone)]
enum RelOp {
    Bind(RelNode, AttrId, ValueId),
    Merge(RelNode, AttrId, RelNode, AttrId),
}

/// The precomputed mutation buffer of one fired consequence: fresh-node
/// labels (empty for literal consequences), generated edges, and
/// relation ops. Built concurrently on the scheduler during the apply
/// phase's planning pass; spliced (independent set) or discarded in
/// favour of the serial fallback (conflicting residual) at commit.
#[derive(Default)]
struct Patch {
    labels: Vec<LabelId>,
    edges: Vec<(RelNode, LabelId, RelNode)>,
    ops: Vec<RelOp>,
}

/// What the planning pass decided for one pending firing.
enum FiringPlan {
    /// Generating firing whose target is already realized in the
    /// round-start snapshot: nothing to do.
    Realized,
    /// Mutation buffer ready to commit.
    Patch(Patch),
}

fn rel(v: VarId, m: &[NodeId], shared: usize) -> RelNode {
    if v.index() < shared {
        RelNode::Premise(m[v.index()])
    } else {
        RelNode::Fresh((v.index() - shared) as u32)
    }
}

fn rel_op(lit: &Literal, m: &[NodeId], shared: usize) -> RelOp {
    let r1 = rel(lit.var, m, shared);
    match &lit.rhs {
        Operand::Const(c) => RelOp::Bind(r1, lit.attr, *c),
        Operand::Attr(v2, a2) => RelOp::Merge(r1, lit.attr, rel(*v2, m, shared), *a2),
    }
}

/// Apply one relative op against `eq`, resolving fresh nodes through
/// `fresh`. Returns whether the relation changed.
fn commit_op(eq: &mut EqRel, op: &RelOp, fresh: &[NodeId]) -> Result<bool, Conflict> {
    let abs = |r: RelNode| match r {
        RelNode::Premise(n) => n,
        RelNode::Fresh(k) => fresh[k as usize],
    };
    match op {
        RelOp::Bind(r, a, v) => Ok(eq.bind((abs(*r), *a), *v)?.changed),
        RelOp::Merge(r1, a1, r2, a2) => Ok(eq.merge((abs(*r1), *a1), (abs(*r2), *a2))?.changed),
    }
}

fn splice_ops(eq: &mut EqRel, ops: &[RelOp], fresh: &[NodeId]) -> Result<bool, Conflict> {
    let mut changed = false;
    for op in ops {
        changed |= commit_op(eq, op, fresh)?;
    }
    Ok(changed)
}

/// Commit a generating patch: create the fresh nodes (ids fall out of
/// the walk order, identically to the serial `materialize`), add the
/// generated edges, splice the relation ops. Returns the fresh-node
/// count.
fn splice_patch(graph: &mut Graph, eq: &mut EqRel, patch: &Patch) -> Result<usize, Conflict> {
    let fresh: Vec<NodeId> = patch.labels.iter().map(|&l| graph.add_node(l)).collect();
    for &(s, l, d) in &patch.edges {
        let abs = |r: RelNode| match r {
            RelNode::Premise(n) => n,
            RelNode::Fresh(k) => fresh[k as usize],
        };
        graph.add_edge(abs(s), l, abs(d));
    }
    splice_ops(eq, &patch.ops, &fresh)?;
    Ok(fresh.len())
}

/// A contiguous chunk of the round's pending firings to plan.
#[derive(Clone, Copy)]
struct ApplyUnit {
    start: u32,
    end: u32,
}

/// Per-worker planning state: a clone of the round-start relation for
/// realization checks (mutated only by path compression and latent
/// `ensure`s — semantically inert), plus the plans produced.
struct ApplyWorker {
    eq: EqRel,
    plans: Vec<(u32, FiringPlan)>,
    realization_checks: u64,
}

/// The apply phase's planning pass as a scheduler workload: every
/// pending firing's realization check runs against the round-start
/// snapshot (checks are read-only, so they are all trivially parallel
/// under round-snapshot semantics) and its mutation buffer is built
/// concurrently. Nothing here touches the live graph or relation —
/// mutation happens only in the deterministic commit walk.
struct ApplyTask<'a, I: MatchIndex> {
    deps: &'a DepSet,
    matches: &'a [Vec<Match>],
    /// The round's pending `(rule, match index)` firings, sorted.
    pending: &'a [(u32, u32)],
    index: &'a I,
    snapshot: &'a EqRel,
    ttl: Duration,
}

impl<I: MatchIndex> Task for ApplyTask<'_, I> {
    type Unit = ApplyUnit;
    type Worker = ApplyWorker;

    fn worker(&self, _id: usize) -> ApplyWorker {
        ApplyWorker {
            eq: self.snapshot.clone(),
            plans: Vec::new(),
            realization_checks: 0,
        }
    }

    fn run_unit(&self, w: &mut ApplyWorker, unit: ApplyUnit, ctx: &WorkerCtx<'_, ApplyUnit>) {
        let deadline = Instant::now() + self.ttl;
        for i in unit.start..unit.end {
            let (rule, idx) = self.pending[i as usize];
            let dep = &self.deps.as_slice()[rule as usize];
            let m = &self.matches[rule as usize][idx as usize];
            let plan = match &dep.consequence {
                Consequence::Literals(lits) => {
                    let mut patch = Patch::default();
                    patch
                        .ops
                        .extend(lits.iter().map(|lit| rel_op(lit, m, m.len())));
                    FiringPlan::Patch(patch)
                }
                Consequence::Generate(gen) => {
                    w.realization_checks += 1;
                    if generate_deducible(&mut w.eq, self.index, gen, m) {
                        FiringPlan::Realized
                    } else {
                        let mut patch = Patch::default();
                        patch
                            .labels
                            .extend(gen.fresh_vars().map(|v| gen.pattern.label(v)));
                        patch.edges.extend(gen.pattern.edges().iter().map(|e| {
                            (
                                rel(e.src, m, gen.shared),
                                e.label,
                                rel(e.dst, m, gen.shared),
                            )
                        }));
                        patch
                            .ops
                            .extend(gen.attrs.iter().map(|lit| rel_op(lit, m, gen.shared)));
                        FiringPlan::Patch(patch)
                    }
                }
            };
            w.plans.push((i, plan));
            // Straggler: offer the rest of the range in two halves, as
            // the scan does.
            let next = i + 1;
            if next < unit.end && Instant::now() >= deadline {
                let mid = next + (unit.end - next) / 2;
                let mut rest = vec![ApplyUnit {
                    start: next,
                    end: mid,
                }];
                if mid < unit.end {
                    rest.push(ApplyUnit {
                        start: mid,
                        end: unit.end,
                    });
                }
                ctx.split(rest);
                return;
            }
        }
    }
}

/// Fold one scheduler run's counters and per-worker times into the
/// accumulated chase metrics.
fn absorb_run<W>(metrics: &mut RunMetrics, run: &SchedRun<W>) {
    metrics.trace.merge(&run.trace);
    metrics.units_dispatched += run.units_executed;
    metrics.units_split += run.units_split;
    metrics.units_stolen += run.units_stolen;
    metrics.units_panicked += run.units_panicked;
    metrics.units_retried += run.units_retried;
    for (acc, d) in metrics.worker_busy.iter_mut().zip(&run.worker_busy) {
        *acc += *d;
    }
    for (acc, d) in metrics.worker_idle.iter_mut().zip(&run.worker_idle) {
        *acc += *d;
    }
}

/// Dispatch the planning pass for one round's pending firings. Returns
/// the plans in pending order plus one worker's snapshot clone (reused
/// as the partition probe), or the interrupt that cut the pass short.
#[allow(clippy::too_many_arguments)]
fn plan_round<I: MatchIndex>(
    deps: &DepSet,
    all_matches: &[Vec<Match>],
    pending: &[(u32, u32)],
    index: &I,
    snapshot: &EqRel,
    config: &ChaseConfig,
    p: usize,
    stats: &mut ChaseStats,
    metrics: &mut RunMetrics,
) -> Result<(Vec<FiringPlan>, EqRel), Interrupt> {
    let batch = config.batch.max(1);
    let mut units: Vec<ApplyUnit> = Vec::new();
    let mut start = 0usize;
    while start < pending.len() {
        let end = (start + batch).min(pending.len());
        units.push(ApplyUnit {
            start: start as u32,
            end: end as u32,
        });
        start = end;
    }
    let stop = AtomicBool::new(false);
    let task = ApplyTask {
        deps,
        matches: all_matches,
        pending,
        index,
        snapshot,
        ttl: config.ttl,
    };
    metrics.units_generated += units.len();
    let opts = config.round_sched_options(metrics.units_dispatched);
    let run = run_scheduler_with(&task, units, p, config.dispatch, &stop, opts);
    absorb_run(metrics, &run);
    let interrupt = Interrupt::from_outcome(&run.outcome);
    let mut plans: Vec<Option<FiringPlan>> = (0..pending.len()).map(|_| None).collect();
    let mut probe: Option<EqRel> = None;
    for w in run.workers {
        stats.realization_checks += w.realization_checks;
        for (i, plan) in w.plans {
            plans[i as usize] = Some(plan);
        }
        probe.get_or_insert(w.eq);
    }
    if let Some(interrupt) = interrupt {
        return Err(interrupt);
    }
    let plans = plans
        .into_iter()
        .map(|p| p.expect("a completed planning pass plans every firing"))
        .collect();
    Ok((plans, probe.expect("at least one worker state")))
}

/// The greedy conflict partition (DESIGN.md §12.2). Walk the round's
/// plans in deterministic (rule, match index) order; each firing claims
/// its touched equivalence *classes* — premise attribute keys resolved
/// to class ids against the round-start snapshot — and its touched
/// premise *nodes* (adjacency-list writes of generated edges). A firing
/// whose claims are all unclaimed joins the independent set and commits
/// from its patch; any overlap routes it to the serial fallback.
///
/// Class-level (not key-level) resolution is what makes the criterion
/// the commutation condition of attributed-graph parallel independence:
/// two independent firings write disjoint union-find components, touch
/// disjoint adjacency lists, and create disjoint fresh-node ranges, so
/// their patches compose in either order with identical outcome —
/// including identical conflict behaviour.
///
/// The probe may carry extra latent keys from the planning pass; that
/// never changes *which keys share a class* (planning only
/// path-compresses), so the partition is invariant across worker
/// counts.
fn partition_independent(plans: &[FiringPlan], probe: &mut EqRel) -> Vec<bool> {
    let mut independent = vec![false; plans.len()];
    let mut claimed_classes: FxHashSet<u32> = FxHashSet::default();
    let mut claimed_nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut classes: Vec<u32> = Vec::new();
    let mut nodes: Vec<NodeId> = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let FiringPlan::Patch(patch) = plan else {
            // Realized: writes nothing, independent of everything.
            independent[i] = true;
            continue;
        };
        classes.clear();
        nodes.clear();
        for (s, _, d) in &patch.edges {
            if let RelNode::Premise(n) = s {
                nodes.push(*n);
            }
            if let RelNode::Premise(n) = d {
                nodes.push(*n);
            }
        }
        for op in &patch.ops {
            let mut claim = |r: &RelNode, a: AttrId| {
                if let RelNode::Premise(n) = r {
                    classes.push(probe.class_id((*n, a)));
                }
            };
            match op {
                RelOp::Bind(r, a, _) => claim(r, *a),
                RelOp::Merge(r1, a1, r2, a2) => {
                    claim(r1, *a1);
                    claim(r2, *a2);
                }
            }
        }
        classes.sort_unstable();
        classes.dedup();
        nodes.sort_unstable();
        nodes.dedup();
        let free = classes.iter().all(|c| !claimed_classes.contains(c))
            && nodes.iter().all(|n| !claimed_nodes.contains(n));
        if free {
            claimed_classes.extend(classes.iter().copied());
            claimed_nodes.extend(nodes.iter().copied());
            independent[i] = true;
        }
    }
    independent
}

/// Chase Σ over `canon` starting from `eq0` until fixpoint or conflict,
/// with the default (sequential) configuration.
///
/// Match lists are enumerated once per rule and cached (the graph topology
/// never changes); every round re-evaluates every premise — the naive part.
pub fn chase_to_fixpoint(
    sigma: &GfdSet,
    canon: &CanonicalGraph,
    eq0: EqRel,
) -> (ChaseOutcome, ChaseStats) {
    let (outcome, stats, _) =
        chase_to_fixpoint_with_config(sigma, canon, eq0, &ChaseConfig::default());
    (outcome, stats)
}

/// Chase Σ over `canon` to fixpoint or conflict, with each round's
/// premise scan dispatched on the shared work-stealing scheduler. Also
/// returns the unified scheduler metrics accumulated over all rounds.
pub fn chase_to_fixpoint_with_config(
    sigma: &GfdSet,
    canon: &CanonicalGraph,
    eq0: EqRel,
    config: &ChaseConfig,
) -> (ChaseOutcome, ChaseStats, RunMetrics) {
    let start = Instant::now();
    let p = config.workers.max(1);
    let mut stats = ChaseStats::default();
    let mut metrics = RunMetrics {
        workers: p,
        ..Default::default()
    };
    metrics.worker_busy = vec![Duration::ZERO; p];
    metrics.worker_idle = vec![Duration::ZERO; p];
    let mut eq = eq0;

    // Enumerate all matches up front (no pivoting, no pruning: naive).
    let mut all_matches: Vec<Vec<Match>> = Vec::with_capacity(sigma.len());
    for (_, gfd) in sigma.iter() {
        let ms = find_all_matches(&canon.graph, &canon.index, &gfd.pattern);
        stats.matches_enumerated += ms.len() as u64;
        all_matches.push(ms);
    }

    let premises: Vec<&[Literal]> = sigma
        .as_slice()
        .iter()
        .map(|g| g.premise.as_slice())
        .collect();
    let ctl = ControlTrace::new(config.trace);
    let done = |outcome: ChaseOutcome, stats: ChaseStats, mut metrics: RunMetrics| {
        ctl.flush_into(&mut metrics);
        metrics.elapsed = start.elapsed();
        metrics.deadline_slack_ms = config.budget.deadline_slack_ms();
        (outcome, stats, metrics)
    };
    loop {
        // Round boundary: the cooperative deadline check the scheduler
        // cannot make for us between scans.
        if config.budget.expired() {
            metrics.early_terminated = true;
            return done(
                ChaseOutcome::Interrupted(Interrupt::Deadline),
                stats,
                metrics,
            );
        }
        stats.rounds += 1;
        let round = stats.rounds as u32;
        let round_span = ctl.start();
        let (fired, interrupt) = scan_round(
            &premises,
            &all_matches,
            &eq,
            config,
            p,
            &mut stats,
            &mut metrics,
        );
        if let Some(interrupt) = interrupt {
            // A degraded scan saw only part of this round's premises;
            // claiming a fixpoint (or applying a partial round) would be
            // answering a question we did not finish asking.
            metrics.early_terminated = true;
            return done(ChaseOutcome::Interrupted(interrupt), stats, metrics);
        }

        // ---- serial apply phase (the deliberately naive baseline) ----
        if failpoint::triggered("chase/apply") {
            metrics.early_terminated = true;
            return done(
                ChaseOutcome::Interrupted(Interrupt::Aborted(
                    "failpoint chase/apply fired".to_string(),
                )),
                stats,
                metrics,
            );
        }
        let apply_start = Instant::now();
        let apply_span = ctl.start();
        let fired_count = fired.len() as u64;
        let mut changed = false;
        for (rule, idx) in fired {
            let id = gfd_graph::GfdId::new(rule as usize);
            let gfd = &sigma.as_slice()[rule as usize];
            match apply_consequence(&mut eq, gfd, &all_matches[rule as usize][idx as usize]) {
                Ok(c) => changed |= c,
                Err(e) => {
                    metrics.early_terminated = true;
                    return done(ChaseOutcome::Conflict(e.with_gfd(id)), stats, metrics);
                }
            }
        }
        stats.apply_time += apply_start.elapsed();
        // The literal baseline applies fully serially: its whole round is
        // booked as the conflicting residual (`a = 0` independent).
        ctl.span(EventKind::ApplyCommit, round, apply_span, 0, fired_count);
        ctl.span(
            EventKind::ChaseRound,
            round,
            round_span,
            fired_count,
            sigma.len() as u64,
        );
        if !changed {
            return done(ChaseOutcome::Fixpoint(eq), stats, metrics);
        }
    }
}

/// Dispatch one round's premise scan on the shared scheduler and collect
/// the fired `(rule, match index)` pairs in deterministic order (the
/// sequential scan's order, whatever the worker interleaving was).
fn scan_round(
    premises: &[&[Literal]],
    all_matches: &[Vec<Match>],
    snapshot: &EqRel,
    config: &ChaseConfig,
    p: usize,
    stats: &mut ChaseStats,
    metrics: &mut RunMetrics,
) -> (Vec<(u32, u32)>, Option<Interrupt>) {
    let scan_start = Instant::now();
    let batch = config.batch.max(1);
    let mut units: Vec<ScanUnit> = Vec::new();
    for (rule, list) in all_matches.iter().enumerate() {
        let mut start = 0usize;
        while start < list.len() {
            let end = (start + batch).min(list.len());
            units.push(ScanUnit {
                rule: rule as u32,
                start: start as u32,
                end: end as u32,
            });
            start = end;
        }
    }
    let stop = AtomicBool::new(false);
    let task = ScanTask {
        premises,
        matches: all_matches,
        snapshot,
        ttl: config.ttl,
    };
    metrics.units_generated += units.len();
    let opts = config.round_sched_options(metrics.units_dispatched);
    let run = run_scheduler_with(&task, units, p, config.dispatch, &stop, opts);
    absorb_run(metrics, &run);
    let mut fired: Vec<(u32, u32)> = Vec::new();
    for w in run.workers {
        stats.premise_evals += w.premise_evals;
        fired.extend(w.fired);
    }
    fired.sort_unstable();
    stats.scan_time += scan_start.elapsed();
    (fired, Interrupt::from_outcome(&run.outcome))
}

/// Outcome of chasing a generalized dependency set over a growable graph.
pub enum DepChaseOutcome {
    /// Fixpoint reached: the chased graph (base plus every materialized
    /// subgraph) and the final relation.
    Fixpoint {
        /// The chased graph.
        graph: Box<Graph>,
        /// The final equivalence relation.
        eq: Box<EqRel>,
    },
    /// Two distinct constants were forced onto one class.
    Conflict(Conflict),
    /// The fresh-node budget ran out before a fixpoint: the question is
    /// undecided (mirrors the GED search's branch budget — report
    /// "unknown", never loop forever).
    BudgetExhausted {
        /// Fresh nodes materialized before giving up.
        generated_nodes: u64,
    },
    /// The run was cut short — deadline, unit budget, or an injected
    /// fault — before the fixpoint: no definite answer.
    Interrupted(Interrupt),
}

/// Chase a generalized [`DepSet`] over `graph0` to fixpoint, conflict or
/// budget exhaustion, starting from `eq0`.
///
/// Each round runs the premise scan of **every** dependency as scan units
/// on the shared scheduler (identical to the literal chase), then the
/// apply phase handles both consequence actions in two passes:
///
/// * a **parallel planning pass**, also on the scheduler: every
///   generating firing's *realization* is checked against the
///   **round-start** topology and relation snapshot — checks are
///   read-only, so they are all independent by construction — and every
///   firing's mutation buffer (`Patch`) is built concurrently. A
///   `(rule, match)` key fires at most once across rounds.
/// * a **deterministic commit walk** in sorted `(rule, match index)`
///   order: the greedy conflict partition (DESIGN.md §12.2) splits the
///   round into the parallel-independent set — disjoint touched
///   equivalence classes, premise nodes, and fresh-node ranges, whose
///   patches provably commute and are spliced directly — and the
///   conflicting residual, which replays the original fully serial
///   apply. Because the walk order equals the old serial order, node
///   ids, conflict attribution, and budget cut points are byte-identical
///   to the serial chase at every worker count.
///
/// When a round materialized topology, matches are re-enumerated against
/// the grown graph before the next round; fixpoint is reached when a
/// round applies nothing new. Literal-only sets never materialize, so
/// this degenerates to exactly the cached-match literal chase.
pub fn dep_chase_with_config(
    deps: &DepSet,
    graph0: Graph,
    eq0: EqRel,
    config: &ChaseConfig,
) -> (DepChaseOutcome, ChaseStats, RunMetrics) {
    let start = Instant::now();
    let p = config.workers.max(1);
    let mut stats = ChaseStats::default();
    let mut metrics = RunMetrics {
        workers: p,
        ..Default::default()
    };
    metrics.worker_busy = vec![Duration::ZERO; p];
    metrics.worker_idle = vec![Duration::ZERO; p];

    let mut graph = graph0;
    let mut eq = eq0;
    let premises: Vec<&[Literal]> = deps
        .as_slice()
        .iter()
        .map(|d| d.premise.as_slice())
        .collect();
    // A generating firing's identity: once materialized (or found
    // realized), the same `(rule, match)` never fires again.
    type FiredKey = (u32, Match);
    let mut fired_gen: FxHashSet<FiredKey> = FxHashSet::default();

    let ctl = ControlTrace::new(config.trace);
    let done = |outcome: DepChaseOutcome, stats: ChaseStats, mut metrics: RunMetrics| {
        ctl.flush_into(&mut metrics);
        metrics.elapsed = start.elapsed();
        metrics.deadline_slack_ms = config.budget.deadline_slack_ms();
        (outcome, stats, metrics)
    };
    let max_generated = config.effective_max_generated();

    'rebuild: loop {
        // (Re-)freeze the current topology and enumerate premise matches.
        let canon = CanonicalGraph::from_graph(graph.clone());
        let mut all_matches: Vec<Vec<Match>> = Vec::with_capacity(deps.len());
        for (_, dep) in deps.iter() {
            let ms = find_all_matches(&canon.graph, &canon.index, &dep.pattern);
            stats.matches_enumerated += ms.len() as u64;
            all_matches.push(ms);
        }

        loop {
            if config.budget.expired() {
                metrics.early_terminated = true;
                return done(
                    DepChaseOutcome::Interrupted(Interrupt::Deadline),
                    stats,
                    metrics,
                );
            }
            stats.rounds += 1;
            let round = stats.rounds as u32;
            let round_span = ctl.start();
            let (fired, interrupt) = scan_round(
                &premises,
                &all_matches,
                &eq,
                config,
                p,
                &mut stats,
                &mut metrics,
            );
            if let Some(interrupt) = interrupt {
                metrics.early_terminated = true;
                return done(DepChaseOutcome::Interrupted(interrupt), stats, metrics);
            }

            // ---- apply phase: plan in parallel, commit in order ----
            if failpoint::triggered("chase/apply") {
                metrics.early_terminated = true;
                return done(
                    DepChaseOutcome::Interrupted(Interrupt::Aborted(
                        "failpoint chase/apply fired".to_string(),
                    )),
                    stats,
                    metrics,
                );
            }
            // Pending firings: literal consequences as-is, generating
            // firings deduped against every earlier round (a (rule,
            // match) key fires at most once). Within a round every match
            // index is distinct, so the round cannot collide with
            // itself.
            let mut pending: Vec<(u32, u32)> = Vec::with_capacity(fired.len());
            for &(rule, idx) in &fired {
                match &deps.as_slice()[rule as usize].consequence {
                    Consequence::Literals(_) => pending.push((rule, idx)),
                    Consequence::Generate(_) => {
                        let key: FiredKey =
                            (rule, all_matches[rule as usize][idx as usize].clone());
                        if fired_gen.insert(key) {
                            pending.push((rule, idx));
                        }
                    }
                }
            }

            // Planning pass (on the scheduler): realization checks are
            // read-only against the round-start snapshots — trivially
            // parallel under round-snapshot semantics — and every
            // firing's mutation buffer is built concurrently. The
            // greedy partition then splits the round into the
            // parallel-independent set (disjoint touched classes,
            // nodes, and fresh ranges — those patches commute) and the
            // conflicting residual, which replays the serial apply.
            let apply_start = Instant::now();
            let plan_span = ctl.start();
            let checks0 = stats.realization_checks;
            let (plans, independent) = if pending.is_empty() {
                (Vec::new(), Vec::new())
            } else {
                match plan_round(
                    deps,
                    &all_matches,
                    &pending,
                    &canon.index,
                    &eq,
                    config,
                    p,
                    &mut stats,
                    &mut metrics,
                ) {
                    Ok((plans, mut probe)) => {
                        let independent = partition_independent(&plans, &mut probe);
                        (plans, independent)
                    }
                    Err(interrupt) => {
                        metrics.early_terminated = true;
                        return done(DepChaseOutcome::Interrupted(interrupt), stats, metrics);
                    }
                }
            };
            ctl.span(
                EventKind::ApplyPlan,
                round,
                plan_span,
                pending.len() as u64,
                stats.realization_checks - checks0,
            );

            // Deterministic commit walk in sorted (rule, match index)
            // order — the same order the fully serial apply used, so
            // node ids, conflict attribution and budget cut points are
            // identical at every worker count.
            let topo_before = graph.topology_version();
            let commit_span = ctl.start();
            let independent0 = stats.apply_independent;
            let conflicts0 = stats.apply_conflicts;
            let mut changed = false;
            for (i, &(rule, idx)) in pending.iter().enumerate() {
                let id = gfd_graph::GfdId::new(rule as usize);
                let dep = &deps.as_slice()[rule as usize];
                let m = &all_matches[rule as usize][idx as usize];
                match (&dep.consequence, &plans[i]) {
                    (_, FiringPlan::Realized) => {}
                    (Consequence::Literals(lits), FiringPlan::Patch(patch)) => {
                        let applied = if independent[i] {
                            stats.apply_independent += 1;
                            splice_ops(&mut eq, &patch.ops, &[])
                        } else {
                            stats.apply_conflicts += 1;
                            apply_literals(&mut eq, lits, m)
                        };
                        match applied {
                            Ok(c) => changed |= c,
                            Err(e) => {
                                metrics.early_terminated = true;
                                return done(
                                    DepChaseOutcome::Conflict(e.with_gfd(id)),
                                    stats,
                                    metrics,
                                );
                            }
                        }
                    }
                    (Consequence::Generate(gen), FiringPlan::Patch(patch)) => {
                        let materialized = if independent[i] {
                            stats.apply_independent += 1;
                            splice_patch(&mut graph, &mut eq, patch)
                        } else {
                            stats.apply_conflicts += 1;
                            gen.materialize(&mut graph, m, &mut |lit, asn| {
                                let k1 = (asn[lit.var.index()], lit.attr);
                                match &lit.rhs {
                                    Operand::Const(c) => eq.bind(k1, *c).map(|_| ()),
                                    Operand::Attr(v2, a2) => {
                                        eq.merge(k1, (asn[v2.index()], *a2)).map(|_| ())
                                    }
                                }
                            })
                            .map(|fresh| fresh.len())
                        };
                        match materialized {
                            Ok(fresh) => {
                                stats.generated_nodes += fresh as u64;
                                changed = true;
                                if stats.generated_nodes > max_generated {
                                    metrics.early_terminated = true;
                                    return done(
                                        DepChaseOutcome::BudgetExhausted {
                                            generated_nodes: stats.generated_nodes,
                                        },
                                        stats,
                                        metrics,
                                    );
                                }
                            }
                            Err(e) => {
                                metrics.early_terminated = true;
                                return done(
                                    DepChaseOutcome::Conflict(e.with_gfd(id)),
                                    stats,
                                    metrics,
                                );
                            }
                        }
                    }
                }
            }
            stats.apply_time += apply_start.elapsed();
            ctl.span(
                EventKind::ApplyCommit,
                round,
                commit_span,
                stats.apply_independent - independent0,
                stats.apply_conflicts - conflicts0,
            );
            ctl.span(
                EventKind::ChaseRound,
                round,
                round_span,
                fired.len() as u64,
                deps.len() as u64,
            );
            if !changed {
                return done(
                    DepChaseOutcome::Fixpoint {
                        graph: Box::new(graph),
                        eq: Box::new(eq),
                    },
                    stats,
                    metrics,
                );
            }
            if graph.topology_version() != topo_before {
                // Materialization grew the graph: matches (and the frozen
                // index the realization check probes) are stale.
                continue 'rebuild;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Gfd, Literal};
    use gfd_graph::{Pattern, ValueId as VId, VarId, Vocab};

    fn unary(vocab: &mut Vocab, name: &str, pre: Vec<Literal>, post: Vec<Literal>) -> Gfd {
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "x");
        Gfd::new(name, p, pre, post)
    }

    fn chain_sigma(vocab: &mut Vocab) -> GfdSet {
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let x = VarId::new(0);
        // Deliberately ordered so each round unlocks the next rule.
        GfdSet::from_vec(vec![
            unary(
                vocab,
                "b_to_c",
                vec![Literal::eq_const(x, b, 1i64)],
                vec![Literal::eq_const(x, c, 1i64)],
            ),
            unary(
                vocab,
                "a_to_b",
                vec![Literal::eq_const(x, a, 1i64)],
                vec![Literal::eq_const(x, b, 1i64)],
            ),
            unary(vocab, "seed", vec![], vec![Literal::eq_const(x, a, 1i64)]),
        ])
    }

    #[test]
    fn chase_derives_chains_across_rounds() {
        let mut vocab = Vocab::new();
        let c = vocab.attr("c");
        let sigma = chain_sigma(&mut vocab);
        let (canon, node_of) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, stats) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        match outcome {
            ChaseOutcome::Fixpoint(mut eq) => {
                // Every t-node (one per unary pattern copy) derives c=1.
                for nodes in &node_of {
                    assert!(eq.deduces_const((nodes[0], c), VId::of(1i64)));
                }
            }
            ChaseOutcome::Conflict(c) => panic!("unexpected conflict: {c}"),
            ChaseOutcome::Interrupted(i) => panic!("unexpected interrupt: {i}"),
        }
        // The chain needs multiple rounds — the naive overhead the paper
        // measures.
        assert!(stats.rounds >= 3, "rounds = {}", stats.rounds);
        assert!(stats.premise_evals > stats.matches_enumerated);
    }

    #[test]
    fn chase_detects_conflicts() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary(
                &mut vocab,
                "zero",
                vec![],
                vec![Literal::eq_const(x, a, 0i64)],
            ),
            unary(
                &mut vocab,
                "one",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, _) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        assert!(matches!(outcome, ChaseOutcome::Conflict(_)));
    }

    #[test]
    fn empty_sigma_fixpoints_immediately() {
        let sigma = GfdSet::new();
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, stats) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        assert!(matches!(outcome, ChaseOutcome::Fixpoint(_)));
        assert_eq!(stats.rounds, 1);
    }

    /// The scheduler port must not change what the chase derives: every
    /// worker count, dispatch mode, and a TTL of zero (forced splitting
    /// with tiny batches) reach the same fixpoint as the sequential scan.
    #[test]
    fn scan_parallelism_is_answer_invariant() {
        let mut vocab = Vocab::new();
        let c = vocab.attr("c");
        let sigma = chain_sigma(&mut vocab);
        let (canon, node_of) = CanonicalGraph::for_sigma(&sigma);
        for p in [1usize, 2, 8] {
            for dispatch in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
                let cfg = ChaseConfig {
                    workers: p,
                    ttl: Duration::ZERO,
                    batch: 1,
                    dispatch,
                    ..ChaseConfig::default()
                };
                let (outcome, stats, metrics) =
                    chase_to_fixpoint_with_config(&sigma, &canon, EqRel::new(), &cfg);
                match outcome {
                    ChaseOutcome::Fixpoint(mut eq) => {
                        for nodes in &node_of {
                            assert!(
                                eq.deduces_const((nodes[0], c), VId::of(1i64)),
                                "p={p} {dispatch:?}"
                            );
                        }
                    }
                    ChaseOutcome::Conflict(e) => panic!("p={p} {dispatch:?}: {e}"),
                    ChaseOutcome::Interrupted(i) => panic!("p={p} {dispatch:?}: {i}"),
                }
                assert!(stats.rounds >= 3);
                assert_eq!(metrics.workers, p);
                assert!(metrics.units_dispatched >= metrics.units_generated as u64);
            }
        }
    }

    /// Tracing on: the run's merged trace carries per-rule scan spans
    /// from the workers and round/apply phase spans from the control
    /// track, one `ChaseRound` per round. Tracing off (the default):
    /// nothing is recorded.
    #[test]
    fn tracing_records_rule_and_phase_spans() {
        let mut vocab = Vocab::new();
        let sigma = chain_sigma(&mut vocab);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let cfg = ChaseConfig {
            trace: TraceSpec::enabled(),
            ..ChaseConfig::with_workers(2)
        };
        let (outcome, stats, metrics) =
            chase_to_fixpoint_with_config(&sigma, &canon, EqRel::new(), &cfg);
        assert!(matches!(outcome, ChaseOutcome::Fixpoint(_)));
        let count =
            |k: EventKind| metrics.trace.events.iter().filter(|e| e.kind == k).count() as u64;
        assert!(count(EventKind::RuleEval) > 0, "no scan spans recorded");
        assert_eq!(count(EventKind::ChaseRound), stats.rounds);
        assert_eq!(count(EventKind::ApplyCommit), stats.rounds);
        // Control spans carry the control worker id; scan spans do not.
        for e in &metrics.trace.events {
            match e.kind {
                EventKind::ChaseRound | EventKind::ApplyPlan | EventKind::ApplyCommit => {
                    assert_eq!(e.worker, CONTROL_WORKER, "{:?}", e.kind);
                }
                EventKind::RuleEval => assert_ne!(e.worker, CONTROL_WORKER),
                _ => {}
            }
        }

        let (_, _, quiet) =
            chase_to_fixpoint_with_config(&sigma, &canon, EqRel::new(), &ChaseConfig::default());
        assert!(quiet.trace.is_empty(), "default config must not trace");
    }

    #[test]
    fn conflicts_survive_the_parallel_scan() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary(
                &mut vocab,
                "zero",
                vec![],
                vec![Literal::eq_const(x, a, 0i64)],
            ),
            unary(
                &mut vocab,
                "one",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        for p in [2usize, 4] {
            let cfg = ChaseConfig::with_workers(p);
            let (outcome, _, metrics) =
                chase_to_fixpoint_with_config(&sigma, &canon, EqRel::new(), &cfg);
            assert!(matches!(outcome, ChaseOutcome::Conflict(_)), "p={p}");
            assert!(metrics.early_terminated);
        }
    }
}
