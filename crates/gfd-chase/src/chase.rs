//! A deliberately *naive* chase engine over canonical graphs.
//!
//! This is the baseline the paper compares against (`ParImpRDF`, following
//! Hellings et al.'s chase for RDF FDs): a round-based fixpoint that
//! re-enumerates every match of every rule each round, with **no**
//! dependency ordering, **no** inverted pending index, and **no** early
//! consequence cut inside a round. Same answers as `SeqSat`/`SeqImp`,
//! strictly more work — which is exactly the point of the comparison in
//! Fig. 5 and Fig. 6(f).

use gfd_core::{eval_premise, CanonicalGraph, Conflict, EqRel, GfdSet, Operand, PremiseStatus};
use gfd_graph::NodeId;
use gfd_match::{find_all_matches, Match};

/// Counters reported by the chase.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaseStats {
    /// Fixpoint rounds executed.
    pub rounds: u64,
    /// Premise evaluations across all rounds (the re-scanning overhead).
    pub premise_evals: u64,
    /// Matches enumerated (counted once; match lists are cached per rule).
    pub matches_enumerated: u64,
}

/// Outcome of chasing Σ over a canonical graph.
pub enum ChaseOutcome {
    /// Fixpoint reached without conflict; the final relation is returned.
    Fixpoint(EqRel),
    /// Two distinct constants were forced onto one class.
    Conflict(Conflict),
}

/// Apply the consequence of `gfd` at `m`; returns whether anything changed.
fn apply_consequence(eq: &mut EqRel, gfd: &gfd_core::Gfd, m: &[NodeId]) -> Result<bool, Conflict> {
    let mut changed = false;
    for lit in &gfd.consequence {
        let k1 = (m[lit.var.index()], lit.attr);
        match &lit.rhs {
            Operand::Const(c) => {
                changed |= eq.bind(k1, c.clone())?.changed;
            }
            Operand::Attr(v2, a2) => {
                let k2 = (m[v2.index()], *a2);
                changed |= eq.merge(k1, k2)?.changed;
            }
        }
    }
    Ok(changed)
}

/// Chase Σ over `canon` starting from `eq0` until fixpoint or conflict.
///
/// Match lists are enumerated once per rule and cached (the graph topology
/// never changes); every round re-evaluates every premise — the naive part.
pub fn chase_to_fixpoint(
    sigma: &GfdSet,
    canon: &CanonicalGraph,
    eq0: EqRel,
) -> (ChaseOutcome, ChaseStats) {
    let mut stats = ChaseStats::default();
    let mut eq = eq0;

    // Enumerate all matches up front (no pivoting, no pruning: naive).
    let mut all_matches: Vec<Vec<Match>> = Vec::with_capacity(sigma.len());
    for (_, gfd) in sigma.iter() {
        let ms = find_all_matches(&canon.graph, &canon.index, &gfd.pattern);
        stats.matches_enumerated += ms.len() as u64;
        all_matches.push(ms);
    }

    loop {
        stats.rounds += 1;
        let mut changed = false;
        for (id, gfd) in sigma.iter() {
            for m in &all_matches[id.index()] {
                stats.premise_evals += 1;
                if let PremiseStatus::Satisfied = eval_premise(&mut eq, gfd, m) {
                    match apply_consequence(&mut eq, gfd, m) {
                        Ok(c) => changed |= c,
                        Err(e) => return (ChaseOutcome::Conflict(e.with_gfd(id)), stats),
                    }
                }
            }
        }
        if !changed {
            return (ChaseOutcome::Fixpoint(eq), stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Gfd, Literal};
    use gfd_graph::{Pattern, Value, VarId, Vocab};

    fn unary(vocab: &mut Vocab, name: &str, pre: Vec<Literal>, post: Vec<Literal>) -> Gfd {
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "x");
        Gfd::new(name, p, pre, post)
    }

    #[test]
    fn chase_derives_chains_across_rounds() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let x = VarId::new(0);
        // Deliberately ordered so each round unlocks the next rule.
        let sigma = GfdSet::from_vec(vec![
            unary(
                &mut vocab,
                "b_to_c",
                vec![Literal::eq_const(x, b, 1i64)],
                vec![Literal::eq_const(x, c, 1i64)],
            ),
            unary(
                &mut vocab,
                "a_to_b",
                vec![Literal::eq_const(x, a, 1i64)],
                vec![Literal::eq_const(x, b, 1i64)],
            ),
            unary(
                &mut vocab,
                "seed",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let (canon, node_of) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, stats) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        match outcome {
            ChaseOutcome::Fixpoint(mut eq) => {
                // Every t-node (one per unary pattern copy) derives c=1.
                for nodes in &node_of {
                    assert!(eq.deduces_const((nodes[0], c), &Value::int(1)));
                }
            }
            ChaseOutcome::Conflict(c) => panic!("unexpected conflict: {c}"),
        }
        // The chain needs multiple rounds — the naive overhead the paper
        // measures.
        assert!(stats.rounds >= 3, "rounds = {}", stats.rounds);
        assert!(stats.premise_evals > stats.matches_enumerated);
    }

    #[test]
    fn chase_detects_conflicts() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary(
                &mut vocab,
                "zero",
                vec![],
                vec![Literal::eq_const(x, a, 0i64)],
            ),
            unary(
                &mut vocab,
                "one",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, _) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        assert!(matches!(outcome, ChaseOutcome::Conflict(_)));
    }

    #[test]
    fn empty_sigma_fixpoints_immediately() {
        let sigma = GfdSet::new();
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (outcome, stats) = chase_to_fixpoint(&sigma, &canon, EqRel::new());
        assert!(matches!(outcome, ChaseOutcome::Fixpoint(_)));
        assert_eq!(stats.rounds, 1);
    }
}
