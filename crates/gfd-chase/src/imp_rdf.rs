//! `ChaseImp` — the chase-based implication baseline (the paper's
//! `ParImpRDF`, following Hellings et al. \[5\] with triple patterns
//! represented as graphs).

use crate::chase::{chase_to_fixpoint_with_config, ChaseConfig, ChaseOutcome, ChaseStats};
use gfd_core::{consequence_deducible, CanonicalGraph, Gfd, GfdSet, ImpOutcome, ImpliedVia};
use gfd_runtime::RunMetrics;
use std::time::{Duration, Instant};

/// Result of a chase-based implication check.
#[derive(Debug)]
pub struct ChaseImpResult {
    /// Implied (with the reason) or not — same answers as `SeqImp`.
    pub outcome: ImpOutcome,
    /// Chase counters.
    pub stats: ChaseStats,
    /// Unified scheduler metrics, accumulated over all chase rounds.
    pub metrics: RunMetrics,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl ChaseImpResult {
    /// True iff `Σ |= ϕ`.
    pub fn is_implied(&self) -> bool {
        matches!(self.outcome, ImpOutcome::Implied(_))
    }
}

/// Check `Σ |= ϕ` by chasing Σ over `G^X_Q` to fixpoint, then testing the
/// consequence. No dependency ordering, no inverted index, no intra-round
/// early exit — the baseline `SeqImp` beats by ~1.4× in Fig. 5.
pub fn chase_imp(sigma: &GfdSet, phi: &Gfd) -> ChaseImpResult {
    chase_imp_with_config(sigma, phi, &ChaseConfig::default())
}

/// [`chase_imp`] with the per-round premise scan dispatched on the
/// shared scheduler.
pub fn chase_imp_with_config(sigma: &GfdSet, phi: &Gfd, config: &ChaseConfig) -> ChaseImpResult {
    let start = Instant::now();
    let stats = ChaseStats::default();

    if phi.consequence.is_empty() {
        return ChaseImpResult {
            outcome: ImpOutcome::Implied(ImpliedVia::Consequence),
            stats,
            metrics: RunMetrics::default(),
            elapsed: start.elapsed(),
        };
    }
    let (canon, eqx) = match CanonicalGraph::for_phi(phi) {
        Ok(pair) => pair,
        Err(_) => {
            return ChaseImpResult {
                outcome: ImpOutcome::Implied(ImpliedVia::PremiseInconsistent),
                stats,
                metrics: RunMetrics::default(),
                elapsed: start.elapsed(),
            }
        }
    };

    let (outcome, stats, metrics) = chase_to_fixpoint_with_config(sigma, &canon, eqx, config);
    let outcome = match outcome {
        ChaseOutcome::Conflict(c) => ImpOutcome::Implied(ImpliedVia::Conflict(c)),
        ChaseOutcome::Fixpoint(mut eq) => {
            if consequence_deducible(&mut eq, phi) {
                ImpOutcome::Implied(ImpliedVia::Consequence)
            } else {
                ImpOutcome::NotImplied
            }
        }
        ChaseOutcome::Interrupted(i) => ImpOutcome::Unknown(i),
    };
    ChaseImpResult {
        outcome,
        stats,
        metrics,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{seq_imp, Literal};
    use gfd_graph::{Pattern, VarId, Vocab};

    /// The Example 8 fixture once more: the chase must agree with SeqImp.
    fn example8() -> (GfdSet, Gfd, Gfd) {
        let mut vocab = Vocab::new();
        let a_lbl = vocab.label("a");
        let b_lbl = vocab.label("b");
        let c_lbl = vocab.label("c");
        let p_lbl = vocab.label("p");
        let attr_a = vocab.attr("A");
        let attr_b = vocab.attr("B");
        let attr_c = vocab.attr("C");

        let mut q8 = Pattern::new();
        let x8 = q8.add_node(a_lbl, "x");
        let y8 = q8.add_node(b_lbl, "y");
        q8.add_edge(x8, p_lbl, y8);
        let mut q9 = Pattern::new();
        let x9 = q9.add_node(a_lbl, "x");
        let y9 = q9.add_node(c_lbl, "y");
        q9.add_edge(x9, p_lbl, y9);
        let mut q7 = Pattern::new();
        let x7 = q7.add_node(a_lbl, "x");
        let y7 = q7.add_node(b_lbl, "y");
        let z7 = q7.add_node(c_lbl, "z");
        let w7 = q7.add_node(c_lbl, "w");
        q7.add_edge(x7, p_lbl, y7);
        q7.add_edge(x7, p_lbl, z7);
        q7.add_edge(x7, p_lbl, w7);

        let phi11 = Gfd::new(
            "phi11",
            q8,
            vec![],
            vec![Literal::eq_const(x8, attr_a, 1i64)],
        );
        let phi12 = Gfd::new(
            "phi12",
            q9,
            vec![
                Literal::eq_const(x9, attr_a, 1i64),
                Literal::eq_const(y9, attr_b, 2i64),
            ],
            vec![Literal::eq_const(y9, attr_c, 2i64)],
        );
        let phi13 = Gfd::new(
            "phi13",
            q7.clone(),
            vec![Literal::eq_const(VarId::new(2), attr_b, 2i64)],
            vec![Literal::eq_const(VarId::new(2), attr_c, 2i64)],
        );
        let phi14 = Gfd::new(
            "phi14",
            q7,
            vec![Literal::eq_const(VarId::new(0), attr_a, 0i64)],
            vec![Literal::eq_const(VarId::new(2), attr_c, 2i64)],
        );
        (GfdSet::from_vec(vec![phi11, phi12]), phi13, phi14)
    }

    #[test]
    fn agrees_with_seq_imp_on_example8() {
        let (sigma, phi13, phi14) = example8();
        assert_eq!(
            chase_imp(&sigma, &phi13).is_implied(),
            seq_imp(&sigma, &phi13).is_implied()
        );
        assert_eq!(
            chase_imp(&sigma, &phi14).is_implied(),
            seq_imp(&sigma, &phi14).is_implied()
        );
        assert!(chase_imp(&sigma, &phi13).is_implied());
    }

    #[test]
    fn not_implied_cases_agree() {
        let (sigma, phi13, _) = example8();
        let smaller = GfdSet::from_vec(vec![sigma.as_slice()[0].clone()]);
        assert!(!chase_imp(&smaller, &phi13).is_implied());
        assert!(!seq_imp(&smaller, &phi13).is_implied());
    }

    #[test]
    fn trivial_cases() {
        let (sigma, _, _) = example8();
        let mut vocab = Vocab::new();
        let mut q = Pattern::new();
        let x = q.add_node(vocab.label("a"), "x");
        let a = vocab.attr("A");
        let trivial = Gfd::new("t", q.clone(), vec![], vec![]);
        assert!(chase_imp(&sigma, &trivial).is_implied());
        let inconsistent = Gfd::new(
            "i",
            q,
            vec![Literal::eq_const(x, a, 1i64), Literal::eq_const(x, a, 2i64)],
            vec![Literal::eq_const(x, a, 3i64)],
        );
        assert!(matches!(
            chase_imp(&sigma, &inconsistent).outcome,
            ImpOutcome::Implied(ImpliedVia::PremiseInconsistent)
        ));
    }
}
