//! Minimal repair suggestions for detected violations.
//!
//! The paper motivates GFD reasoning as a validator for "data quality
//! rules" used in rule-based cleaning. Given a violation (a match whose
//! premise holds but whose consequence fails), the minimal ways to restore
//! consistency are:
//!
//! 1. **bind** — set the failing attribute to the required value
//!    (constant literals, or attribute literals with one side present);
//! 2. **equalize** — pick either side of a failing `x.A = y.B` literal
//!    when both sides exist but disagree;
//! 3. **break the match** — for denial GFDs (`… → false`) no attribute
//!    assignment can help; the only repair is deleting a pattern edge of
//!    the match.
//!
//! These are *suggestions*: chasing repairs to a global fixpoint is a
//! separate (and much harder) problem the paper leaves to cleaning systems.

use crate::report::ViolationRecord;
use gfd_core::{Consequence, DepSet, GenerateConsequence, Operand};
use gfd_graph::{AttrId, Graph, LabelId, NodeId, ValueId, Vocab};

/// One suggested fix.
#[derive(Clone, Debug, PartialEq)]
pub struct Repair {
    /// What to do.
    pub kind: RepairKind,
    /// Human-readable rendering (stable across kinds).
    pub description: String,
}

/// An endpoint of a generated edge or attribute in a
/// [`RepairKind::CreateSubgraph`]: either a node that already exists in
/// the graph or the `i`-th node the repair itself creates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairNode {
    /// An existing graph node (a shared variable's binding).
    Existing(NodeId),
    /// The `i`-th fresh node of the repair's `nodes` list.
    Fresh(usize),
}

/// The kinds of minimal repair.
#[derive(Clone, Debug, PartialEq)]
pub enum RepairKind {
    /// Set `node.attr = value`.
    SetAttr {
        /// Node to update.
        node: NodeId,
        /// Attribute to set.
        attr: AttrId,
        /// Required value (interned).
        value: ValueId,
    },
    /// Delete the edge `src --label--> dst` (breaks the pattern match).
    DeleteEdge {
        /// Edge source.
        src: NodeId,
        /// Edge label.
        label: LabelId,
        /// Edge target.
        dst: NodeId,
    },
    /// Create the missing target subgraph of a generating dependency:
    /// the fresh nodes, the generated edges, and every attribute
    /// assignment that resolves to a concrete value on the current data.
    CreateSubgraph {
        /// Labels of the fresh nodes to create, in order.
        nodes: Vec<LabelId>,
        /// Generated edges over existing/fresh endpoints.
        edges: Vec<(RepairNode, LabelId, RepairNode)>,
        /// Concrete attribute writes on existing/fresh endpoints.
        attrs: Vec<(RepairNode, AttrId, ValueId)>,
    },
}

/// Suggest minimal repairs for one violation.
pub fn suggest_repairs(
    graph: &Graph,
    sigma: &DepSet,
    violation: &ViolationRecord,
    vocab: &Vocab,
) -> Vec<Repair> {
    let dep = sigma.get(violation.gfd);
    let mut out = Vec::new();

    if dep.is_denial() {
        // No attribute assignment can satisfy `false`: break the match.
        for pe in dep.pattern.edges() {
            let src = violation.m[pe.src.index()];
            let dst = violation.m[pe.dst.index()];
            out.push(Repair {
                kind: RepairKind::DeleteEdge {
                    src,
                    label: pe.label,
                    dst,
                },
                description: format!(
                    "delete edge n{} --{}--> n{}",
                    src.index(),
                    vocab.label_name(pe.label),
                    dst.index(),
                ),
            });
        }
        return out;
    }

    let lits = match &dep.consequence {
        Consequence::Literals(lits) => lits,
        Consequence::Generate(gen) => {
            out.push(create_subgraph_repair(graph, gen, &violation.m, vocab));
            return out;
        }
    };

    for &i in &violation.failed {
        let lit = &lits[i];
        let node = violation.m[lit.var.index()];
        match &lit.rhs {
            Operand::Const(c) => out.push(Repair {
                kind: RepairKind::SetAttr {
                    node,
                    attr: lit.attr,
                    value: *c,
                },
                description: format!(
                    "set n{}.{} = {c:?}",
                    node.index(),
                    vocab.attr_name(lit.attr),
                ),
            }),
            Operand::Attr(v2, a2) => {
                let other = violation.m[v2.index()];
                let left = graph.attr(node, lit.attr);
                let right = graph.attr(other, *a2);
                match (left, right) {
                    (_, Some(rv)) => out.push(Repair {
                        kind: RepairKind::SetAttr {
                            node,
                            attr: lit.attr,
                            value: rv,
                        },
                        description: format!(
                            "set n{}.{} = {rv:?} (copied from n{}.{})",
                            node.index(),
                            vocab.attr_name(lit.attr),
                            other.index(),
                            vocab.attr_name(*a2),
                        ),
                    }),
                    (Some(lv), None) => out.push(Repair {
                        kind: RepairKind::SetAttr {
                            node: other,
                            attr: *a2,
                            value: lv,
                        },
                        description: format!(
                            "set n{}.{} = {lv:?} (copied from n{}.{})",
                            other.index(),
                            vocab.attr_name(*a2),
                            node.index(),
                            vocab.attr_name(lit.attr),
                        ),
                    }),
                    (None, None) => {
                        // Both sides missing: any shared fresh value works;
                        // suggest a null-ish placeholder on both.
                        out.push(Repair {
                            kind: RepairKind::SetAttr {
                                node,
                                attr: lit.attr,
                                value: ValueId::of(""),
                            },
                            description: format!(
                                "create n{}.{} and n{}.{} with a shared value",
                                node.index(),
                                vocab.attr_name(lit.attr),
                                other.index(),
                                vocab.attr_name(*a2),
                            ),
                        });
                    }
                }
                // When both sides exist, overwriting the *other* side is the
                // symmetric alternative.
                if let (Some(lv), Some(_)) = (left, right) {
                    out.push(Repair {
                        kind: RepairKind::SetAttr {
                            node: other,
                            attr: *a2,
                            value: lv,
                        },
                        description: format!(
                            "set n{}.{} = {lv:?} (copied from n{}.{})",
                            other.index(),
                            vocab.attr_name(*a2),
                            node.index(),
                            vocab.attr_name(lit.attr),
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Build the [`RepairKind::CreateSubgraph`] repair for an unrealized
/// generating consequence at match `m`: materialize exactly the target
/// the rule asserts. Attribute assignments whose right-hand side cannot
/// be resolved to a concrete value (a variable literal over attributes
/// absent from the data, or an assignment between two fresh nodes) are
/// noted in the description but omitted from the concrete writes.
fn create_subgraph_repair(
    graph: &Graph,
    gen: &GenerateConsequence,
    m: &[NodeId],
    vocab: &Vocab,
) -> Repair {
    let endpoint = |v: gfd_graph::VarId| -> RepairNode {
        if v.index() < gen.shared {
            RepairNode::Existing(m[v.index()])
        } else {
            RepairNode::Fresh(v.index() - gen.shared)
        }
    };
    let show = |e: RepairNode| -> String {
        match e {
            RepairNode::Existing(n) => format!("n{}", n.index()),
            RepairNode::Fresh(i) => gen
                .pattern
                .var_name(gfd_graph::VarId::new(gen.shared + i))
                .to_string(),
        }
    };
    let nodes: Vec<LabelId> = gen.fresh_vars().map(|v| gen.pattern.label(v)).collect();
    let edges: Vec<(RepairNode, LabelId, RepairNode)> = gen
        .pattern
        .edges()
        .iter()
        .map(|e| (endpoint(e.src), e.label, endpoint(e.dst)))
        .collect();
    let mut attrs = Vec::new();
    let mut unresolved = Vec::new();
    for lit in &gen.attrs {
        let target = endpoint(lit.var);
        let value = match &lit.rhs {
            Operand::Const(c) => Some(*c),
            Operand::Attr(v2, _) if v2.index() >= gen.shared => None,
            Operand::Attr(v2, a2) => graph.attr(m[v2.index()], *a2),
        };
        match value {
            Some(v) => attrs.push((target, lit.attr, v)),
            None => unresolved.push(lit.display(&gen.pattern, vocab).to_string()),
        }
    }

    let mut desc = String::from("create subgraph:");
    for (i, v) in gen.fresh_vars().enumerate() {
        if i > 0 {
            desc.push(',');
        }
        desc.push_str(&format!(
            " node {}: {}",
            gen.pattern.var_name(v),
            vocab.label_name(gen.pattern.label(v))
        ));
    }
    for (src, label, dst) in &edges {
        desc.push_str(&format!(
            ", edge {} -{}-> {}",
            show(*src),
            vocab.label_name(*label),
            show(*dst)
        ));
    }
    for (target, attr, value) in &attrs {
        desc.push_str(&format!(
            ", set {}.{} = {value:?}",
            show(*target),
            vocab.attr_name(*attr)
        ));
    }
    for u in &unresolved {
        desc.push_str(&format!(", then satisfy {u}"));
    }
    Repair {
        kind: RepairKind::CreateSubgraph {
            nodes,
            edges,
            attrs,
        },
        description: desc,
    }
}

/// Apply a repair to the graph (edge deletion rebuilds the graph without
/// the edge; attribute repairs are in-place).
pub fn apply_repair(graph: &mut Graph, repair: &Repair) {
    match &repair.kind {
        RepairKind::SetAttr { node, attr, value } => {
            graph.set_attr_id(*node, *attr, *value);
        }
        RepairKind::CreateSubgraph {
            nodes,
            edges,
            attrs,
        } => {
            let fresh: Vec<NodeId> = nodes.iter().map(|&l| graph.add_node(l)).collect();
            let resolve = |e: RepairNode| -> NodeId {
                match e {
                    RepairNode::Existing(n) => n,
                    RepairNode::Fresh(i) => fresh[i],
                }
            };
            for &(src, label, dst) in edges {
                graph.add_edge(resolve(src), label, resolve(dst));
            }
            for &(target, attr, value) in attrs {
                graph.set_attr_id(resolve(target), attr, value);
            }
        }
        RepairKind::DeleteEdge { src, label, dst } => {
            let mut rebuilt = Graph::with_capacity(graph.node_count());
            for v in graph.nodes() {
                rebuilt.add_node(graph.label(v));
            }
            for (s, l, d) in graph.edges() {
                if s == *src && l == *label && d == *dst {
                    continue;
                }
                rebuilt.add_edge(s, l, d);
            }
            for v in graph.nodes() {
                for &(a, val) in graph.attrs(v) {
                    rebuilt.set_attr_id(v, a, val);
                }
            }
            *graph = rebuilt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{detect_deps as detect, DetectConfig};
    use gfd_core::{Dependency, Gfd, GfdSet, Literal};
    use gfd_graph::{Pattern, Value};

    fn vocab_with(f: impl FnOnce(&mut Vocab) -> (Graph, GfdSet)) -> (Graph, DepSet, Vocab) {
        let mut vocab = Vocab::new();
        let (g, s) = f(&mut vocab);
        (g, DepSet::from_gfds(s), vocab)
    }

    #[test]
    fn constant_violation_suggests_set_attr() {
        let (g, sigma, vocab) = vocab_with(|v| {
            let t = v.label("t");
            let a = v.attr("a");
            let mut p = Pattern::new();
            let x = p.add_node(t, "x");
            let gfd = Gfd::new("g", p, vec![], vec![Literal::eq_const(x, a, 1i64)]);
            let mut g = Graph::new();
            let n = g.add_node(t);
            g.set_attr(n, a, Value::int(9));
            (g, GfdSet::from_vec(vec![gfd]))
        });
        let report = detect(&g, &sigma, &DetectConfig::with_workers(1));
        assert_eq!(report.violations.len(), 1);
        let repairs = suggest_repairs(&g, &sigma, &report.violations[0], &vocab);
        assert_eq!(repairs.len(), 1);
        assert!(matches!(
            &repairs[0].kind,
            RepairKind::SetAttr { value, .. } if *value == ValueId::of(1i64)
        ));
        // Applying the repair cleans the graph.
        let mut fixed = g.clone();
        apply_repair(&mut fixed, &repairs[0]);
        assert!(detect(&fixed, &sigma, &DetectConfig::with_workers(1)).is_clean());
    }

    #[test]
    fn attr_violation_suggests_both_directions() {
        let (g, sigma, vocab) = vocab_with(|v| {
            let t = v.label("t");
            let e = v.label("e");
            let a = v.attr("a");
            let mut p = Pattern::new();
            let x = p.add_node(t, "x");
            let y = p.add_node(t, "y");
            p.add_edge(x, e, y);
            let gfd = Gfd::new("g", p, vec![], vec![Literal::eq_attr(x, a, y, a)]);
            let mut g = Graph::new();
            let n1 = g.add_node(t);
            let n2 = g.add_node(t);
            g.add_edge(n1, e, n2);
            g.set_attr(n1, a, Value::int(1));
            g.set_attr(n2, a, Value::int(2));
            (g, GfdSet::from_vec(vec![gfd]))
        });
        let report = detect(&g, &sigma, &DetectConfig::with_workers(1));
        assert_eq!(report.violations.len(), 1);
        let repairs = suggest_repairs(&g, &sigma, &report.violations[0], &vocab);
        // Copy right-to-left and left-to-right.
        assert_eq!(repairs.len(), 2);
        for r in &repairs {
            let mut fixed = g.clone();
            apply_repair(&mut fixed, r);
            assert!(
                detect(&fixed, &sigma, &DetectConfig::with_workers(1)).is_clean(),
                "repair {} did not clean the graph",
                r.description,
            );
        }
    }

    #[test]
    fn denial_violation_suggests_edge_deletions() {
        let (g, sigma, vocab) = vocab_with(|v| {
            let place = v.label("place");
            let locate = v.label("locateIn");
            let part = v.label("partOf");
            let mut q = Pattern::new();
            let x = q.add_node(place, "x");
            let y = q.add_node(place, "y");
            q.add_edge(x, locate, y);
            q.add_edge(y, part, x);
            let gfd = Gfd::with_false_consequence("phi1", q, vec![], v);
            let mut g = Graph::new();
            let airport = g.add_node(place);
            let city = g.add_node(place);
            g.add_edge(airport, locate, city);
            g.add_edge(city, part, airport);
            (g, GfdSet::from_vec(vec![gfd]))
        });
        let report = detect(&g, &sigma, &DetectConfig::with_workers(1));
        assert_eq!(report.violations.len(), 1);
        let repairs = suggest_repairs(&g, &sigma, &report.violations[0], &vocab);
        // One deletion per pattern edge.
        assert_eq!(repairs.len(), 2);
        for r in &repairs {
            assert!(matches!(r.kind, RepairKind::DeleteEdge { .. }));
            let mut fixed = g.clone();
            apply_repair(&mut fixed, r);
            assert!(
                detect(&fixed, &sigma, &DetectConfig::with_workers(1)).is_clean(),
                "repair {} did not clean the graph",
                r.description,
            );
        }
    }

    #[test]
    fn generate_violation_suggests_create_subgraph() {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let meeting = vocab.label("meeting");
        let attends = vocab.label("attends");
        let city = vocab.attr("city");
        let mut p = Pattern::new();
        let x = p.add_node(person, "x");
        let mut gen = GenerateConsequence::over(&p);
        let m = gen.add_fresh(meeting, "m");
        gen.add_edge(x, attends, m);
        gen.push_attr(Literal::eq_attr(m, city, x, city));
        let dep = Dependency::new("meetup", p, vec![], gfd_core::Consequence::Generate(gen));
        let sigma = DepSet::from_vec(vec![dep]);
        let mut g = Graph::new();
        let n = g.add_node(person);
        g.set_attr(n, city, Value::str("nbo"));

        let report = detect(&g, &sigma, &DetectConfig::with_workers(1));
        assert_eq!(report.violations.len(), 1);
        let repairs = suggest_repairs(&g, &sigma, &report.violations[0], &vocab);
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].description.contains("create subgraph"));
        assert!(
            repairs[0].description.contains("node m: meeting"),
            "{}",
            repairs[0].description
        );
        // Applying the repair realizes the target: the graph is clean.
        let mut fixed = g.clone();
        apply_repair(&mut fixed, &repairs[0]);
        assert_eq!(fixed.node_count(), 2);
        assert!(
            detect(&fixed, &sigma, &DetectConfig::with_workers(1)).is_clean(),
            "materializing the target must clean the graph"
        );
    }

    #[test]
    fn missing_both_sides_suggests_shared_value() {
        let (g, sigma, vocab) = vocab_with(|v| {
            let t = v.label("t");
            let a = v.attr("a");
            let b = v.attr("b");
            let c = v.attr("c");
            let mut p = Pattern::new();
            let x = p.add_node(t, "x");
            let gfd = Gfd::new(
                "g",
                p,
                vec![Literal::eq_const(x, c, 1i64)],
                vec![Literal::eq_attr(x, a, x, b)],
            );
            let mut g = Graph::new();
            let n = g.add_node(t);
            g.set_attr(n, c, Value::int(1));
            (g, GfdSet::from_vec(vec![gfd]))
        });
        let report = detect(&g, &sigma, &DetectConfig::with_workers(1));
        assert_eq!(report.violations.len(), 1);
        let repairs = suggest_repairs(&g, &sigma, &report.violations[0], &vocab);
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].description.contains("shared value"));
    }
}
