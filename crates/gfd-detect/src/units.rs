//! Detection work units: pivot batches and split remainders.
//!
//! A detection unit mirrors the paper's reasoning unit `(Q[z], ϕ)`: one GFD
//! plus a set of candidate pivot nodes in the *data* graph. Units start as
//! contiguous batches of pivot candidates; TTL splitting produces
//! prefix-assignment units exactly like `ParSat`'s Example 6.

use gfd_core::DepSet;
use gfd_graph::{GfdId, MatchIndex, NodeId, VarId};
use gfd_match::MatchPlan;

/// A unit of detection work.
#[derive(Clone, Debug)]
pub enum DetectUnit {
    /// Enumerate matches of the GFD pivoted at each node in the batch.
    Pivots {
        /// The rule to check.
        gfd: GfdId,
        /// Candidate pivot nodes (all carry the pivot variable's label).
        batch: Vec<NodeId>,
    },
    /// Resume a split search from a fixed assignment of the leading plan
    /// positions.
    Prefix {
        /// The rule to check.
        gfd: GfdId,
        /// Assignment of plan positions `0..len`.
        prefix: Vec<NodeId>,
    },
}

impl DetectUnit {
    /// Which GFD this unit checks.
    pub fn gfd(&self) -> GfdId {
        match self {
            DetectUnit::Pivots { gfd, .. } | DetectUnit::Prefix { gfd, .. } => *gfd,
        }
    }
}

/// Per-rule matching context shared by all workers.
pub struct RulePlans {
    /// Pivot variable per rule.
    pub pivots: Vec<VarId>,
    /// Pivoted match plan per rule.
    pub plans: Vec<MatchPlan>,
}

impl RulePlans {
    /// Choose pivots (most selective label, highest degree) and build
    /// pivoted plans for every rule against the data-graph index. Any
    /// [`MatchIndex`] serves: the incremental engine re-plans against its
    /// `DeltaIndex` after each batch, so pivots and variable orders track
    /// the overlay-adjusted frequencies rather than the frozen base.
    pub fn build<I: MatchIndex>(sigma: &DepSet, index: &I) -> Self {
        let mut pivots = Vec::with_capacity(sigma.len());
        let mut plans = Vec::with_capacity(sigma.len());
        for (_, dep) in sigma.iter() {
            let pivot = gfd_core::choose_pivot(&dep.pattern, index);
            pivots.push(pivot);
            plans.push(MatchPlan::build(&dep.pattern, Some(pivot), Some(index)));
        }
        RulePlans { pivots, plans }
    }
}

/// Build the initial unit queue: for every rule, the pivot candidates are
/// chunked into batches of at most `batch_size`.
///
/// Rules are interleaved round-robin so that early termination (violation
/// budget) sees a sample of every rule rather than exhausting rule 0 first.
pub fn initial_units<I: MatchIndex>(
    sigma: &DepSet,
    index: &I,
    plans: &RulePlans,
    batch_size: usize,
) -> Vec<DetectUnit> {
    let per_rule = sigma
        .iter()
        .map(|(id, dep)| {
            let pivot = plans.pivots[id.index()];
            (id, index.candidates(dep.pattern.label(pivot)).to_vec())
        })
        .collect();
    units_for_pivots(per_rule, batch_size)
}

/// Build a unit queue from explicit per-rule pivot lists, batched and
/// round-robin interleaved like [`initial_units`]. The incremental
/// engine feeds this the dirty-frontier pivots of each rule.
pub fn units_for_pivots(
    rule_pivots: Vec<(GfdId, Vec<NodeId>)>,
    batch_size: usize,
) -> Vec<DetectUnit> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut per_rule: Vec<std::vec::IntoIter<DetectUnit>> = Vec::with_capacity(rule_pivots.len());
    for (id, candidates) in rule_pivots {
        let batches: Vec<DetectUnit> = candidates
            .chunks(batch_size)
            .map(|chunk| DetectUnit::Pivots {
                gfd: id,
                batch: chunk.to_vec(),
            })
            .collect();
        per_rule.push(batches.into_iter());
    }
    // Round-robin interleave.
    let mut out = Vec::new();
    loop {
        let mut emitted = false;
        for queue in &mut per_rule {
            if let Some(u) = queue.next() {
                out.push(u);
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Gfd, Literal};
    use gfd_graph::{Graph, LabelIndex, Pattern, Vocab};

    fn two_rule_setup() -> (Graph, DepSet, Vocab) {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let u = vocab.label("u");
        let a = vocab.attr("a");
        let mut p1 = Pattern::new();
        let x1 = p1.add_node(t, "x");
        let g1 = Gfd::new("g1", p1, vec![], vec![Literal::eq_const(x1, a, 1i64)]);
        let mut p2 = Pattern::new();
        let x2 = p2.add_node(u, "x");
        let g2 = Gfd::new("g2", p2, vec![], vec![Literal::eq_const(x2, a, 1i64)]);
        let mut g = Graph::new();
        for _ in 0..5 {
            g.add_node(t);
        }
        for _ in 0..3 {
            g.add_node(u);
        }
        (
            g,
            DepSet::from_gfds(gfd_core::GfdSet::from_vec(vec![g1, g2])),
            vocab,
        )
    }

    #[test]
    fn batches_cover_all_candidates() {
        let (g, sigma, _) = two_rule_setup();
        let index = LabelIndex::build(&g);
        let plans = RulePlans::build(&sigma, &index);
        let units = initial_units(&sigma, &index, &plans, 2);
        // Rule 0: 5 candidates → 3 batches; rule 1: 3 candidates → 2 batches.
        assert_eq!(units.len(), 5);
        let mut seen = [0usize; 2];
        for u in &units {
            if let DetectUnit::Pivots { gfd, batch } = u {
                assert!(batch.len() <= 2);
                seen[gfd.index()] += batch.len();
            }
        }
        assert_eq!(seen, [5, 3]);
    }

    #[test]
    fn units_are_interleaved_round_robin() {
        let (g, sigma, _) = two_rule_setup();
        let index = LabelIndex::build(&g);
        let plans = RulePlans::build(&sigma, &index);
        let units = initial_units(&sigma, &index, &plans, 2);
        // First two units must come from distinct rules.
        assert_ne!(units[0].gfd(), units[1].gfd());
    }

    #[test]
    fn single_batch_when_batch_size_large() {
        let (g, sigma, _) = two_rule_setup();
        let index = LabelIndex::build(&g);
        let plans = RulePlans::build(&sigma, &index);
        let units = initial_units(&sigma, &index, &plans, 100);
        assert_eq!(units.len(), 2);
    }
}
