//! Parallel GFD violation detection on data graphs.
//!
//! The paper's introduction motivates GFD reasoning with *inconsistency
//! detection*: GFDs mined from a knowledge base or social graph catch
//! semantic errors (ϕ1–ϕ4 of Example 1) when enforced against the data.
//! `gfd-core::validate` provides the sequential primitive; this crate is
//! the production engine a downstream user would actually run on a graph
//! with millions of nodes:
//!
//! * **pivoted work units** `(ϕ, z)` over the *data* graph — the same data
//!   locality argument as §V, applied to detection instead of reasoning;
//! * the shared `gfd-runtime` **work-stealing scheduler** (the same one
//!   `ParSat`/`ParImp` run on) for dynamic assignment and TTL-based unit
//!   splitting of stragglers;
//! * **early termination** once a configurable violation budget is hit;
//! * structured [`report::DetectionReport`]s with per-rule statistics and
//!   human-readable explanations;
//! * [`repair`] — minimal fix suggestions per violation (the "rule-based
//!   cleaning process" the paper's introduction refers to).

#![warn(missing_docs)]

pub mod detector;
mod proptests;
pub mod repair;
pub mod report;
pub mod units;

pub use detector::{detect, detect_deps, detect_sequential, detect_units, DetectConfig};
pub use gfd_runtime::{DispatchMode, RunMetrics};
pub use repair::{suggest_repairs, Repair, RepairKind, RepairNode};
pub use report::{DetectionReport, RuleStats, ViolationRecord};
pub use units::{initial_units, units_for_pivots, DetectUnit, RulePlans};
