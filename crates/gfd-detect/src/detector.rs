//! The parallel detection engine.
//!
//! Since the scheduler unification, detection is a second [`Task`]
//! implementation on the shared `gfd-runtime` work-stealing scheduler —
//! the same dispatch, TTL straggler splitting, stop-flag early termination
//! and [`RunMetrics`] as the reasoning driver, with detection-specific
//! semantics (premise/consequence evaluation against the *data* graph and
//! a global violation budget) layered on top. The engine no longer owns a
//! private queue/TTL/split loop.

use crate::report::{DetectionReport, RuleStats, ViolationRecord};
use crate::units::{initial_units, DetectUnit, RulePlans};
use gfd_core::validate::literal_holds;
use gfd_core::{Budget, Consequence, DepSet, GfdSet, Interrupt};
use gfd_graph::{Graph, LabelIndex, MatchIndex, NodeId};
use gfd_match::{HomSearch, RunOutcome, SearchLimits};
use gfd_runtime::sched::{run_scheduler_with, Task, WorkerCtx};
use gfd_runtime::{DispatchMode, EventKind, RunMetrics, TraceSpec};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a detection run.
#[derive(Clone, Debug)]
pub struct DetectConfig {
    /// Worker threads (`p` in the paper). 0 means "number of CPUs".
    pub workers: usize,
    /// Straggler threshold: a unit running longer than this is split and
    /// its untried branches are offered to other workers (§V, Example 6).
    pub ttl: Duration,
    /// Stop after this many violations (`usize::MAX` = find all).
    pub max_violations: usize,
    /// Pivot candidates per initial work unit.
    pub batch_size: usize,
    /// How units reach the workers: per-worker deques with stealing
    /// (default) or the centralized-queue baseline.
    pub dispatch: DispatchMode,
    /// Unified resource budget (DESIGN.md §11.2): deadline and unit cap
    /// enforced by the scheduler at unit boundaries. Exhaustion yields a
    /// partial report flagged with [`DetectionReport::interrupted`] — the
    /// violations found so far are real, the sweep just did not finish.
    pub budget: Budget,
    /// Structured tracing (DESIGN.md §13): per-rule eval spans plus the
    /// scheduler's own steal/split/budget events, returned on
    /// `RunMetrics::trace`. Off by default.
    pub trace: TraceSpec,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            workers: 0,
            ttl: Duration::from_millis(100),
            max_violations: usize::MAX,
            batch_size: 1024,
            dispatch: DispatchMode::WorkStealing,
            budget: Budget::unlimited(),
            trace: TraceSpec::disabled(),
        }
    }
}

impl DetectConfig {
    /// A config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        DetectConfig {
            workers,
            ..Default::default()
        }
    }

    /// Attach a unified resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }
}

/// The detection workload run by the shared scheduler. Generic over the
/// [`MatchIndex`] like the matcher itself: the static pipeline passes a
/// [`LabelIndex`], the incremental engine a `gfd_graph::DeltaIndex`.
struct DetectTask<'a, I: MatchIndex> {
    graph: &'a Graph,
    index: &'a I,
    sigma: &'a DepSet,
    plans: &'a RulePlans,
    /// Violations found so far (global budget counter).
    found: AtomicUsize,
    stop: &'a AtomicBool,
    max_violations: usize,
    ttl: Duration,
}

impl<I: MatchIndex> DetectTask<'_, I> {
    fn budget_left(&self) -> bool {
        self.found.load(Ordering::Relaxed) < self.max_violations
    }

    /// Reserve one violation slot; returns false when the budget is spent.
    fn reserve(&self) -> bool {
        let prev = self.found.fetch_add(1, Ordering::Relaxed);
        if prev >= self.max_violations {
            self.found.fetch_sub(1, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
            return false;
        }
        if prev + 1 == self.max_violations {
            self.stop.store(true, Ordering::Relaxed);
        }
        true
    }

    /// Check one match against its rule, recording a violation if the
    /// premise holds on the data but the consequence does not: for
    /// literal consequences some literal fails on the concrete values;
    /// for generating consequences no extension of the match realizes
    /// the target subgraph (the witness of the missing subgraph is the
    /// `(rule, match)` pair itself — the report renders the required
    /// nodes/edges/assignments from it).
    fn check_match(
        &self,
        local: &mut Local,
        gfd_id: gfd_graph::GfdId,
        m: Box<[NodeId]>,
    ) -> ControlFlow<()> {
        let dep = self.sigma.get(gfd_id);
        let stats = &mut local.per_rule[gfd_id.index()];
        stats.matches += 1;
        let premise_ok = dep.premise.iter().all(|l| literal_holds(self.graph, l, &m));
        if !premise_ok {
            return ControlFlow::Continue(());
        }
        stats.premise_hits += 1;
        let failed: Vec<usize> = match &dep.consequence {
            Consequence::Literals(lits) => {
                let failed: Vec<usize> = lits
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !literal_holds(self.graph, l, &m))
                    .map(|(i, _)| i)
                    .collect();
                if failed.is_empty() {
                    return ControlFlow::Continue(());
                }
                failed
            }
            Consequence::Generate(gen) => {
                let realized = gen.realized(self.index, &m, &mut |lit, asn| {
                    literal_holds(self.graph, lit, asn)
                });
                if realized {
                    return ControlFlow::Continue(());
                }
                Vec::new()
            }
        };
        if !self.reserve() {
            return ControlFlow::Break(());
        }
        local.per_rule[gfd_id.index()].violations += 1;
        local.violations.push(ViolationRecord {
            gfd: gfd_id,
            m,
            failed,
        });
        if self.stop.load(Ordering::Relaxed) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    /// Run one pivoted search until exhausted, splitting on TTL expiry.
    fn run_unit_search(
        &self,
        local: &mut Local,
        gfd_id: gfd_graph::GfdId,
        mut search: HomSearch<'_, I>,
        ctx: &WorkerCtx<'_, DetectUnit>,
    ) {
        loop {
            let deadline = Instant::now() + self.ttl;
            let limits = SearchLimits {
                deadline: Some(deadline),
                stop: Some(self.stop),
            };
            let outcome = search.run(|m| self.check_match(local, gfd_id, m), limits);
            match outcome {
                RunOutcome::Exhausted | RunOutcome::Stopped => return,
                RunOutcome::Deadline => {
                    // Straggler: carve off the untried sibling branches and
                    // offer them through the scheduler (an idle worker will
                    // steal them), then keep going locally.
                    let prefixes = search.split_shallowest();
                    if !prefixes.is_empty() {
                        ctx.split(
                            prefixes
                                .into_iter()
                                .map(|prefix| DetectUnit::Prefix {
                                    gfd: gfd_id,
                                    prefix,
                                })
                                .collect(),
                        );
                    }
                }
            }
        }
    }
}

/// Thread-local accumulation, merged after the scheduler joins.
#[derive(Default)]
struct Local {
    violations: Vec<ViolationRecord>,
    per_rule: Vec<RuleStats>,
}

impl Local {
    fn new(rules: usize) -> Self {
        Local {
            violations: Vec::new(),
            per_rule: vec![RuleStats::default(); rules],
        }
    }
}

impl<I: MatchIndex> Task for DetectTask<'_, I> {
    type Unit = DetectUnit;
    type Worker = Local;

    fn worker(&self, _id: usize) -> Local {
        Local::new(self.sigma.len())
    }

    fn run_unit(&self, local: &mut Local, unit: DetectUnit, ctx: &WorkerCtx<'_, DetectUnit>) {
        if self.stop.load(Ordering::Relaxed) || !self.budget_left() {
            self.stop.store(true, Ordering::Relaxed);
            return;
        }
        let gfd_id = unit.gfd();
        let dep = self.sigma.get(gfd_id);
        let plan = &self.plans.plans[gfd_id.index()];
        let span = ctx.trace_start();
        let stats0 = local.per_rule[gfd_id.index()];
        match unit {
            DetectUnit::Pivots { batch, .. } => {
                for z in batch {
                    if self.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let search = HomSearch::new(self.graph, self.index, &dep.pattern, plan)
                        .with_prefix(&[z]);
                    self.run_unit_search(local, gfd_id, search, ctx);
                }
            }
            DetectUnit::Prefix { prefix, .. } => {
                let search =
                    HomSearch::new(self.graph, self.index, &dep.pattern, plan).with_prefix(&prefix);
                self.run_unit_search(local, gfd_id, search, ctx);
            }
        }
        let stats = &local.per_rule[gfd_id.index()];
        ctx.trace_span(
            EventKind::RuleEval,
            gfd_id.index() as u32,
            span,
            stats.matches - stats0.matches,
            stats.violations - stats0.violations,
        );
    }
}

/// Detect violations of a GFD set in `graph` — the literal-only shim
/// over [`detect_deps`], kept so pre-refactor call sites (and behavior)
/// stay byte-identical.
pub fn detect(graph: &Graph, sigma: &GfdSet, config: &DetectConfig) -> DetectionReport {
    detect_deps(graph, &DepSet::from_gfds(sigma.clone()), config)
}

/// Detect violations of a generalized dependency set (GFDs and GGDs,
/// mixed freely) in `graph` on the shared work-stealing scheduler.
pub fn detect_deps(graph: &Graph, sigma: &DepSet, config: &DetectConfig) -> DetectionReport {
    let start = Instant::now();
    let index = LabelIndex::build(graph);
    let plans = RulePlans::build(sigma, &index);
    let units = initial_units(sigma, &index, &plans, config.batch_size);
    let mut report = detect_units(graph, &index, sigma, &plans, units, config);
    // `elapsed` covers the whole run including the freeze and plan
    // build, as it always has; detect_units alone times only dispatch.
    report.metrics.elapsed = start.elapsed();
    report
}

/// Run an explicit unit queue against an explicit index on the shared
/// scheduler — the entry point the incremental engine uses to re-check
/// only the dirty-frontier pivots over a delta-CSR overlay. [`detect`]
/// is the "all pivots, fresh [`LabelIndex`]" instantiation.
pub fn detect_units<I: MatchIndex>(
    graph: &Graph,
    index: &I,
    sigma: &DepSet,
    plans: &RulePlans,
    units: Vec<DetectUnit>,
    config: &DetectConfig,
) -> DetectionReport {
    let start = Instant::now();
    let workers = config.effective_workers();
    let stop = AtomicBool::new(false);
    let task = DetectTask {
        graph,
        index,
        sigma,
        plans,
        found: AtomicUsize::new(0),
        stop: &stop,
        max_violations: config.max_violations,
        ttl: config.ttl,
    };

    let mut metrics = RunMetrics {
        workers,
        units_generated: units.len(),
        ..Default::default()
    };
    let mut opts = config.budget.sched_options();
    opts.trace = config.trace;
    let run = run_scheduler_with(&task, units, workers, config.dispatch, &stop, opts);
    metrics.trace = run.trace;
    metrics.units_dispatched = run.units_executed;
    metrics.units_split = run.units_split;
    metrics.units_stolen = run.units_stolen;
    metrics.worker_busy = run.worker_busy;
    metrics.worker_idle = run.worker_idle;
    metrics.units_panicked = run.units_panicked;
    metrics.units_retried = run.units_retried;
    metrics.elapsed = start.elapsed();
    metrics.deadline_slack_ms = config.budget.deadline_slack_ms();
    let interrupted = Interrupt::from_outcome(&run.outcome);
    merge_report(sigma, run.workers, metrics, config, interrupted)
}

/// Sequential reference detector (one worker, same code path). Used by
/// tests to check the parallel pool finds the identical violation set.
pub fn detect_sequential(graph: &Graph, sigma: &GfdSet, config: &DetectConfig) -> DetectionReport {
    let mut cfg = config.clone();
    cfg.workers = 1;
    detect(graph, sigma, &cfg)
}

fn merge_report(
    sigma: &DepSet,
    locals: Vec<Local>,
    mut metrics: RunMetrics,
    config: &DetectConfig,
    interrupted: Option<Interrupt>,
) -> DetectionReport {
    let mut violations = Vec::new();
    let mut per_rule = vec![RuleStats::default(); sigma.len()];
    for local in locals {
        violations.extend(local.violations);
        for (total, part) in per_rule.iter_mut().zip(&local.per_rule) {
            total.matches += part.matches;
            total.premise_hits += part.premise_hits;
            total.violations += part.violations;
        }
    }
    metrics.matches = per_rule.iter().map(|s| s.matches).sum();
    // Deterministic order regardless of worker interleaving.
    violations.sort_by(|a, b| (a.gfd, &a.m).cmp(&(b.gfd, &b.m)));
    let truncated = violations.len() >= config.max_violations;
    metrics.early_terminated = truncated || interrupted.is_some();
    DetectionReport {
        violations,
        per_rule,
        truncated,
        interrupted,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Gfd, Literal};
    use gfd_graph::{Pattern, Value, Vocab};

    /// A chain graph t0 → t1 → … with alternating attribute values, plus a
    /// rule requiring equal values across each edge: every edge between a
    /// mismatched pair is a violation.
    fn chain_setup(n: usize) -> (Graph, GfdSet, Vocab) {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        let mut g = Graph::new();
        let mut prev = None;
        for i in 0..n {
            let node = g.add_node(t);
            g.set_attr(node, a, Value::int((i % 2) as i64));
            if let Some(p) = prev {
                g.add_edge(p, e, node);
            }
            prev = Some(node);
        }
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        let gfd = Gfd::new(
            "eq-across-edge",
            p,
            vec![],
            vec![Literal::eq_attr(x, a, y, a)],
        );
        (g, GfdSet::from_vec(vec![gfd]), vocab)
    }

    #[test]
    fn finds_every_violation_in_a_chain() {
        let (g, sigma, _) = chain_setup(50);
        let report = detect(&g, &sigma, &DetectConfig::with_workers(4));
        // All 49 edges connect a 0-node to a 1-node.
        assert_eq!(report.violations.len(), 49);
        assert!(!report.truncated);
        assert_eq!(report.per_rule[0].matches, 49);
        assert_eq!(report.per_rule[0].premise_hits, 49);
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let (g, sigma, _) = chain_setup(64);
        let seq = detect_sequential(&g, &sigma, &DetectConfig::default());
        let par = detect(&g, &sigma, &DetectConfig::with_workers(8));
        let key = |r: &ViolationRecord| (r.gfd, r.m.clone());
        let s: Vec<_> = seq.violations.iter().map(key).collect();
        let p: Vec<_> = par.violations.iter().map(key).collect();
        assert_eq!(s, p);
    }

    #[test]
    fn dispatch_modes_agree() {
        let (g, sigma, _) = chain_setup(64);
        let stealing = detect(&g, &sigma, &DetectConfig::with_workers(4));
        let coordinator = detect(
            &g,
            &sigma,
            &DetectConfig {
                dispatch: DispatchMode::Coordinator,
                ..DetectConfig::with_workers(4)
            },
        );
        assert_eq!(stealing.violations.len(), coordinator.violations.len());
        assert_eq!(coordinator.metrics.units_stolen, 0);
    }

    #[test]
    fn budget_truncates_early() {
        let (g, sigma, _) = chain_setup(100);
        let config = DetectConfig {
            max_violations: 5,
            ..DetectConfig::with_workers(4)
        };
        let report = detect(&g, &sigma, &config);
        assert_eq!(report.violations.len(), 5);
        assert!(report.truncated);
        assert!(report.metrics.early_terminated);
    }

    #[test]
    fn clean_graph_reports_clean() {
        let (mut g, sigma, mut vocab) = chain_setup(10);
        let a = vocab.attr("a");
        for v in g.nodes().collect::<Vec<_>>() {
            g.set_attr(v, a, Value::int(0));
        }
        let report = detect(&g, &sigma, &DetectConfig::with_workers(2));
        assert!(report.is_clean());
        assert_eq!(report.per_rule[0].matches, 9);
        assert_eq!(report.per_rule[0].violations, 0);
    }

    #[test]
    fn tiny_ttl_still_finds_everything() {
        let (g, sigma, _) = chain_setup(80);
        let config = DetectConfig {
            ttl: Duration::ZERO,
            batch_size: 8,
            ..DetectConfig::with_workers(4)
        };
        let report = detect(&g, &sigma, &config);
        assert_eq!(report.violations.len(), 79);
    }

    #[test]
    fn empty_rule_set_is_trivially_clean() {
        let (g, _, _) = chain_setup(5);
        let sigma = GfdSet::new();
        let report = detect(&g, &sigma, &DetectConfig::with_workers(2));
        assert!(report.is_clean());
        assert_eq!(report.metrics.units_dispatched, 0);
    }

    #[test]
    fn empty_graph_is_trivially_clean() {
        let (_, sigma, _) = chain_setup(5);
        let g = Graph::new();
        let report = detect(&g, &sigma, &DetectConfig::with_workers(2));
        assert!(report.is_clean());
        assert_eq!(report.total_matches(), 0);
    }
}
