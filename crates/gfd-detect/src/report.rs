//! Structured detection reports.

use gfd_core::{Consequence, DepSet, Literal, Operand};
use gfd_graph::{GfdId, Graph, NodeId, Vocab};
use std::fmt::Write as _;

/// One witnessed violation: a match of a rule's pattern whose premise
/// holds on the data but whose consequence does not.
///
/// For literal consequences, `failed` points at the failing literals.
/// For generating consequences, `failed` is empty — the witness of the
/// missing subgraph is the `(rule, match)` pair: no extension of `m`
/// realizes the target, and [`ViolationRecord::explain`] renders the
/// required fresh nodes, edges and assignments from the rule itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationRecord {
    /// The violated rule.
    pub gfd: GfdId,
    /// The match, indexed by pattern variable.
    pub m: Box<[NodeId]>,
    /// Indices (into a literal consequence) of the literals that fail;
    /// empty for generating consequences.
    pub failed: Vec<usize>,
}

impl ViolationRecord {
    /// Render a human-readable explanation of this violation.
    pub fn explain(&self, graph: &Graph, sigma: &DepSet, vocab: &Vocab) -> String {
        let dep = sigma.get(self.gfd);
        let mut out = String::new();
        let _ = writeln!(out, "violation of {}", dep.display(vocab));
        let _ = writeln!(out, "  match:");
        for v in dep.pattern.vars() {
            let node = self.m[v.index()];
            let _ = writeln!(
                out,
                "    {} ↦ n{} ({})",
                dep.pattern.var_name(v),
                node.index(),
                vocab.label_name(graph.label(node)),
            );
        }
        match &dep.consequence {
            Consequence::Literals(lits) => {
                for &i in &self.failed {
                    let lit = &lits[i];
                    let _ = writeln!(
                        out,
                        "  fails: {} — {}",
                        lit.display(&dep.pattern, vocab),
                        describe_failure(graph, &dep.pattern, lit, &self.m, vocab),
                    );
                }
            }
            Consequence::Generate(gen) => {
                let _ = writeln!(
                    out,
                    "  missing: no extension of the match realizes the target subgraph"
                );
                for v in gen.fresh_vars() {
                    let _ = writeln!(
                        out,
                        "    requires node {}: {}",
                        gen.pattern.var_name(v),
                        vocab.label_name(gen.pattern.label(v)),
                    );
                }
                let bound = |v: gfd_graph::VarId| -> String {
                    if v.index() < gen.shared {
                        format!(
                            "{}(n{})",
                            gen.pattern.var_name(v),
                            self.m[v.index()].index()
                        )
                    } else {
                        gen.pattern.var_name(v).to_string()
                    }
                };
                for e in gen.pattern.edges() {
                    let _ = writeln!(
                        out,
                        "    requires edge {} -{}-> {}",
                        bound(e.src),
                        vocab.label_name(e.label),
                        bound(e.dst),
                    );
                }
                for lit in &gen.attrs {
                    let _ = writeln!(out, "    requires {}", lit.display(&gen.pattern, vocab));
                }
            }
        }
        out
    }
}

/// Why a consequence literal fails on the actual attribute values.
pub(crate) fn describe_failure(
    graph: &Graph,
    pattern: &gfd_graph::Pattern,
    lit: &Literal,
    m: &[NodeId],
    vocab: &Vocab,
) -> String {
    let node = m[lit.var.index()];
    let left = graph.attr(node, lit.attr);
    let left_desc = match left {
        Some(v) => format!(
            "{}.{} is {v:?}",
            pattern.var_name(lit.var),
            vocab.attr_name(lit.attr)
        ),
        None => format!(
            "{}.{} is missing",
            pattern.var_name(lit.var),
            vocab.attr_name(lit.attr)
        ),
    };
    match &lit.rhs {
        Operand::Const(c) => format!("{left_desc}, expected {c:?}"),
        Operand::Attr(v2, a2) => {
            let right = graph.attr(m[v2.index()], *a2);
            let right_desc = match right {
                Some(v) => format!(
                    "{}.{} is {v:?}",
                    pattern.var_name(*v2),
                    vocab.attr_name(*a2)
                ),
                None => format!(
                    "{}.{} is missing",
                    pattern.var_name(*v2),
                    vocab.attr_name(*a2)
                ),
            };
            format!("{left_desc} but {right_desc}")
        }
    }
}

/// Per-rule detection statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleStats {
    /// Matches enumerated for this rule.
    pub matches: u64,
    /// Matches whose premise held.
    pub premise_hits: u64,
    /// Violations found.
    pub violations: u64,
}

/// The result of a detection run.
#[derive(Clone, Debug, Default)]
pub struct DetectionReport {
    /// All violations found (possibly truncated by the budget).
    pub violations: Vec<ViolationRecord>,
    /// Per-rule statistics, indexed by `GfdId` order of the rule set.
    pub per_rule: Vec<RuleStats>,
    /// True iff detection stopped early because the violation budget was
    /// reached.
    pub truncated: bool,
    /// Set when the sweep was cut short by the resource budget or a
    /// worker panic ([`gfd_core::Interrupt`]): the violations listed are
    /// real but the report may be incomplete.
    pub interrupted: Option<gfd_core::Interrupt>,
    /// The unified scheduler metrics (units, splits, steals, per-worker
    /// busy/idle time, wall-clock time).
    pub metrics: gfd_runtime::RunMetrics,
}

impl DetectionReport {
    /// Is the graph clean with respect to the rule set?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total matches enumerated across all rules.
    pub fn total_matches(&self) -> u64 {
        self.per_rule.iter().map(|s| s.matches).sum()
    }

    /// Render a compact multi-line summary (one line per dirty rule).
    pub fn summary(&self, sigma: &DepSet, vocab: &Vocab) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} violation(s) across {} rule(s){}",
            self.violations.len(),
            self.per_rule.iter().filter(|s| s.violations > 0).count(),
            if self.truncated { " [truncated]" } else { "" },
        );
        for (i, stats) in self.per_rule.iter().enumerate() {
            if stats.violations == 0 {
                continue;
            }
            let dep = sigma.get(GfdId::new(i));
            let _ = writeln!(
                out,
                "  {}: {} violation(s) / {} match(es)",
                dep.display(vocab),
                stats.violations,
                stats.matches,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Dependency, GenerateConsequence, Gfd, GfdSet, Literal};
    use gfd_graph::{Pattern, Value};

    fn setup() -> (Graph, DepSet, Vocab) {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let gfd = Gfd::new("g", p, vec![], vec![Literal::eq_const(x, a, 1i64)]);
        let mut g = Graph::new();
        let n = g.add_node(t);
        g.set_attr(n, a, Value::int(7));
        (g, DepSet::from_gfds(GfdSet::from_vec(vec![gfd])), vocab)
    }

    #[test]
    fn explain_names_the_failing_literal() {
        let (g, sigma, vocab) = setup();
        let rec = ViolationRecord {
            gfd: GfdId::new(0),
            m: vec![NodeId::new(0)].into_boxed_slice(),
            failed: vec![0],
        };
        let text = rec.explain(&g, &sigma, &vocab);
        assert!(text.contains("violation of g"), "{text}");
        assert!(text.contains("x ↦ n0"), "{text}");
        assert!(text.contains("x.a is 7"), "{text}");
        assert!(text.contains("expected 1"), "{text}");
    }

    #[test]
    fn explain_reports_missing_attributes() {
        let (mut g, sigma, vocab) = setup();
        // Strip the attribute by rebuilding the node.
        g = {
            let mut g2 = Graph::new();
            g2.add_node(g.label(NodeId::new(0)));
            g2
        };
        let rec = ViolationRecord {
            gfd: GfdId::new(0),
            m: vec![NodeId::new(0)].into_boxed_slice(),
            failed: vec![0],
        };
        let text = rec.explain(&g, &sigma, &vocab);
        assert!(text.contains("x.a is missing"), "{text}");
    }

    #[test]
    fn explain_renders_missing_subgraph() {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let meeting = vocab.label("meeting");
        let attends = vocab.label("attends");
        let city = vocab.attr("city");
        let mut p = Pattern::new();
        let x = p.add_node(person, "x");
        let mut gen = GenerateConsequence::over(&p);
        let m = gen.add_fresh(meeting, "m");
        gen.add_edge(x, attends, m);
        gen.push_attr(Literal::eq_attr(m, city, x, city));
        let dep = Dependency::new("meetup", p, vec![], gfd_core::Consequence::Generate(gen));
        let sigma = DepSet::from_vec(vec![dep]);
        let mut g = Graph::new();
        g.add_node(person);
        let rec = ViolationRecord {
            gfd: GfdId::new(0),
            m: vec![NodeId::new(0)].into_boxed_slice(),
            failed: vec![],
        };
        let text = rec.explain(&g, &sigma, &vocab);
        assert!(text.contains("missing"), "{text}");
        assert!(text.contains("requires node m: meeting"), "{text}");
        assert!(text.contains("requires edge x(n0) -attends-> m"), "{text}");
        assert!(text.contains("m.city = x.city"), "{text}");
    }

    #[test]
    fn summary_counts_dirty_rules() {
        let (_, sigma, vocab) = setup();
        let report = DetectionReport {
            interrupted: None,
            violations: vec![ViolationRecord {
                gfd: GfdId::new(0),
                m: vec![NodeId::new(0)].into_boxed_slice(),
                failed: vec![0],
            }],
            per_rule: vec![RuleStats {
                matches: 5,
                premise_hits: 5,
                violations: 1,
            }],
            truncated: false,
            metrics: gfd_runtime::RunMetrics::default(),
        };
        let text = report.summary(&sigma, &vocab);
        assert!(text.contains("1 violation(s) across 1 rule(s)"), "{text}");
        assert!(text.contains("1 violation(s) / 5 match(es)"), "{text}");
        assert!(!report.is_clean());
        assert_eq!(report.total_matches(), 5);
    }
}
