//! Property-based tests: the parallel detector against a brute-force
//! oracle on random graphs and rules, across worker counts and TTLs.

#![cfg(test)]

use crate::detector::{detect, DetectConfig};
use gfd_core::{Gfd, GfdSet, Literal};
use gfd_graph::{Graph, LabelId, NodeId, Value, VarId};
use proptest::prelude::*;
use std::time::Duration;

/// A small random attributed graph: ≤ 8 nodes over 3 labels, random
/// edges over 2 labels, random `a`-attribute values in 0..3.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..8).prop_flat_map(|n| {
        let labels = proptest::collection::vec(1u32..4, n);
        let edges = proptest::collection::vec(((0..n), 1u32..3, (0..n)), 0..(2 * n));
        let attrs = proptest::collection::vec(proptest::option::of(0i64..3), n);
        (labels, edges, attrs).prop_map(move |(labels, edges, attrs)| {
            let mut g = Graph::new();
            for l in labels {
                g.add_node(LabelId(l));
            }
            for (s, l, d) in edges {
                g.add_edge(NodeId::new(s), LabelId(l), NodeId::new(d));
            }
            for (i, a) in attrs.iter().enumerate() {
                if let Some(v) = a {
                    g.set_attr(NodeId::new(i), gfd_graph::AttrId::new(0), Value::int(*v));
                }
            }
            g
        })
    })
}

/// A random 1–3 node rule whose premise/consequence use attribute 0.
fn arb_rule() -> impl Strategy<Value = Gfd> {
    (
        1usize..4,
        proptest::collection::vec(((0usize..3), 1u32..3, (0usize..3)), 0..3),
        proptest::option::of(0i64..3),
        0i64..3,
    )
        .prop_map(|(k, edges, premise_const, consequence_const)| {
            let a = gfd_graph::AttrId::new(0);
            let mut p = gfd_graph::Pattern::new();
            for i in 0..k {
                // Mix of wildcard and concrete labels.
                let label = if i % 2 == 0 {
                    LabelId(1)
                } else {
                    LabelId::WILDCARD
                };
                p.add_anon_node(label);
            }
            for (s, l, d) in edges {
                p.add_edge(VarId::new(s % k), LabelId(l), VarId::new(d % k));
            }
            let premise = premise_const
                .map(|c| vec![Literal::eq_const(VarId::new(0), a, c)])
                .unwrap_or_default();
            let consequence = vec![Literal::eq_const(VarId::new(k - 1), a, consequence_const)];
            Gfd::new("r", p, premise, consequence)
        })
}

/// Brute-force oracle on top of the sequential library primitive.
fn oracle(graph: &Graph, sigma: &GfdSet) -> Vec<(usize, Vec<usize>)> {
    let mut keys: Vec<_> = gfd_core::find_violations(graph, sigma, usize::MAX)
        .into_iter()
        .map(|v| (v.gfd.index(), v.m.iter().map(|n| n.index()).collect()))
        .collect();
    keys.sort();
    keys
}

fn detect_keys(report: &crate::report::DetectionReport) -> Vec<(usize, Vec<usize>)> {
    let mut keys: Vec<_> = report
        .violations
        .iter()
        .map(|v| (v.gfd.index(), v.m.iter().map(|n| n.index()).collect()))
        .collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parallel detector finds exactly the oracle's violations, for
    /// every worker count.
    #[test]
    fn detector_equals_oracle(
        g in arb_graph(),
        rules in proptest::collection::vec(arb_rule(), 1..3),
        workers in 1usize..5,
    ) {
        let sigma = GfdSet::from_vec(rules);
        let expected = oracle(&g, &sigma);
        let report = detect(&g, &sigma, &DetectConfig::with_workers(workers));
        prop_assert_eq!(detect_keys(&report), expected);
    }

    /// TTL zero (maximum splitting) changes nothing.
    #[test]
    fn ttl_zero_equals_oracle(
        g in arb_graph(),
        rules in proptest::collection::vec(arb_rule(), 1..3),
    ) {
        let sigma = GfdSet::from_vec(rules);
        let expected = oracle(&g, &sigma);
        let config = DetectConfig {
            ttl: Duration::ZERO,
            batch_size: 1,
            ..DetectConfig::with_workers(3)
        };
        let report = detect(&g, &sigma, &config);
        prop_assert_eq!(detect_keys(&report), expected);
    }

    /// Budgets return a subset of real violations, never fabrications.
    #[test]
    fn budget_returns_true_violations(
        g in arb_graph(),
        rules in proptest::collection::vec(arb_rule(), 1..3),
        budget in 1usize..4,
    ) {
        let sigma = GfdSet::from_vec(rules);
        let expected = oracle(&g, &sigma);
        let config = DetectConfig {
            max_violations: budget,
            ..DetectConfig::with_workers(2)
        };
        let report = detect(&g, &sigma, &config);
        prop_assert!(report.violations.len() <= budget.max(expected.len()));
        for key in detect_keys(&report) {
            prop_assert!(expected.contains(&key), "fabricated violation {key:?}");
        }
        if expected.len() >= budget {
            prop_assert_eq!(report.violations.len(), budget);
        } else {
            prop_assert_eq!(report.violations.len(), expected.len());
        }
    }
}
