//! # gfd — reasoning about Graph Functional Dependencies
//!
//! A Rust implementation of *"Parallel Reasoning of Graph Functional
//! Dependencies"* (Fan, Liu, Cao — ICDE 2018): exact sequential and
//! parallel-scalable algorithms for the two classical static analyses of
//! GFDs,
//!
//! * **satisfiability** — does a set Σ of GFDs have a model? (coNP-complete)
//! * **implication** — does Σ entail another GFD ϕ? (NP-complete)
//!
//! plus the substrates they need: property graphs, homomorphism matching,
//! graph simulation, a chase baseline, generators and a text format.
//!
//! ## Quick start
//!
//! ```
//! use gfd::prelude::*;
//!
//! let mut vocab = Vocab::new();
//! // Two rules about the same (wildcard) entities that cannot coexist:
//! let sigma = gfd::dsl::parse_document(
//!     "gfd phi5 { pattern { node x: _ } then { x.A = 0 } }
//!      gfd phi6 { pattern { node x: _ } then { x.A = 1 } }",
//!     &mut vocab,
//! ).unwrap().gfds;
//!
//! assert!(!gfd::seq_sat(&sigma).is_satisfiable());
//! let par = gfd::par_sat(&sigma, &ParConfig::with_workers(4));
//! assert!(!par.is_satisfiable());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | graphs, patterns, vocabularies, neighborhoods |
//! | [`matching`] | homomorphism search, splitting, simulation |
//! | [`runtime`] | the work-stealing scheduler every workload runs on |
//! | [`core`] | GFDs, canonical graphs, the unified reasoning driver, `SeqSat`, `SeqImp`, validation |
//! | [`parallel`] | `ParSat`, `ParImp` — the same driver at `workers > 1` |
//! | [`chase`] | the chase baselines (`ParImpRDF`) |
//! | [`gen`] | schema-driven GFD/graph generators and workloads |
//! | [`dsl`] | the text format |
//! | [`detect`] | parallel violation detection on data graphs |
//! | [`incr`] | incremental detection over streaming delta batches |
//! | [`ged`] | GEDs: id literals, order predicates, disjunction (§IX) |
//! | [`io`] | JSON and SNAP edge-list interchange |

#![warn(missing_docs)]

/// Property-graph substrate (re-export of `gfd-graph`).
pub use gfd_graph as graph;

/// Homomorphism matching (re-export of `gfd-match`).
pub use gfd_match as matching;

/// The shared work-stealing scheduler (re-export of `gfd-runtime`).
pub use gfd_runtime as runtime;

/// GFDs and sequential reasoning (re-export of `gfd-core`).
pub use gfd_core as core;

/// Parallel reasoning (re-export of `gfd-parallel`).
pub use gfd_parallel as parallel;

/// Chase baselines (re-export of `gfd-chase`).
pub use gfd_chase as chase;

/// Generators and workloads (re-export of `gfd-gen`).
pub use gfd_gen as gen;

/// Text format (re-export of `gfd-dsl`).
pub use gfd_dsl as dsl;

/// Parallel violation detection on data graphs (re-export of `gfd-detect`).
pub use gfd_detect as detect;

/// Incremental detection over streaming delta batches (re-export of
/// `gfd-incr`).
pub use gfd_incr as incr;

/// Graph entity dependencies — the §IX extension (re-export of `gfd-ged`).
pub use gfd_ged as ged;

/// Interchange formats: JSON and SNAP edge lists (re-export of `gfd-io`).
pub use gfd_io as io;

pub use gfd_chase::{chase_imp, chase_sat, dep_imp, dep_sat};
pub use gfd_core::{
    find_violations, graph_satisfies, graph_satisfies_all, seq_imp, seq_sat, Consequence, DepSet,
    Dependency, GenerateConsequence, Gfd, GfdSet, ImpOutcome, Literal, SatOutcome,
};
pub use gfd_graph::{Graph, LabelId, Pattern, Value, ValueId, ValueTable, Vocab};
pub use gfd_parallel::{par_imp, par_sat, ParConfig};

/// The most commonly used names in one import.
pub mod prelude {
    pub use gfd_core::{
        find_violations, graph_satisfies, graph_satisfies_all, seq_imp, seq_sat, Consequence,
        DepSet, Dependency, GenerateConsequence, Gfd, GfdSet, ImpOutcome, ImpliedVia, Literal,
        Operand, SatOutcome,
    };
    pub use gfd_graph::{AttrId, Graph, LabelId, NodeId, Pattern, Value, ValueId, ValueTable, VarId, Vocab};
    pub use gfd_parallel::{par_imp, par_sat, ParConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work_together() {
        use crate::prelude::*;
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        let x = p.add_node(vocab.label("t"), "x");
        let a = vocab.attr("a");
        let sigma = GfdSet::from_vec(vec![Gfd::new(
            "g",
            p,
            vec![],
            vec![Literal::eq_const(x, a, 1i64)],
        )]);
        assert!(seq_sat(&sigma).is_satisfiable());
        assert!(par_sat(&sigma, &ParConfig::with_workers(2)).is_satisfiable());
    }
}
